//! # robotack-suite
//!
//! Umbrella crate for the RoboTack reproduction ("ML-driven Malware that
//! Targets AV Safety", DSN 2020). It re-exports the workspace crates so the
//! examples and cross-crate integration tests have a single dependency root.
//!
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` for the per-experiment index.

#![warn(missing_docs)]

pub use av_defense as defense;
pub use av_experiments as experiments;
pub use av_neural as neural;
pub use av_perception as perception;
pub use av_planning as planning;
pub use av_sensing as sensing;
pub use av_simkit as simkit;
pub use robotack;
