//! Cross-crate integration tests: full simulated runs through the sensor
//! suite, perception stack, planner, and the malware's MITM hook.

use av_experiments::prelude::*;

/// Golden (attack-free) runs must be safe in every scenario: no collision
/// and no emergency braking (DS-2's pedestrian stop is a comfort stop).
#[test]
fn golden_runs_are_safe_across_scenarios() {
    for scenario in ScenarioId::ALL {
        let out = SimSession::builder(scenario).seed(11).build().run();
        assert!(!out.collided, "{scenario}: golden run collided");
        assert!(!out.eb_any, "{scenario}: golden run emergency braked");
        assert!(out.attack.launched_at.is_none());
    }
}

/// The DS-2 golden run stops for the crossing pedestrian and resumes.
#[test]
fn golden_ds2_yields_to_pedestrian() {
    let out = SimSession::builder(ScenarioId::Ds2).seed(3).build().run();
    let min_speed = out
        .record
        .samples
        .iter()
        .map(|s| s.ego_speed)
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_speed < 1.0,
        "EV stopped for the pedestrian: {min_speed}"
    );
    let final_speed = out.record.samples.last().expect("samples").ego_speed;
    assert!(
        final_speed > 8.0,
        "EV resumed after the crossing: {final_speed}"
    );
}

/// A timed Move_Out attack on the crossing pedestrian causes the paper's
/// accident (δ < 4 m) — deterministic seed, no training needed.
#[test]
fn timed_move_out_attack_on_pedestrian_causes_accident() {
    let out = SimSession::builder(ScenarioId::Ds2)
        .seed(0)
        .attacker(AttackerSpec::AtDelta {
            vector: Some(AttackVector::MoveOut),
            delta_inject: 24.0,
            k: 60,
        })
        .build()
        .run();
    assert!(out.attack.launched_at.is_some(), "attack launched");
    assert!(
        out.accident,
        "min δ dipped below 4 m: {:?}",
        out.min_delta_post_attack
    );
    // And the same scenario without the attack is safe.
    let golden = SimSession::builder(ScenarioId::Ds2).seed(0).build().run();
    assert!(!golden.accident && !golden.collided);
}

/// A timed Move_In attack on the parked car forces emergency braking while
/// the *real* safety potential never drops — the paper's DS-3 result.
#[test]
fn timed_move_in_attack_forces_emergency_braking_only() {
    let out = SimSession::builder(ScenarioId::Ds3)
        .seed(0)
        .attacker(AttackerSpec::AtDelta {
            vector: Some(AttackVector::MoveIn),
            delta_inject: 8.0,
            k: 40,
        })
        .build()
        .run();
    assert!(out.eb_after_attack, "forced emergency braking");
    assert!(!out.collided, "no real obstacle to hit");
    // The EV *believed* it was about to crash ...
    assert!(
        out.min_perceived_delta_post_attack
            .expect("perceived δ tracked")
            < 4.0,
        "perceived δ dipped below the accident threshold"
    );
    // ... while the path was actually clear.
    assert!(out.min_delta_post_attack.expect("real δ tracked") > 20.0);
}

/// Full runs are bit-for-bit reproducible from the seed, including the
/// attack decision.
#[test]
fn attacked_runs_are_reproducible() {
    let spec = AttackerSpec::RoboTack {
        vector: Some(AttackVector::MoveOut),
        oracle: OracleSpec::Kinematic,
    };
    let a = SimSession::builder(ScenarioId::Ds1)
        .seed(21)
        .attacker(spec.clone())
        .build()
        .run();
    let b = SimSession::builder(ScenarioId::Ds1)
        .seed(21)
        .attacker(spec)
        .build()
        .run();
    assert_eq!(a.attack.launched_at, b.attack.launched_at);
    assert_eq!(a.attack.k, b.attack.k);
    assert_eq!(a.record.samples.len(), b.record.samples.len());
    assert_eq!(
        a.record.samples.last().map(|s| (s.t, s.ego_speed, s.delta)),
        b.record.samples.last().map(|s| (s.t, s.ego_speed, s.delta)),
    );
}

/// Different seeds explore different interaction timings.
#[test]
fn seeds_vary_the_world() {
    let a = SimSession::builder(ScenarioId::Ds5).seed(1).build().run();
    let b = SimSession::builder(ScenarioId::Ds5).seed(2).build().run();
    let da = a.record.samples.last().expect("samples").target_gap;
    let db = b.record.samples.last().expect("samples").target_gap;
    assert_ne!(da, db, "seeded worlds differ");
}
