//! Cross-crate tests of the attack mechanics: the trajectory hijacker's
//! perturbations flowing through the real perception stack, and the
//! stealthiness constraints of §IV-C / §VI-E.

use av_perception::calibration::DetectorCalibration;
use av_perception::pipeline::{Perception, PerceptionConfig};
use av_sensing::camera::Camera;
use av_sensing::frame::capture;
use av_simkit::actor::{Actor, ActorId, ActorKind};
use av_simkit::behavior::Behavior;
use av_simkit::math::Vec2;
use av_simkit::road::Road;
use av_simkit::world::World;
use rand::SeedableRng;
use robotack::trajectory_hijacker::{ThConfig, TrajectoryHijacker};
use robotack::vector::AttackVector;

fn world_with_car(x: f64, y: f64) -> World {
    // Ego parked: tests step the world to advance sensor timestamps without
    // changing the scene geometry.
    let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 0.0, Behavior::Ego);
    let mut w = World::new(Road::default(), ego);
    w.add_actor(Actor::new(
        ActorId(1),
        ActorKind::Car,
        Vec2::new(x, y),
        0.0,
        Behavior::Parked,
    ))
    .expect("fresh world");
    w
}

fn perception() -> Perception {
    // Ideal detector noise so the test isolates the *attacker's* effect.
    let config = PerceptionConfig {
        calibration: DetectorCalibration::ideal(),
        ..PerceptionConfig::default()
    };
    Perception::new(config)
}

/// Move_In walks the *fused world model* object into the ego lane even
/// though the real car never moves.
#[test]
fn hijacked_frames_steer_the_world_model() {
    let mut world = world_with_car(35.0, -3.5);
    let mut p = perception();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Warm up: let the track confirm and pass the fusion registration gate.
    for seq in 0..15 {
        let frame = capture(&Camera::default(), &world, seq, false);
        p.on_camera_frame(&frame, Vec2::ZERO, &mut rng);
        world.step(1.0 / 15.0, 0.0);
    }
    let mut th =
        TrajectoryHijacker::launch(AttackVector::MoveIn, ActorId(1), 60, ThConfig::default());
    let mut perceived_y = Vec::new();
    for seq in 15..75 {
        let mut frame = capture(&Camera::default(), &world, seq, false);
        th.apply(&mut frame);
        p.on_camera_frame(&frame, Vec2::ZERO, &mut rng);
        world.step(1.0 / 15.0, 0.0);
        if let Some(obj) = p.world_model().first() {
            perceived_y.push(obj.position.y);
        }
    }
    let first = *perceived_y.first().expect("object tracked");
    let last = *perceived_y.last().expect("object tracked");
    assert!(first < -2.5, "starts near the truth: {first}");
    assert!(last.abs() < 1.0, "ends in the ego lane: {last}");
}

/// Disappear removes the object from the camera-only world model within the
/// coast window, and it returns after the attack ends.
#[test]
fn disappear_empties_and_restores_the_world_model() {
    let mut world = world_with_car(35.0, 0.0);
    let mut p = perception();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Warm up: the object must be established in the world model first.
    for seq in 0..15 {
        let frame = capture(&Camera::default(), &world, seq, false);
        p.on_camera_frame(&frame, Vec2::ZERO, &mut rng);
        world.step(1.0 / 15.0, 0.0);
    }
    assert!(
        !p.world_model().is_empty(),
        "object established before the attack"
    );
    let k = 30;
    let mut th =
        TrajectoryHijacker::launch(AttackVector::Disappear, ActorId(1), k, ThConfig::default());
    let mut present = Vec::new();
    for seq in 15..110 {
        let mut frame = capture(&Camera::default(), &world, seq, false);
        th.apply(&mut frame);
        p.on_camera_frame(&frame, Vec2::ZERO, &mut rng);
        world.step(1.0 / 15.0, 0.0);
        present.push(!p.world_model().is_empty());
    }
    assert!(!present[15], "object gone mid-attack");
    assert!(
        *present.last().expect("nonempty"),
        "object re-registered after the attack"
    );
}

/// §IV-C stealth: every per-frame displacement of the *detected* box against
/// the previous frame stays within the association envelope (the attack must
/// not break the Hungarian matching).
#[test]
fn per_frame_steps_stay_within_the_association_envelope() {
    let world = world_with_car(30.0, 0.0);
    let config = ThConfig::default();
    let mut th = TrajectoryHijacker::launch(AttackVector::MoveOut, ActorId(1), 50, config);
    let mut last_center: Option<(f64, f64)> = None;
    for seq in 0..50 {
        let mut frame = capture(&config.camera, &world, seq, false);
        th.apply(&mut frame);
        let bbox = frame.truth_for(ActorId(1)).expect("in view").bbox;
        let (u, v) = bbox.center();
        if let Some((lu, lv)) = last_center {
            let step = (u - lu).hypot(v - lv);
            let gate = config.tracker.gate_diagonals * bbox.width().hypot(bbox.height());
            assert!(
                step < gate,
                "frame {seq}: step {step} px exceeds gate {gate} px"
            );
        }
        last_center = Some((u, v));
    }
    assert!(th.shift_frames().is_some(), "shift phase completed");
}

/// §VI-E: the malware perturbs exactly K frames and no more — the attack
/// window is bounded to evade streak-based IDS detection.
#[test]
fn attack_window_is_exactly_k_frames() {
    let world = world_with_car(30.0, 0.0);
    let k = 17;
    let mut th =
        TrajectoryHijacker::launch(AttackVector::Disappear, ActorId(1), k, ThConfig::default());
    let mut suppressed_frames = 0;
    for seq in 0..40 {
        let mut frame = capture(&Camera::default(), &world, seq, false);
        th.apply(&mut frame);
        suppressed_frames += u32::from(frame.truth_for(ActorId(1)).expect("in view").suppressed);
    }
    assert_eq!(suppressed_frames, k);
}

/// The pixel-space patch and the metadata path agree: applying the patch to
/// the raster shifts the pixel-driven detector's box by (approximately) the
/// same ω the metadata path reports.
#[test]
fn raster_patch_realizes_the_metadata_shift() {
    let world = world_with_car(30.0, 0.0);
    let config = ThConfig::default();
    let mut th = TrajectoryHijacker::launch(AttackVector::MoveOut, ActorId(1), 20, config);
    // Render rasters so the hijacker also patches pixels.
    let mut last_frame = None;
    for seq in 0..20 {
        let mut frame = capture(&config.camera, &world, seq, true);
        let clean_u = frame
            .truth_for(ActorId(1))
            .expect("in view")
            .bbox
            .center()
            .0;
        th.apply(&mut frame);
        last_frame = Some((frame, clean_u));
    }
    let (frame, clean_u) = last_frame.expect("frames processed");
    let meta_u = frame
        .truth_for(ActorId(1))
        .expect("in view")
        .bbox
        .center()
        .0;
    let meta_shift = meta_u - clean_u;
    assert!(
        meta_shift.abs() > 30.0,
        "metadata box moved: {meta_shift} px"
    );

    let raster = frame.raster.as_ref().expect("raster rendered");
    let roi = frame.truth_for(ActorId(1)).expect("in view").bbox;
    let detected = robotack::patch::detect(raster, &roi).expect("pixel detector sees the car");
    let pixel_shift = detected.center().0 - clean_u;
    assert!(
        (pixel_shift - meta_shift).abs() < 40.0,
        "pixel shift {pixel_shift} px tracks metadata shift {meta_shift} px"
    );
}
