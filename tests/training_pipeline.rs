//! Integration test of the §IV-B training pipeline: sweep → dataset →
//! Adam-trained oracle → deployable safety hijacker.

use av_experiments::train_sh::{collect_dataset, train_oracle_on, SweepConfig};
use av_simkit::scenario::ScenarioId;
use robotack::safety_hijacker::{AttackFeatures, SafetyOracle};
use robotack::vector::AttackVector;

#[test]
fn sweep_collects_labeled_examples() {
    let sweep = SweepConfig {
        delta_injects: vec![12.0, 24.0],
        ks: vec![20, 50],
        seeds_per_cell: 2,
        base_seed: 0x5EED,
    };
    let data = collect_dataset(ScenarioId::Ds2, AttackVector::MoveOut, &sweep);
    assert!(data.len() >= 4, "sweep produced examples: {}", data.len());
    for (x, y) in data.inputs.iter().zip(&data.targets) {
        assert_eq!(x.len(), AttackFeatures::INPUT_DIM);
        assert_eq!(y.len(), 1);
        assert!(x[0].is_finite() && y[0].is_finite());
        assert!((-10.0..=40.0).contains(&y[0]), "label clamped: {}", y[0]);
        assert!(
            x[4] == 20.0 || x[4] == 50.0,
            "k feature preserved: {}",
            x[4]
        );
    }
}

#[test]
fn trained_oracle_learns_that_longer_attacks_hurt_more() {
    let sweep = SweepConfig {
        delta_injects: vec![10.0, 18.0, 26.0, 36.0],
        ks: vec![10, 30, 50, 70],
        seeds_per_cell: 2,
        base_seed: 0x5EED,
    };
    let data = collect_dataset(ScenarioId::Ds2, AttackVector::MoveOut, &sweep);
    let trained = train_oracle_on(&data).expect("enough data to train");
    assert!(trained.val_mse < 150.0, "val mse sane: {}", trained.val_mse);

    // Averaged over representative states, predicted δ decreases with k.
    let mut short = 0.0;
    let mut long = 0.0;
    let mut n = 0.0;
    for delta in [15.0, 22.0, 30.0] {
        let f = AttackFeatures {
            delta,
            v_rel_lon: -11.0,
            v_rel_lat: 0.0,
            a_rel_lon: 0.0,
        };
        short += trained.oracle.predict_delta(&f, 10);
        long += trained.oracle.predict_delta(&f, 60);
        n += 1.0;
    }
    assert!(
        long / n < short / n,
        "mean predicted δ at k=60 ({:.1}) below k=10 ({:.1})",
        long / n,
        short / n
    );
}
