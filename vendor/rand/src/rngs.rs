//! Concrete generators.

use crate::{RngCore, SampleRange, SeedableRng, StandardUniform};

/// The workspace's standard deterministic generator: xoshiro256++ seeded via
/// SplitMix64.
///
/// Inherent copies of the [`crate::Rng`] convenience methods are provided so
/// call sites that hold a concrete `StdRng` work regardless of which traits
/// are in scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Samples a value of `T` from its standard distribution.
    pub fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    pub fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256++ must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = StdRng::seed_from_u64(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }
}
