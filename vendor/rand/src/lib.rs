//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`SeedableRng`], [`Rng`]/[`RngExt`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, portable, and plenty for a seeded
//! simulation (this is *not* a cryptographic RNG).
//!
//! Determinism is a workspace-level contract: every sampled value feeds the
//! golden-trace regression fixtures, so the bit-exact output of this crate
//! for a given seed must never change.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardUniform for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution (uniform for
    /// numeric types, fair coin for `bool`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension alias kept distinct from [`Rng`] so both can be imported
/// together without method ambiguity (mirrors the split upstream `rand`
/// introduced in 0.9).
pub trait RngExt: Rng {}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: u32 = r.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_rough_but_present() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.random_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((8_500..11_500).contains(&c), "count {c}");
        }
    }
}
