//! No-op derive macros for the offline `serde` stand-in.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so they are wire-ready once a real serde is available, but
//! nothing in-tree performs serialization. These derives expand to nothing;
//! the traits in the `serde` stand-in are blanket-implemented instead.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
