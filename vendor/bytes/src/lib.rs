//! Offline stand-in for the `bytes` crate.
//!
//! Implements just the surface the sensing crate's raster payload codec
//! uses: [`BytesMut`] with little-endian put methods, an immutable
//! [`Bytes`] view with a read cursor, and the [`Buf`]/[`BufMut`] traits.

/// Read access to a contiguous byte buffer with an advancing cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads a little-endian `u32`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `f32`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable byte payload with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Total payload length, ignoring the cursor.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the full payload (ignoring the cursor) into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32_le: buffer underrun");
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_le_bytes(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_f32() {
        let mut w = BytesMut::with_capacity(8);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn to_vec_ignores_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let _ = b.get_u32_le();
        assert_eq!(b.to_vec().len(), 8);
    }
}
