//! Minimal offline stand-in for the `criterion` benchmarking harness.
//!
//! Implements exactly the API subset the workspace benches use: timing is a
//! straightforward best-of-N wall-clock measurement with a text report, not
//! criterion's statistical machinery. The point is that `cargo bench` compiles
//! and runs without the network; numbers are indicative only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement iterations per benchmark (before per-iteration scaling).
const DEFAULT_SAMPLES: usize = 20;

/// How an input is cleared between `iter_batched` runs; all variants behave
/// identically here (each batch is one setup + one routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone (`group/param`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with both a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the measured routine.
pub struct Bencher {
    samples: usize,
    /// Median per-call duration, filled in by `iter`/`iter_batched`.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample budget and records the median call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.elapsed = times[times.len() / 2];
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            times.push(start.elapsed());
        }
        times.sort();
        self.elapsed = times[times.len() / 2];
    }
}

fn report(name: &str, elapsed: Duration) {
    println!("{name:<48} {:>12.3} µs/iter", elapsed.as_secs_f64() * 1e6);
}

/// A named set of related benchmarks sharing a sample budget.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed calls per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times one closure-defined benchmark.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.elapsed);
        self
    }

    /// Times one benchmark parameterized by `input`.
    pub fn bench_with_input<S: Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.elapsed);
        self
    }

    /// Ends the group (accepted for API parity; nothing to flush).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn new() -> Self {
        Criterion {}
    }

    /// Times one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: DEFAULT_SAMPLES,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(id, b.elapsed);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// Bundles benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).sum()
    }

    fn bench_sum(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| sum_to(100)));
        let mut group = c.benchmark_group("sums");
        group.sample_size(5);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, n| {
                b.iter(|| sum_to(*n))
            });
        }
        group.bench_function("batched", |b| {
            b.iter_batched(|| 50u64, sum_to, BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(demo, bench_sum);

    #[test]
    fn harness_subset_runs() {
        demo();
    }
}
