//! Offline stand-in for `crossbeam`, exposing the `thread::scope` API the
//! campaign runner uses, backed by `std::thread::scope` (stable since Rust
//! 1.63).

pub mod thread {
    //! Scoped threads with the crossbeam calling convention
    //! (`scope(|s| { s.spawn(|_| ...); })` returning a `Result`).

    /// Wrapper over [`std::thread::Scope`] passing itself to spawned
    /// closures, as crossbeam does.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so nested
        /// spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns.
    ///
    /// Unlike crossbeam, a panic in a spawned thread propagates as a panic
    /// out of this call (std semantics) instead of an `Err`; callers here
    /// only ever `.expect()` the result, so the observable behavior — abort
    /// the run with the worker's panic — is the same.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_fill_disjoint_chunks() {
            let mut data = vec![0u64; 64];
            super::scope(|scope| {
                for (i, chunk) in data.chunks_mut(16).enumerate() {
                    scope.spawn(move |_| {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = (i * 16 + j) as u64;
                        }
                    });
                }
            })
            .expect("workers succeeded");
            assert_eq!(data, (0..64).collect::<Vec<u64>>());
        }

        #[test]
        fn scope_returns_closure_value() {
            let v = super::scope(|scope| {
                let h = scope.spawn(|_| 21u32);
                h.join().expect("join") * 2
            })
            .expect("scope");
            assert_eq!(v, 42);
        }
    }
}
