//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, and nothing in the
//! workspace actually serializes — the `#[derive(Serialize, Deserialize)]`
//! annotations only declare intent. This crate keeps those annotations
//! compiling: the derives (re-exported from the sibling `serde_derive`
//! stand-in) expand to nothing, and the traits are blanket-implemented
//! markers so bounds like `T: Serialize` hold for every type.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
