//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: `generate` draws a single
/// value from the strategy's distribution.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts the value (`label` reported if the
    /// filter rejects an implausible number of candidates in a row).
    fn prop_filter<F>(self, label: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            label,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive candidates",
            self.label
        );
    }
}

/// Uniform choice between strategies of a common value type
/// (the [`crate::prop_oneof!`] backing type).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let strat = (0..10u32, -1.0..1.0f64).prop_map(|(n, x)| f64::from(n) + x.abs());
        let mut rng = case_rng(7, 0);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((0.0..11.0).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let strat = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2u8)),
            Box::new(Just(3u8)),
        ]);
        let mut rng = case_rng(9, 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn filter_respects_predicate() {
        let strat = (0..100u32).prop_filter("even", |v| v % 2 == 0);
        let mut rng = case_rng(11, 0);
        for _ in 0..500 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }
}
