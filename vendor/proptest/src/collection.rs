//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted lengths for a generated collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (exclusive).
    pub max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "collection size range is empty");
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.min + 1 >= self.size.max_exclusive {
            self.size.min
        } else {
            rng.random_range(self.size.min..self.size.max_exclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` strategy: `size` may be a fixed `usize` or a `Range<usize>`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn fixed_size_is_exact() {
        let strat = vec(0.0..1.0f64, 5);
        let mut rng = case_rng(5, 0);
        assert_eq!(strat.generate(&mut rng).len(), 5);
    }

    #[test]
    fn ranged_size_stays_in_bounds() {
        let strat = vec(0..10u32, 2..9);
        let mut rng = case_rng(6, 0);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vec_composes() {
        let strat = vec(vec(0.0..1.0f64, 3), 4);
        let mut rng = case_rng(8, 0);
        let m = strat.generate(&mut rng);
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|row| row.len() == 3));
    }
}
