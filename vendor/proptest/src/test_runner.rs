//! Deterministic per-case RNG derivation and the case-failure type.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed; the test panics with this message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is regenerated.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// FNV-1a hash of the test path — the deterministic seed base, stable across
/// runs and platforms so failures reproduce.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The RNG for one case attempt.
pub fn case_rng(base: u64, attempt: u64) -> TestRng {
    StdRng::seed_from_u64(base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("a::b"), seed_for("a::b"));
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }

    #[test]
    fn case_rngs_differ_by_attempt() {
        let a = case_rng(1, 0).next_u64();
        let b = case_rng(1, 1).next_u64();
        assert_ne!(a, b);
    }
}
