//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, range/`any`/`Just`/tuple/`prop_oneof!`/
//! `prop::collection::vec` strategies, `prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic seed
//! derived from the test name, so failures reproduce exactly; there is no
//! shrinking — the failing case's values are printed instead.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Runs each contained `#[test]` function over many generated cases.
///
/// Grammar (subset of proptest's):
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0.0..1.0f64, n in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            const CASES: u64 = 256;
            const MAX_REJECTS: u64 = 65_536;
            let base = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rejects: u64 = 0;
            let mut case: u64 = 0;
            let mut attempts: u64 = 0;
            while case < CASES {
                let mut rng = $crate::test_runner::case_rng(base, attempts);
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => { case += 1; }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects < MAX_REJECTS,
                            "proptest {}: too many prop_assume! rejections ({})",
                            stringify!($name),
                            rejects
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (seed base {:#x}, attempt {}): {}",
                            stringify!($name), case, base, attempts - 1, msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case with an assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "{} (left: {:?}, right: {:?})",
            ::std::format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a), stringify!($b), left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "{} (both: {:?})",
            ::std::format!($($fmt)+), left
        );
    }};
}

/// Discards the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(arms)
    }};
}
