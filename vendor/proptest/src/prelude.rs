//! One-stop imports for property tests: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy, Union};
pub use crate::test_runner::{TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// The `prop::` namespace (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
