//! `any::<T>()` — full-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<u64>() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn any_u64_spans_high_bits() {
        let mut rng = case_rng(3, 0);
        let strat = any::<u64>();
        let high = (0..100)
            .filter(|_| strat.generate(&mut rng) > u64::MAX / 2)
            .count();
        assert!((20..80).contains(&high), "high-half draws: {high}");
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = case_rng(4, 0);
        let strat = any::<bool>();
        let trues = (0..100).filter(|_| strat.generate(&mut rng)).count();
        assert!((20..80).contains(&trues));
    }
}
