//! # av-sensing — simulated sensor suite
//!
//! Sensor models over the [`av_simkit`] plan-view world, replicating the
//! paper's LGSVL sensor configuration (§V-B): a front main camera producing
//! 1920×1080 frames at 15 Hz, a LiDAR at 10 Hz, and GPS/IMU at 12.5 Hz.
//!
//! The camera produces two things per frame:
//!
//! - **ground-truth image boxes** ([`frame::TruthBox`]) via an ideal pinhole
//!   projection — the detector model in `av-perception` corrupts these with
//!   its calibrated noise (this is the fast path used in campaigns), and
//! - an optional **luminance raster** ([`image::Raster`]) — a low-resolution
//!   rendering used by the pixel-space adversarial-patch demonstration.
//!
//! The camera feed is what the paper's man-in-the-middle attack taps
//! (§III-B, the Argus automotive-Ethernet hack): [`frame::CameraFrame`] is
//! exactly the payload an attacker intercepts and may rewrite before the ADS
//! perception module consumes it.

#![warn(missing_docs)]

pub mod bbox;
pub mod camera;
pub mod frame;
pub mod gps;
pub mod image;
pub mod lidar;
pub mod tap;

pub use bbox::BBox;
pub use camera::Camera;
pub use frame::{CameraFrame, TruthBox};
pub use gps::{GpsImu, GpsImuFix};
pub use image::Raster;
pub use lidar::{Lidar, LidarObject, LidarScan};
pub use tap::{CameraTapVerdict, NullTap, SensorTap};
