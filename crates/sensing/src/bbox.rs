//! Axis-aligned bounding boxes in image coordinates.

use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in image pixel coordinates.
///
/// `x` grows rightward, `y` grows downward (standard image convention).
/// A box is *valid* when `x0 <= x1 && y0 <= y1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x0: f64,
    /// Top edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Bottom edge.
    pub y1: f64,
}

impl BBox {
    /// Creates a box from its edges.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the edges are inverted.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        debug_assert!(
            x0 <= x1 && y0 <= y1,
            "inverted bbox ({x0},{y0})-({x1},{y1})"
        );
        BBox { x0, y0, x1, y1 }
    }

    /// Creates a box from its center and size.
    pub fn from_center(cx: f64, cy: f64, w: f64, h: f64) -> Self {
        BBox::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)
    }

    /// Box width in pixels.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Box height in pixels.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Box area in square pixels.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point `(cx, cy)`.
    pub fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Bottom-center point — the ground-contact point used by the
    /// image-to-ground transform.
    pub fn bottom_center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, self.y1)
    }

    /// Intersection area with `other`.
    pub fn intersection_area(&self, other: &BBox) -> f64 {
        let w = (self.x1.min(other.x1) - self.x0.max(other.x0)).max(0.0);
        let h = (self.y1.min(other.y1) - self.y0.max(other.y0)).max(0.0);
        w * h
    }

    /// Intersection-over-Union with `other` (0 when either box is empty).
    ///
    /// The paper uses IoU ≥ 60 % as the "correctly detected" criterion
    /// (§VI-A).
    pub fn iou(&self, other: &BBox) -> f64 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// The box translated by `(dx, dy)` pixels.
    pub fn translated(&self, dx: f64, dy: f64) -> BBox {
        BBox {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// The box clipped to an image of `width`×`height` pixels, or `None`
    /// when nothing remains inside.
    pub fn clipped(&self, width: f64, height: f64) -> Option<BBox> {
        let x0 = self.x0.max(0.0);
        let y0 = self.y0.max(0.0);
        let x1 = self.x1.min(width);
        let y1 = self.y1.min(height);
        (x0 < x1 && y0 < y1).then(|| BBox::new(x0, y0, x1, y1))
    }

    /// Euclidean distance between the two box centers.
    pub fn center_distance(&self, other: &BBox) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        (ax - bx).hypot(ay - by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_accessors() {
        let b = BBox::new(10.0, 20.0, 30.0, 60.0);
        assert_eq!(b.width(), 20.0);
        assert_eq!(b.height(), 40.0);
        assert_eq!(b.area(), 800.0);
        assert_eq!(b.center(), (20.0, 40.0));
        assert_eq!(b.bottom_center(), (20.0, 60.0));
    }

    #[test]
    fn from_center_roundtrip() {
        let b = BBox::from_center(50.0, 40.0, 10.0, 20.0);
        assert_eq!(b, BBox::new(45.0, 30.0, 55.0, 50.0));
    }

    #[test]
    fn iou_identical_is_one() {
        let b = BBox::new(0.0, 0.0, 10.0, 10.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(20.0, 20.0, 30.0, 30.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(5.0, 0.0, 15.0, 10.0);
        // intersection 50, union 150.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn translated_moves_box() {
        let b = BBox::new(0.0, 0.0, 10.0, 10.0).translated(5.0, -2.0);
        assert_eq!(
            b,
            BBox {
                x0: 5.0,
                y0: -2.0,
                x1: 15.0,
                y1: 8.0
            }
        );
    }

    #[test]
    fn clipped_behaviour() {
        let b = BBox::new(-5.0, -5.0, 10.0, 10.0);
        assert_eq!(
            b.clipped(100.0, 100.0).unwrap(),
            BBox::new(0.0, 0.0, 10.0, 10.0)
        );
        let out = BBox::new(200.0, 200.0, 300.0, 300.0);
        assert!(out.clipped(100.0, 100.0).is_none());
    }

    #[test]
    fn center_distance() {
        let a = BBox::from_center(0.0, 0.0, 2.0, 2.0);
        let b = BBox::from_center(3.0, 4.0, 2.0, 2.0);
        assert!((a.center_distance(&b) - 5.0).abs() < 1e-12);
    }
}
