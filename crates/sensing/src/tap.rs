//! In-line sensor taps: hooks between capture and delivery.
//!
//! A [`SensorTap`] sits on the sensor side of the E/E network — *before* any
//! man-in-the-middle attacker and before the ADS perception stack — and may
//! rewrite or withhold each measurement. The fault-injection subsystem
//! (`av-faults`) implements this trait; [`NullTap`] is the no-op used by
//! unfaulted runs and is guaranteed not to touch the data.

use crate::frame::CameraFrame;
use crate::gps::GpsImuFix;
use crate::lidar::LidarScan;

/// What happens to a camera frame after passing through a tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CameraTapVerdict {
    /// Deliver the (possibly rewritten) frame downstream.
    Deliver,
    /// The frame is lost: neither the attacker nor the ADS sees it.
    Drop,
}

/// A hook on the sensor capture paths.
///
/// Default implementations deliver everything untouched, so implementors
/// override only the channels they care about.
pub trait SensorTap {
    /// Inspects/rewrites one camera frame; returns whether it is delivered.
    fn on_camera(&mut self, _frame: &mut CameraFrame) -> CameraTapVerdict {
        CameraTapVerdict::Deliver
    }

    /// Inspects/rewrites one LiDAR sweep; `false` drops the whole scan.
    fn on_lidar(&mut self, _scan: &mut LidarScan) -> bool {
        true
    }

    /// Inspects/rewrites one GPS/IMU fix (always delivered — the bus does
    /// not drop fixes, but a fault may bias them).
    fn on_gps(&mut self, _fix: &mut GpsImuFix) {}
}

/// The identity tap: every measurement passes through bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTap;

impl SensorTap for NullTap {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Camera;
    use crate::frame::capture;
    use av_simkit::actor::{Actor, ActorId, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::math::Vec2;
    use av_simkit::road::Road;
    use av_simkit::world::World;

    #[test]
    fn null_tap_passes_everything_unchanged() {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut world = World::new(Road::default(), ego);
        world
            .add_actor(Actor::new(
                ActorId(1),
                ActorKind::Car,
                Vec2::new(30.0, 0.0),
                5.0,
                Behavior::CruiseStraight { speed: 5.0 },
            ))
            .unwrap();
        let mut tap = NullTap;

        let original = capture(&Camera::default(), &world, 0, false);
        let mut frame = original.clone();
        assert_eq!(tap.on_camera(&mut frame), CameraTapVerdict::Deliver);
        assert_eq!(frame, original);

        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let lidar = crate::lidar::Lidar::default();
        let original = lidar.scan(&world, &mut rng);
        let mut scan = original.clone();
        assert!(tap.on_lidar(&mut scan));
        assert_eq!(scan, original);

        let gps = crate::gps::GpsImu::default();
        let original = gps.fix(&world, &mut rng);
        let mut fix = original;
        tap.on_gps(&mut fix);
        assert_eq!(fix, original);
    }
}
