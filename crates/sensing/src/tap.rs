//! In-line sensor taps: hooks between capture and delivery.
//!
//! A [`SensorTap`] sits on the sensor side of the E/E network — *before* any
//! man-in-the-middle attacker and before the ADS perception stack — and may
//! rewrite or withhold each measurement. The fault-injection subsystem
//! (`av-faults`) implements this trait; [`NullTap`] is the no-op used by
//! unfaulted runs and is guaranteed not to touch the data.

use crate::frame::CameraFrame;
use crate::gps::GpsImuFix;
use crate::lidar::LidarScan;
use av_telemetry::{SensorChannel, Stage, Telemetry, TraceEvent};

/// What happens to a camera frame after passing through a tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CameraTapVerdict {
    /// Deliver the (possibly rewritten) frame downstream.
    Deliver,
    /// The frame is lost: neither the attacker nor the ADS sees it.
    Drop,
}

/// A hook on the sensor capture paths.
///
/// Default implementations deliver everything untouched, so implementors
/// override only the channels they care about.
pub trait SensorTap {
    /// Inspects/rewrites one camera frame; returns whether it is delivered.
    fn on_camera(&mut self, _frame: &mut CameraFrame) -> CameraTapVerdict {
        CameraTapVerdict::Deliver
    }

    /// Inspects/rewrites one LiDAR sweep; `false` drops the whole scan.
    fn on_lidar(&mut self, _scan: &mut LidarScan) -> bool {
        true
    }

    /// Inspects/rewrites one GPS/IMU fix (always delivered — the bus does
    /// not drop fixes, but a fault may bias them).
    fn on_gps(&mut self, _fix: &mut GpsImuFix) {}
}

/// The identity tap: every measurement passes through bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTap;

impl SensorTap for NullTap {}

/// A tracing decorator around any [`SensorTap`].
///
/// Times each hook as [`Stage::FaultTap`] and emits one
/// [`TraceEvent::SensorSample`] per measurement, recording the channel,
/// sequence number, and whether the inner tap delivered or dropped it. The
/// inner tap's behaviour is otherwise untouched, so wrapping a `NullTap`
/// (or a fault injector) changes no simulation outcome.
#[derive(Debug, Clone, Default)]
pub struct TracingTap<T> {
    inner: T,
    telemetry: Telemetry,
    lidar_seq: u64,
    gps_seq: u64,
}

impl<T: SensorTap> TracingTap<T> {
    /// Wraps `inner`, reporting into `telemetry`.
    pub fn new(inner: T, telemetry: Telemetry) -> TracingTap<T> {
        TracingTap {
            inner,
            telemetry,
            lidar_seq: 0,
            gps_seq: 0,
        }
    }

    /// The wrapped tap (e.g. to read fault-injection statistics).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped tap.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: SensorTap> SensorTap for TracingTap<T> {
    fn on_camera(&mut self, frame: &mut CameraFrame) -> CameraTapVerdict {
        let verdict = {
            let _timer = self.telemetry.time(Stage::FaultTap);
            self.inner.on_camera(frame)
        };
        let (t, seq) = (frame.t, frame.seq);
        self.telemetry.emit(t, || TraceEvent::SensorSample {
            channel: SensorChannel::Camera,
            seq,
            delivered: verdict == CameraTapVerdict::Deliver,
        });
        verdict
    }

    fn on_lidar(&mut self, scan: &mut LidarScan) -> bool {
        let delivered = {
            let _timer = self.telemetry.time(Stage::FaultTap);
            self.inner.on_lidar(scan)
        };
        let (t, seq) = (scan.t, self.lidar_seq);
        self.lidar_seq += 1;
        self.telemetry.emit(t, || TraceEvent::SensorSample {
            channel: SensorChannel::Lidar,
            seq,
            delivered,
        });
        delivered
    }

    fn on_gps(&mut self, fix: &mut GpsImuFix) {
        {
            let _timer = self.telemetry.time(Stage::FaultTap);
            self.inner.on_gps(fix);
        }
        let (t, seq) = (fix.t, self.gps_seq);
        self.gps_seq += 1;
        self.telemetry.emit(t, || TraceEvent::SensorSample {
            channel: SensorChannel::Gps,
            seq,
            delivered: true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Camera;
    use crate::frame::capture;
    use av_simkit::actor::{Actor, ActorId, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::math::Vec2;
    use av_simkit::road::Road;
    use av_simkit::world::World;

    #[test]
    fn null_tap_passes_everything_unchanged() {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut world = World::new(Road::default(), ego);
        world
            .add_actor(Actor::new(
                ActorId(1),
                ActorKind::Car,
                Vec2::new(30.0, 0.0),
                5.0,
                Behavior::CruiseStraight { speed: 5.0 },
            ))
            .unwrap();
        let mut tap = NullTap;

        let original = capture(&Camera::default(), &world, 0, false);
        let mut frame = original.clone();
        assert_eq!(tap.on_camera(&mut frame), CameraTapVerdict::Deliver);
        assert_eq!(frame, original);

        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let lidar = crate::lidar::Lidar::default();
        let original = lidar.scan(&world, &mut rng);
        let mut scan = original.clone();
        assert!(tap.on_lidar(&mut scan));
        assert_eq!(scan, original);

        let gps = crate::gps::GpsImu::default();
        let original = gps.fix(&world, &mut rng);
        let mut fix = original;
        tap.on_gps(&mut fix);
        assert_eq!(fix, original);
    }
}
