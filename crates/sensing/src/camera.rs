//! Pinhole camera: world → image projection and image → ground
//! back-projection.
//!
//! The camera is mounted at the ego's front bumper looking down the road
//! (+x). The paper's main camera produces 1920×1080 frames (§V-B); the
//! default intrinsics here give a ~60° horizontal field of view, typical for
//! an automotive main camera.

use crate::bbox::BBox;
use av_simkit::actor::Actor;
use av_simkit::math::Vec2;
use serde::{Deserialize, Serialize};

/// Pinhole camera intrinsics + mounting geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Image width in pixels.
    pub width: f64,
    /// Image height in pixels.
    pub height: f64,
    /// Focal length in pixels (square pixels: fx = fy).
    pub focal: f64,
    /// Camera height above the ground plane (m).
    pub mount_height: f64,
    /// Longitudinal offset of the camera from the ego center (m).
    pub mount_forward: f64,
    /// Minimum depth at which objects project sensibly (m).
    pub min_depth: f64,
    /// Maximum usable depth (m).
    pub max_depth: f64,
}

impl Default for Camera {
    fn default() -> Self {
        // 60° horizontal FOV at 1920 px: focal = 960 / tan(30°).
        Camera {
            width: 1920.0,
            height: 1080.0,
            focal: 960.0 / (30f64.to_radians()).tan(),
            mount_height: 1.4,
            mount_forward: 2.0,
            min_depth: 3.0,
            max_depth: 150.0,
        }
    }
}

impl Camera {
    /// Principal point (image center).
    pub fn principal_point(&self) -> (f64, f64) {
        (self.width / 2.0, self.height / 2.0)
    }

    /// Projects `actor` (seen from `ego`) to an image bounding box.
    ///
    /// Returns the box plus the depth (m), or `None` when the actor is
    /// outside the usable depth range or projects entirely off-image.
    pub fn project(&self, ego: &Actor, actor: &Actor) -> Option<(BBox, f64)> {
        let cam_x = ego.pose.position.x + self.mount_forward;
        let cam_y = ego.pose.position.y;
        let depth = actor.pose.position.x - cam_x;
        if depth < self.min_depth || depth > self.max_depth {
            return None;
        }
        let (cx, cy) = self.principal_point();
        // Image u grows rightward; road +y is to the left of travel.
        let lateral = actor.pose.position.y - cam_y;
        let u = cx - self.focal * lateral / depth;
        let half_w_world = actor.half_extents().y;
        let w = self.focal * (2.0 * half_w_world) / depth;
        // Vertical: ground contact at camera-height below the horizon.
        let v_bottom = cy + self.focal * self.mount_height / depth;
        let v_top = cy + self.focal * (self.mount_height - actor.size.height) / depth;
        let bbox = BBox::new(u - w / 2.0, v_top, u + w / 2.0, v_bottom);
        bbox.clipped(self.width, self.height).map(|b| (b, depth))
    }

    /// Back-projects an image box using the known class height: depth from
    /// apparent size (`depth = f·H / h_px`), lateral from the column offset.
    /// Far more stable than ground-contact ranging because the box height
    /// only carries the detector's small size jitter, not its center noise.
    ///
    /// Returns `None` for degenerate boxes.
    pub fn back_project_with_height(&self, bbox: &BBox, object_height: f64) -> Option<Vec2> {
        let h = bbox.height();
        if h < 1.0 || object_height <= 0.0 {
            return None;
        }
        let depth = self.focal * object_height / h;
        if depth < self.min_depth || depth > self.max_depth {
            return None;
        }
        let (cx, _) = self.principal_point();
        let (u, _) = bbox.center();
        let lateral = -(u - cx) * depth / self.focal;
        Some(Vec2::new(depth + self.mount_forward, lateral))
    }

    /// Back-projects an image box to a ground-plane position relative to the
    /// ego: the bottom-center pixel is intersected with the ground.
    ///
    /// Returns `None` when the bottom edge is at or above the horizon (no
    /// ground intersection). This is the perception stack's "T" transform
    /// (Fig. 1 of the paper).
    pub fn back_project(&self, bbox: &BBox) -> Option<Vec2> {
        let (u, v_bottom) = bbox.bottom_center();
        let (cx, cy) = self.principal_point();
        let dv = v_bottom - cy;
        if dv <= 1e-9 {
            return None; // at or above the horizon
        }
        let depth = self.focal * self.mount_height / dv;
        let lateral = -(u - cx) * depth / self.focal;
        Some(Vec2::new(depth + self.mount_forward, lateral))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_simkit::actor::{ActorId, ActorKind};
    use av_simkit::behavior::Behavior;

    fn ego() -> Actor {
        Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego)
    }

    fn car(x: f64, y: f64) -> Actor {
        Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(x, y),
            0.0,
            Behavior::Parked,
        )
    }

    #[test]
    fn centered_object_projects_on_axis() {
        let cam = Camera::default();
        let (bbox, depth) = cam.project(&ego(), &car(30.0, 0.0)).unwrap();
        let (u, _) = bbox.center();
        assert!((u - 960.0).abs() < 1e-6, "u = {u}");
        assert!((depth - 28.0).abs() < 1e-9);
        // Bottom edge below the principal point (on the ground).
        assert!(bbox.y1 > 540.0);
    }

    #[test]
    fn left_object_projects_left_of_center() {
        let cam = Camera::default();
        // +y (left of travel) must land at u < cx.
        let (bbox, _) = cam.project(&ego(), &car(30.0, 3.5)).unwrap();
        assert!(bbox.center().0 < 960.0);
        let (bbox_r, _) = cam.project(&ego(), &car(30.0, -3.5)).unwrap();
        assert!(bbox_r.center().0 > 960.0);
    }

    #[test]
    fn nearer_objects_look_bigger() {
        let cam = Camera::default();
        let (near, _) = cam.project(&ego(), &car(20.0, 0.0)).unwrap();
        let (far, _) = cam.project(&ego(), &car(60.0, 0.0)).unwrap();
        assert!(near.area() > far.area());
    }

    #[test]
    fn out_of_range_returns_none() {
        let cam = Camera::default();
        assert!(cam.project(&ego(), &car(3.0, 0.0)).is_none(), "too close");
        assert!(cam.project(&ego(), &car(500.0, 0.0)).is_none(), "too far");
        assert!(cam.project(&ego(), &car(-20.0, 0.0)).is_none(), "behind");
    }

    #[test]
    fn back_projection_inverts_projection() {
        let cam = Camera::default();
        for &(x, y) in &[(20.0, 0.0), (40.0, 2.0), (80.0, -3.0)] {
            let target = car(x, y);
            let (bbox, _) = cam.project(&ego(), &target).unwrap();
            let pos = cam.back_project(&bbox).unwrap();
            // Bottom-center back-projects to the near face center; allow the
            // half-length offset plus clipping slack.
            assert!((pos.x - x).abs() < 3.0, "x: {} vs {}", pos.x, x);
            assert!((pos.y - y).abs() < 0.1, "y: {} vs {}", pos.y, y);
        }
    }

    #[test]
    fn back_project_above_horizon_is_none() {
        let cam = Camera::default();
        let sky = BBox::new(900.0, 100.0, 1000.0, 200.0);
        assert!(cam.back_project(&sky).is_none());
    }

    #[test]
    fn pedestrian_taller_than_wide_in_image() {
        let cam = Camera::default();
        let ped = Actor::new(
            ActorId(2),
            ActorKind::Pedestrian,
            Vec2::new(25.0, 1.0),
            0.0,
            Behavior::Parked,
        );
        let (bbox, _) = cam.project(&ego(), &ped).unwrap();
        assert!(bbox.height() > bbox.width());
    }
}
