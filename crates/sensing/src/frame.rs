//! Camera frames: the payload the ADS consumes and the attacker taps.

use crate::bbox::BBox;
use crate::camera::Camera;
use crate::image::{Raster, RASTER_SCALE};
use av_simkit::actor::{ActorId, ActorKind};
use av_simkit::world::World;
use serde::{Deserialize, Serialize};

/// Ground-truth projection of one world actor into the image.
///
/// The detector model consumes these; the man-in-the-middle attacker may
/// rewrite them (translate the box within the noise gate, or mark it
/// suppressed) before the detector runs — that rewrite is exactly the effect
/// the pixel-space patch in `robotack::patch` realizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthBox {
    /// Which actor this projection belongs to.
    pub actor: ActorId,
    /// Detection class.
    pub kind: ActorKind,
    /// Image bounding box.
    pub bbox: BBox,
    /// Depth from the camera (m).
    pub depth: f64,
    /// Fraction of this box covered by nearer boxes (0 = fully visible).
    pub occlusion: f64,
    /// Set by the attacker: the detector will not emit this object.
    pub suppressed: bool,
}

/// One camera frame: timestamp, sequence number, ground-truth boxes, and an
/// optional rendered raster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CameraFrame {
    /// Monotone frame sequence number.
    pub seq: u64,
    /// Capture time (s).
    pub t: f64,
    /// Ground-truth image boxes, sorted nearest-first.
    pub truth: Vec<TruthBox>,
    /// Rendered luminance raster (only when requested; see [`Camera`] docs).
    pub raster: Option<Raster>,
}

/// Occlusion fraction above which the detector cannot see an object.
pub const OCCLUSION_LIMIT: f64 = 0.7;

/// Luminance used when rendering each actor class.
pub fn class_luminance(kind: ActorKind) -> f32 {
    match kind {
        ActorKind::Car => 0.6,
        ActorKind::Truck => 0.75,
        ActorKind::Pedestrian => 0.9,
    }
}

/// Captures a camera frame of `world` from the ego's camera.
///
/// `with_raster` additionally renders the luminance raster (slower; used by
/// the pixel-space attack demonstration and the examples).
pub fn capture(camera: &Camera, world: &World, seq: u64, with_raster: bool) -> CameraFrame {
    let mut frame = CameraFrame::default();
    capture_into(camera, world, seq, with_raster, &mut frame);
    frame
}

/// Like [`capture`] but reuses `frame`'s buffers (the truth `Vec` and, when
/// `with_raster`, the raster allocation), so the 15 Hz loop performs no
/// steady-state allocation. Produces a frame identical to [`capture`].
pub fn capture_into(
    camera: &Camera,
    world: &World,
    seq: u64,
    with_raster: bool,
    frame: &mut CameraFrame,
) {
    let ego = world.ego();
    let CameraFrame { truth, raster, .. } = frame;
    truth.clear();
    truth.extend(world.others().filter_map(|actor| {
        camera.project(ego, actor).map(|(bbox, depth)| TruthBox {
            actor: actor.id,
            kind: actor.kind,
            bbox,
            depth,
            occlusion: 0.0,
            suppressed: false,
        })
    }));
    truth.sort_by(|a, b| a.depth.total_cmp(&b.depth));

    // Occlusion: fraction of each box covered by any single nearer box
    // (pairwise max — adequate for the sparse scenes in the scenarios).
    for i in 0..truth.len() {
        let mut occ: f64 = 0.0;
        for j in 0..i {
            let inter = truth[i].bbox.intersection_area(&truth[j].bbox);
            let area = truth[i].bbox.area();
            if area > 0.0 {
                occ = occ.max(inter / area);
            }
        }
        truth[i].occlusion = occ;
    }

    if with_raster {
        let target = raster.get_or_insert_with(|| Raster::new(0, 0, 0.0));
        render_into(camera, truth, target);
    } else {
        *raster = None;
    }
    frame.seq = seq;
    frame.t = world.time();
}

/// Renders the ground-truth boxes into a fresh raster, far-to-near so nearer
/// objects paint over farther ones.
pub fn render(camera: &Camera, truth: &[TruthBox]) -> Raster {
    let mut raster = Raster::new(0, 0, 0.0);
    render_into(camera, truth, &mut raster);
    raster
}

/// Like [`render`] but reuses `raster`'s allocation (re-dimensioned and
/// cleared to the background first).
pub fn render_into(camera: &Camera, truth: &[TruthBox], raster: &mut Raster) {
    raster.reset(
        (camera.width / RASTER_SCALE) as usize,
        (camera.height / RASTER_SCALE) as usize,
        0.1,
    );
    for tb in truth.iter().rev() {
        raster.fill_camera_rect(&tb.bbox, class_luminance(tb.kind));
    }
}

impl CameraFrame {
    /// The truth box for `actor`, if it projects into this frame.
    pub fn truth_for(&self, actor: ActorId) -> Option<&TruthBox> {
        self.truth.iter().find(|t| t.actor == actor)
    }

    /// Mutable access to the truth box for `actor` (the attacker's hook).
    pub fn truth_for_mut(&mut self, actor: ActorId) -> Option<&mut TruthBox> {
        self.truth.iter_mut().find(|t| t.actor == actor)
    }

    /// Boxes the detector can plausibly see: not suppressed, not occluded
    /// beyond [`OCCLUSION_LIMIT`].
    pub fn visible(&self) -> impl Iterator<Item = &TruthBox> {
        self.truth
            .iter()
            .filter(|t| !t.suppressed && t.occlusion < OCCLUSION_LIMIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_simkit::actor::{Actor, ActorId, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::math::Vec2;
    use av_simkit::road::Road;

    fn world() -> World {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(30.0, 0.0),
            5.0,
            Behavior::CruiseStraight { speed: 5.0 },
        ))
        .unwrap();
        w.add_actor(Actor::new(
            ActorId(2),
            ActorKind::Pedestrian,
            Vec2::new(50.0, 3.0),
            0.0,
            Behavior::Parked,
        ))
        .unwrap();
        w
    }

    #[test]
    fn capture_projects_visible_actors_sorted_by_depth() {
        let frame = capture(&Camera::default(), &world(), 7, false);
        assert_eq!(frame.seq, 7);
        assert_eq!(frame.truth.len(), 2);
        assert_eq!(frame.truth[0].actor, ActorId(1));
        assert!(frame.truth[0].depth < frame.truth[1].depth);
        assert!(frame.raster.is_none());
    }

    #[test]
    fn occlusion_detected_for_aligned_objects() {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        // Two cars dead ahead; the far one hides behind the near one.
        for (id, x) in [(1u32, 20.0), (2, 40.0)] {
            w.add_actor(Actor::new(
                ActorId(id),
                ActorKind::Car,
                Vec2::new(x, 0.0),
                0.0,
                Behavior::Parked,
            ))
            .unwrap();
        }
        let frame = capture(&Camera::default(), &w, 0, false);
        let far = frame.truth_for(ActorId(2)).unwrap();
        assert!(
            far.occlusion > OCCLUSION_LIMIT,
            "occlusion = {}",
            far.occlusion
        );
        assert_eq!(frame.visible().count(), 1);
    }

    #[test]
    fn suppression_hides_from_visible() {
        let mut frame = capture(&Camera::default(), &world(), 0, false);
        frame.truth_for_mut(ActorId(1)).unwrap().suppressed = true;
        assert_eq!(frame.visible().count(), 1);
        assert_eq!(frame.visible().next().unwrap().actor, ActorId(2));
    }

    #[test]
    fn raster_renders_objects_brighter_than_background() {
        let frame = capture(&Camera::default(), &world(), 0, true);
        let raster = frame.raster.as_ref().unwrap();
        let car_box = &frame.truth_for(ActorId(1)).unwrap().bbox;
        assert!(raster.mean_in_camera_rect(car_box) > 0.5);
    }

    #[test]
    fn pedestrian_renders_brighter_than_car() {
        assert!(class_luminance(ActorKind::Pedestrian) > class_luminance(ActorKind::Car));
    }
}
