//! LiDAR model: object-level returns with class-dependent range limits.
//!
//! The paper's key fusion asymmetry (§VI-C) is that "LiDAR-based object
//! detection fails to register pedestrians at a higher longitudinal distance,
//! while recognizing vehicles at the same distance". The model reproduces
//! that: vehicles return solidly out to ~80 m, pedestrians only to ~25 m,
//! with a soft detection-probability rolloff near each limit.

use av_simkit::actor::{ActorKind, Size};
use av_simkit::math::Vec2;
use av_simkit::rng;
use av_simkit::world::World;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One object-level LiDAR return (a clustered point-cloud segment).
///
/// Deliberately carries **no actor identity and no class label**: clustering
/// yields geometry only, and the fusion stage must associate returns with
/// camera tracks itself, exactly the disagreement the attack exploits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LidarObject {
    /// Measured object center in world coordinates (m).
    pub position: Vec2,
    /// Measured footprint size (length, width) in meters.
    pub extent: (f64, f64),
}

/// A full LiDAR sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LidarScan {
    /// Sweep completion time (s).
    pub t: f64,
    /// Clustered object returns.
    pub objects: Vec<LidarObject>,
}

/// LiDAR sensor model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lidar {
    /// Range (m) out to which vehicles return reliably.
    pub vehicle_range: f64,
    /// Range (m) out to which pedestrians return reliably.
    ///
    /// Small targets stop clustering reliably much earlier than vehicles —
    /// this constant is what makes pedestrians camera-only at the distances
    /// where DS-2/DS-4 play out.
    pub pedestrian_range: f64,
    /// Width of the soft rolloff band before each range limit (m).
    pub rolloff: f64,
    /// 1σ position noise per axis (m).
    pub position_noise: f64,
}

impl Default for Lidar {
    fn default() -> Self {
        Lidar {
            vehicle_range: 80.0,
            pedestrian_range: 25.0,
            rolloff: 5.0,
            position_noise: 0.1,
        }
    }
}

impl Lidar {
    /// Reliable range for a class.
    pub fn range_for(&self, kind: ActorKind) -> f64 {
        if kind.is_vehicle() {
            self.vehicle_range
        } else {
            self.pedestrian_range
        }
    }

    /// Probability that an object of `kind` at `range` meters produces a
    /// clustered return: 1 inside the reliable range, linear rolloff to 0
    /// across the rolloff band.
    pub fn detection_probability(&self, kind: ActorKind, range: f64) -> f64 {
        let limit = self.range_for(kind);
        if range <= limit {
            1.0
        } else if range >= limit + self.rolloff {
            0.0
        } else {
            1.0 - (range - limit) / self.rolloff
        }
    }

    /// Produces a sweep of `world` from the ego's LiDAR.
    pub fn scan<R: Rng + ?Sized>(&self, world: &World, rng_: &mut R) -> LidarScan {
        let ego = world.ego();
        let objects = world
            .others()
            .filter_map(|actor| {
                let range = actor.pose.position.distance(ego.pose.position);
                if !rng::bernoulli(rng_, self.detection_probability(actor.kind, range)) {
                    return None;
                }
                let noise = Vec2::new(
                    rng::normal(rng_, 0.0, self.position_noise),
                    rng::normal(rng_, 0.0, self.position_noise),
                );
                let Size { length, width, .. } = actor.size;
                Some(LidarObject {
                    position: actor.pose.position + noise,
                    extent: (length, width),
                })
            })
            .collect();
        LidarScan {
            t: world.time(),
            objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_simkit::actor::{Actor, ActorId};
    use av_simkit::behavior::Behavior;
    use av_simkit::road::Road;
    use rand::SeedableRng;

    fn world_with_actor(kind: ActorKind, x: f64) -> World {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        w.add_actor(Actor::new(
            ActorId(1),
            kind,
            Vec2::new(x, 0.0),
            0.0,
            Behavior::Parked,
        ))
        .unwrap();
        w
    }

    #[test]
    fn vehicles_detected_far_pedestrians_not() {
        let lidar = Lidar::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w_v = world_with_actor(ActorKind::Car, 60.0);
        assert_eq!(lidar.scan(&w_v, &mut rng).objects.len(), 1);
        let w_p = world_with_actor(ActorKind::Pedestrian, 60.0);
        assert_eq!(lidar.scan(&w_p, &mut rng).objects.len(), 0);
    }

    #[test]
    fn pedestrian_detected_close() {
        let lidar = Lidar::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = world_with_actor(ActorKind::Pedestrian, 15.0);
        assert_eq!(lidar.scan(&w, &mut rng).objects.len(), 1);
    }

    #[test]
    fn detection_probability_rolloff() {
        let lidar = Lidar::default();
        assert_eq!(lidar.detection_probability(ActorKind::Car, 50.0), 1.0);
        assert_eq!(lidar.detection_probability(ActorKind::Car, 90.0), 0.0);
        let p = lidar.detection_probability(ActorKind::Car, 82.5);
        assert!((p - 0.5).abs() < 1e-9);
        assert!(lidar.detection_probability(ActorKind::Pedestrian, 30.0) < 1e-9);
    }

    #[test]
    fn returns_are_noisy_but_close() {
        let lidar = Lidar::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = world_with_actor(ActorKind::Car, 40.0);
        let scan = lidar.scan(&w, &mut rng);
        let obj = scan.objects[0];
        assert!((obj.position.x - 40.0).abs() < 1.0);
        assert!(obj.position.y.abs() < 1.0);
        assert_eq!(obj.extent, (4.6, 1.9));
    }

    #[test]
    fn scan_timestamps_match_world() {
        let lidar = Lidar::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut w = world_with_actor(ActorKind::Car, 40.0);
        w.step(0.5, 0.0);
        let scan = lidar.scan(&w, &mut rng);
        assert!((scan.t - 0.5).abs() < 1e-6);
    }
}
