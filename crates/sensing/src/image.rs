//! Low-resolution luminance raster for the pixel-space attack demonstration.
//!
//! Rendering full 1920×1080 frames at 15 Hz for thousands of runs is wasted
//! work — the campaigns operate on ground-truth image boxes. The raster
//! exists to demonstrate that the bbox translations the trajectory hijacker
//! computes are *pixel-realizable* (the paper perturbs real pixels, §IV-C):
//! the patch optimizer in `robotack::patch` works on this raster against a
//! pixel-driven detector.

use crate::bbox::BBox;
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Downscale factor from camera pixels to raster cells.
pub const RASTER_SCALE: f64 = 10.0;

/// A grayscale image with `f32` luminance values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raster {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Raster {
    /// Creates a raster filled with `background` luminance.
    pub fn new(width: usize, height: usize, background: f32) -> Self {
        Raster {
            width,
            height,
            data: vec![background; width * height],
        }
    }

    /// Re-dimensions the raster and fills it with `background`, reusing the
    /// existing allocation — the 15 Hz capture loop's alternative to
    /// [`Raster::new`].
    pub fn reset(&mut self, width: usize, height: usize, background: f32) {
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.resize(width * height, background);
    }

    /// Raster width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raster height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Luminance at `(x, y)`; returns 0 outside the raster.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        if x < self.width && y < self.height {
            self.data[y * self.width + x]
        } else {
            0.0
        }
    }

    /// Sets the luminance at `(x, y)` (clamped to `[0, 1]`); out-of-range
    /// coordinates are ignored.
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        if x < self.width && y < self.height {
            self.data[y * self.width + x] = v.clamp(0.0, 1.0);
        }
    }

    /// Adds `dv` to the luminance at `(x, y)` (clamped to `[0, 1]`).
    pub fn add(&mut self, x: usize, y: usize, dv: f32) {
        if x < self.width && y < self.height {
            let i = y * self.width + x;
            self.data[i] = (self.data[i] + dv).clamp(0.0, 1.0);
        }
    }

    /// Fills the axis-aligned rectangle given in *camera pixel* coordinates
    /// with luminance `v` (the rectangle is downscaled by [`RASTER_SCALE`]).
    pub fn fill_camera_rect(&mut self, bbox: &BBox, v: f32) {
        let x0 = (bbox.x0 / RASTER_SCALE).floor().max(0.0) as usize;
        let y0 = (bbox.y0 / RASTER_SCALE).floor().max(0.0) as usize;
        let x1 = ((bbox.x1 / RASTER_SCALE).ceil() as usize).min(self.width);
        let y1 = ((bbox.y1 / RASTER_SCALE).ceil() as usize).min(self.height);
        for y in y0..y1 {
            for x in x0..x1 {
                self.data[y * self.width + x] = v.clamp(0.0, 1.0);
            }
        }
    }

    /// Mean luminance inside a camera-pixel rectangle (0 if degenerate).
    pub fn mean_in_camera_rect(&self, bbox: &BBox) -> f32 {
        let x0 = (bbox.x0 / RASTER_SCALE).floor().max(0.0) as usize;
        let y0 = (bbox.y0 / RASTER_SCALE).floor().max(0.0) as usize;
        let x1 = ((bbox.x1 / RASTER_SCALE).ceil() as usize).min(self.width);
        let y1 = ((bbox.y1 / RASTER_SCALE).ceil() as usize).min(self.height);
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for y in y0..y1 {
            for x in x0..x1 {
                sum += f64::from(self.data[y * self.width + x]);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (sum / n as f64) as f32
        }
    }

    /// Sum of absolute per-cell differences with `other` — the perturbation
    /// "energy" budget checked by the stealthiness tests.
    ///
    /// # Panics
    ///
    /// Panics if the rasters have different dimensions.
    pub fn l1_distance(&self, other: &Raster) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "raster dimensions differ"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| f64::from((a - b).abs()))
            .sum()
    }

    /// Serializes the raster into a length-prefixed little-endian byte
    /// payload — the "JFIF payload" stand-in that the man-in-the-middle tap
    /// intercepts on the camera Ethernet link (§III-B).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.data.len() * 4);
        buf.put_u32_le(self.width as u32);
        buf.put_u32_le(self.height as u32);
        for v in &self.data {
            buf.put_f32_le(*v);
        }
        buf.freeze()
    }

    /// Deserializes a payload produced by [`Raster::to_bytes`].
    ///
    /// Returns `None` on a malformed payload.
    pub fn from_bytes(mut payload: Bytes) -> Option<Raster> {
        use bytes::Buf;
        if payload.remaining() < 8 {
            return None;
        }
        let width = payload.get_u32_le() as usize;
        let height = payload.get_u32_le() as usize;
        // A hostile header can claim dimensions whose product overflows
        // `usize` (panics in debug builds) or is absurdly large; validate
        // the size arithmetic before trusting it or allocating anything.
        let cells = width.checked_mul(height)?;
        let expected_bytes = cells.checked_mul(4)?;
        if payload.remaining() != expected_bytes {
            return None;
        }
        let mut data = Vec::with_capacity(cells);
        for _ in 0..cells {
            data.push(payload.get_f32_le());
        }
        Some(Raster {
            width,
            height,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_uniform_background() {
        let r = Raster::new(4, 3, 0.25);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 3);
        assert!((0..3).all(|y| (0..4).all(|x| r.get(x, y) == 0.25)));
    }

    #[test]
    fn set_and_add_clamp() {
        let mut r = Raster::new(2, 2, 0.5);
        r.set(0, 0, 2.0);
        assert_eq!(r.get(0, 0), 1.0);
        r.add(1, 1, -3.0);
        assert_eq!(r.get(1, 1), 0.0);
        // Out-of-range access is a no-op / zero.
        r.set(9, 9, 1.0);
        assert_eq!(r.get(9, 9), 0.0);
    }

    #[test]
    fn fill_camera_rect_covers_downscaled_cells() {
        let mut r = Raster::new(192, 108, 0.1);
        let bbox = BBox::new(100.0, 200.0, 300.0, 400.0);
        r.fill_camera_rect(&bbox, 0.9);
        assert_eq!(r.get(15, 25), 0.9); // inside
        assert!((r.get(5, 5) - 0.1).abs() < 1e-6); // outside
        assert!((r.mean_in_camera_rect(&bbox) - 0.9).abs() < 1e-5);
    }

    #[test]
    fn l1_distance_counts_changes() {
        let a = Raster::new(4, 4, 0.0);
        let mut b = a.clone();
        b.set(1, 1, 0.5);
        b.set(2, 2, 0.25);
        assert!((a.l1_distance(&b) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = Raster::new(8, 6, 0.3);
        r.set(3, 2, 0.77);
        let payload = r.to_bytes();
        let r2 = Raster::from_bytes(payload).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn from_bytes_rejects_malformed() {
        assert!(Raster::from_bytes(Bytes::from_static(&[1, 2, 3])).is_none());
        let mut r = Raster::new(2, 2, 0.0).to_bytes().to_vec();
        r.pop(); // truncate
        assert!(Raster::from_bytes(Bytes::from(r)).is_none());
    }

    #[test]
    fn from_bytes_rejects_overflowing_header() {
        // width * height * 4 overflows usize: must return None, not panic
        // (previously a debug-build multiply-overflow panic).
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(0); // some trailing payload
        assert!(Raster::from_bytes(buf.freeze()).is_none());
        // Huge-but-non-overflowing dims with a tiny payload are rejected too.
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(1 << 16);
        buf.put_u32_le(1 << 16);
        assert!(Raster::from_bytes(buf.freeze()).is_none());
    }

    #[test]
    fn reset_matches_new() {
        let mut r = Raster::new(8, 6, 0.3);
        r.set(3, 2, 0.77);
        r.reset(4, 5, 0.2);
        assert_eq!(r, Raster::new(4, 5, 0.2));
        r.reset(10, 2, 0.9);
        assert_eq!(r, Raster::new(10, 2, 0.9));
    }
}
