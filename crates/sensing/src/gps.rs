//! GPS/IMU model: ego state with small measurement noise.

use av_simkit::math::Vec2;
use av_simkit::rng;
use av_simkit::world::World;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One GPS/IMU fix of the ego state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsImuFix {
    /// Fix time (s).
    pub t: f64,
    /// Measured ego position (m).
    pub position: Vec2,
    /// Measured ego speed (m/s).
    pub speed: f64,
    /// Measured ego longitudinal acceleration (m/s²).
    pub accel: f64,
}

/// GPS/IMU sensor model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsImu {
    /// 1σ position noise per axis (m). RTK-grade GPS: centimeters.
    pub position_noise: f64,
    /// 1σ speed noise (m/s).
    pub speed_noise: f64,
}

impl Default for GpsImu {
    fn default() -> Self {
        GpsImu {
            position_noise: 0.02,
            speed_noise: 0.05,
        }
    }
}

impl GpsImu {
    /// Produces a fix of the ego state.
    pub fn fix<R: Rng + ?Sized>(&self, world: &World, rng_: &mut R) -> GpsImuFix {
        let ego = world.ego();
        GpsImuFix {
            t: world.time(),
            position: ego.pose.position
                + Vec2::new(
                    rng::normal(rng_, 0.0, self.position_noise),
                    rng::normal(rng_, 0.0, self.position_noise),
                ),
            speed: (ego.speed + rng::normal(rng_, 0.0, self.speed_noise)).max(0.0),
            accel: ego.accel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_simkit::actor::{Actor, ActorId, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::road::Road;
    use rand::SeedableRng;

    #[test]
    fn fix_tracks_ego_closely() {
        let ego = Actor::new(
            ActorId(0),
            ActorKind::Car,
            Vec2::new(12.0, 0.0),
            9.0,
            Behavior::Ego,
        );
        let world = World::new(Road::default(), ego);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let fix = GpsImu::default().fix(&world, &mut rng);
        assert!((fix.position.x - 12.0).abs() < 0.2);
        assert!((fix.speed - 9.0).abs() < 0.5);
    }

    #[test]
    fn speed_never_negative() {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 0.0, Behavior::Ego);
        let world = World::new(Road::default(), ego);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(GpsImu::default().fix(&world, &mut rng).speed >= 0.0);
        }
    }
}
