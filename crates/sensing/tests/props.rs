//! Property-based tests for the sensor models.

use av_sensing::bbox::BBox;
use av_sensing::camera::Camera;
use av_sensing::image::Raster;
use av_simkit::actor::{Actor, ActorId, ActorKind};
use av_simkit::behavior::Behavior;
use av_simkit::math::Vec2;
use proptest::prelude::*;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0..1800.0f64, 0.0..1000.0f64, 1.0..200.0f64, 1.0..200.0f64)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn iou_is_bounded_and_symmetric(a in arb_bbox(), b in arb_bbox()) {
        let i1 = a.iou(&b);
        let i2 = b.iou(&a);
        prop_assert!((0.0..=1.0).contains(&i1));
        prop_assert!((i1 - i2).abs() < 1e-12);
    }

    #[test]
    fn iou_with_self_is_one(a in arb_bbox()) {
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn translation_preserves_shape_and_shifts_center(
        a in arb_bbox(), dx in -500.0..500.0f64, dy in -500.0..500.0f64
    ) {
        let t = a.translated(dx, dy);
        prop_assert!((t.width() - a.width()).abs() < 1e-9);
        prop_assert!((t.height() - a.height()).abs() < 1e-9);
        let (cx, cy) = a.center();
        let (tx, ty) = t.center();
        prop_assert!((tx - cx - dx).abs() < 1e-9);
        prop_assert!((ty - cy - dy).abs() < 1e-9);
    }

    #[test]
    fn intersection_never_exceeds_either_area(a in arb_bbox(), b in arb_bbox()) {
        let i = a.intersection_area(&b);
        prop_assert!(i >= 0.0);
        prop_assert!(i <= a.area() + 1e-9);
        prop_assert!(i <= b.area() + 1e-9);
    }

    #[test]
    fn clipped_box_is_inside_the_image(a in arb_bbox(), w in 100.0..2000.0f64, h in 100.0..1200.0f64) {
        if let Some(c) = a.clipped(w, h) {
            prop_assert!(c.x0 >= 0.0 && c.y0 >= 0.0);
            prop_assert!(c.x1 <= w && c.y1 <= h);
            prop_assert!(c.area() <= a.area() + 1e-9);
        }
    }

    /// Projection followed by height-based back-projection recovers the
    /// object position (the transform the perception stack relies on).
    #[test]
    fn project_back_project_height_roundtrip(
        x in 15.0..120.0f64, y in -5.0..5.0f64
    ) {
        let camera = Camera::default();
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let target = Actor::new(ActorId(1), ActorKind::Car, Vec2::new(x, y), 0.0, Behavior::Parked);
        if let Some((bbox, _)) = camera.project(&ego, &target) {
            // Skip boxes clipped by the image border (lossy by design).
            if bbox.x0 > 1.0 && bbox.x1 < camera.width - 1.0
                && bbox.y0 > 1.0 && bbox.y1 < camera.height - 1.0
            {
                let pos = camera
                    .back_project_with_height(&bbox, target.size.height)
                    .expect("in range");
                prop_assert!((pos.x - x).abs() < 0.5, "x {} vs {x}", pos.x);
                prop_assert!((pos.y - y).abs() < 0.3, "y {} vs {y}", pos.y);
            }
        }
    }

    /// Farther objects never project larger.
    #[test]
    fn projected_size_decreases_with_depth(x in 10.0..70.0f64, dx in 5.0..60.0f64) {
        let camera = Camera::default();
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let near = Actor::new(ActorId(1), ActorKind::Car, Vec2::new(x, 0.0), 0.0, Behavior::Parked);
        let far = Actor::new(ActorId(2), ActorKind::Car, Vec2::new(x + dx, 0.0), 0.0, Behavior::Parked);
        if let (Some((nb, _)), Some((fb, _))) =
            (camera.project(&ego, &near), camera.project(&ego, &far))
        {
            prop_assert!(nb.area() >= fb.area() - 1e-9);
        }
    }

    #[test]
    fn raster_bytes_roundtrip(w in 1usize..64, h in 1usize..64, v in 0.0..1.0f32) {
        let mut r = Raster::new(w, h, v);
        r.set(w / 2, h / 2, 1.0 - v);
        let restored = Raster::from_bytes(r.to_bytes()).expect("valid payload");
        prop_assert_eq!(r, restored);
    }

    /// The tap's malformed-payload contract: `from_bytes` must reject (not
    /// panic on) arbitrary garbage, including truncated headers.
    #[test]
    fn raster_from_bytes_never_panics_on_arbitrary_bytes(
        payload in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = Raster::from_bytes(bytes::Bytes::from(payload));
    }

    /// Hostile well-formed headers: any claimed dimensions (including those
    /// whose `w * h * 4` overflows) with a body of the wrong length must be
    /// rejected without panicking — previously a debug-build multiply
    /// overflow.
    #[test]
    fn raster_from_bytes_never_panics_on_hostile_headers(
        w in any::<u32>(),
        h in any::<u32>(),
        body in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::with_capacity(8 + body.len());
        buf.put_u32_le(w);
        buf.put_u32_le(h);
        buf.put_slice(&body);
        if let Some(r) = Raster::from_bytes(buf.freeze()) {
            // Only accepted when the body length matches the header exactly.
            prop_assert_eq!(r.width(), w as usize);
            prop_assert_eq!(r.height(), h as usize);
            prop_assert_eq!(body.len(), (w as usize) * (h as usize) * 4);
        }
    }

    /// `reset` is equivalent to constructing a fresh raster.
    #[test]
    fn raster_reset_matches_new(
        w0 in 0usize..48, h0 in 0usize..48,
        w1 in 0usize..48, h1 in 0usize..48,
        v in 0.0..1.0f32
    ) {
        let mut r = Raster::new(w0, h0, 1.0 - v);
        r.reset(w1, h1, v);
        prop_assert_eq!(r, Raster::new(w1, h1, v));
    }

    #[test]
    fn raster_l1_distance_is_a_metric(w in 1usize..32, h in 1usize..32, v in 0.0..1.0f32) {
        let a = Raster::new(w, h, v);
        let mut b = a.clone();
        b.add(0, 0, 0.25);
        prop_assert_eq!(a.l1_distance(&a), 0.0);
        prop_assert!((a.l1_distance(&b) - b.l1_distance(&a)).abs() < 1e-9);
        prop_assert!(a.l1_distance(&b) >= 0.0);
    }
}
