//! Datasets, normalization, and the training loop.

use crate::matrix::Matrix;
use crate::mlp::{Mlp, TrainScratch};
use crate::optim::Adam;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A supervised regression dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Input feature rows.
    pub inputs: Vec<Vec<f64>>,
    /// Target rows (usually length-1 for scalar regression).
    pub targets: Vec<Vec<f64>>,
}

impl Dataset {
    /// Builds a dataset from (input, target) rows.
    pub fn from_rows<I: IntoIterator<Item = (Vec<f64>, Vec<f64>)>>(rows: I) -> Self {
        let mut d = Dataset::default();
        for (x, y) in rows {
            d.push(x, y);
        }
        d
    }

    /// Appends one example.
    pub fn push(&mut self, input: Vec<f64>, target: Vec<f64>) {
        self.inputs.push(input);
        self.targets.push(target);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Splits into (train, validation) with `train_fraction` of the examples
    /// in the training set, shuffled with `rng`. The paper uses 60/40.
    ///
    /// Allocating convenience wrapper around [`Dataset::split_owned`] (same
    /// RNG draws, same partition).
    pub fn split<R: Rng + ?Sized>(&self, train_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        self.clone().split_owned(train_fraction, rng)
    }

    /// Consuming split: **moves** each example row into its destination set
    /// instead of cloning it, so splitting a dataset the caller no longer
    /// needs performs no per-row allocation. Identical partition and RNG
    /// draws as [`Dataset::split`].
    pub fn split_owned<R: Rng + ?Sized>(
        mut self,
        train_fraction: f64,
        rng: &mut R,
    ) -> (Dataset, Dataset) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let n_train = ((self.len() as f64) * train_fraction).round() as usize;
        let cap_train = n_train.min(self.len());
        let mut train = Dataset {
            inputs: Vec::with_capacity(cap_train),
            targets: Vec::with_capacity(cap_train),
        };
        let mut val = Dataset {
            inputs: Vec::with_capacity(self.len() - cap_train),
            targets: Vec::with_capacity(self.len() - cap_train),
        };
        for (i, &idx) in order.iter().enumerate() {
            let dst = if i < n_train { &mut train } else { &mut val };
            dst.push(
                std::mem::take(&mut self.inputs[idx]),
                std::mem::take(&mut self.targets[idx]),
            );
        }
        (train, val)
    }
}

/// Per-feature affine normalizer (z-scoring) fitted on the training inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Feature means.
    pub mean: Vec<f64>,
    /// Feature standard deviations (≥ 1e-9).
    pub std: Vec<f64>,
}

impl Normalizer {
    /// Fits a normalizer to the dataset inputs.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset) -> Self {
        assert!(
            !data.is_empty(),
            "cannot fit a normalizer to an empty dataset"
        );
        let dim = data.inputs[0].len();
        let n = data.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in &data.inputs {
            for (m, x) in mean.iter_mut().zip(row) {
                *m += x / n;
            }
        }
        let mut std = vec![0.0; dim];
        for row in &data.inputs {
            for ((s, x), m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (x - m) * (x - m) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        Normalizer { mean, std }
    }

    /// Normalizes one input row.
    pub fn apply(&self, input: &[f64]) -> Vec<f64> {
        let mut out = input.to_vec();
        self.apply_into(input, &mut out);
        out
    }

    /// Normalizes one input row into a caller-held buffer (same bits as
    /// [`Normalizer::apply`], no allocation).
    pub fn apply_into(&self, input: &[f64], out: &mut [f64]) {
        for ((o, (x, m)), s) in out
            .iter_mut()
            .zip(input.iter().zip(&self.mean))
            .zip(&self.std)
        {
            *o = (x - m) / s;
        }
    }

    /// Normalizes one input row in place (element-wise, so aliasing input
    /// and output is fine — same bits as [`Normalizer::apply`], no
    /// allocation and no second buffer).
    pub fn apply_in_place(&self, row: &mut [f64]) {
        for ((x, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *x = (*x - m) / s;
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 32,
            learning_rate: 1e-3,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean squared error on the training set after the final epoch.
    pub final_train_loss: f64,
    /// Number of examples trained on.
    pub examples: usize,
    /// Epochs executed.
    pub epochs: usize,
}

/// Trains `net` on `data` with minibatch Adam under the MSE objective
/// (Eq. 3 of the paper) and returns a report.
///
/// With `epochs == 0` no optimization step is taken and the report is still
/// well-defined: `final_train_loss` is the network's *current* MSE over
/// `data` (one dropout-free evaluation pass via [`mse`]), never the
/// `INFINITY` sentinel the loss accumulator starts from.
pub fn train<R: Rng + ?Sized>(
    net: &mut Mlp,
    data: &Dataset,
    config: &TrainConfig,
    rng: &mut R,
) -> TrainReport {
    assert!(!data.is_empty(), "empty training set");
    if config.epochs == 0 {
        return TrainReport {
            final_train_loss: mse(net, data),
            examples: data.len(),
            epochs: 0,
        };
    }
    let mut adam = Adam::new(net.param_count(), config.learning_rate);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut last_loss = f64::INFINITY;
    let in_dim = net.input_dim();
    let out_dim = net.output_dim();
    // All minibatch staging and backprop buffers live outside the epoch loop:
    // steady-state training performs no heap allocation.
    let mut x = Matrix::zeros(0, 0);
    let mut y = Matrix::zeros(0, 0);
    let mut dl = Matrix::zeros(0, 0);
    let mut scratch = TrainScratch::new();
    for _ in 0..config.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let rows = chunk.len();
            x.gather_rows(in_dim, &data.inputs, chunk);
            y.gather_rows(out_dim, &data.targets, chunk);
            // Fused forward: the output layer's epilogue already subtracted
            // the targets, so the last activation holds diff = ŷ − y.
            net.forward_train_diff_into(&x, &y, rng, &mut scratch);
            // MSE: L = mean‖y − ŷ‖²; dL/dŷ = 2(ŷ − y)/n. The loss sum stays
            // a row-major pass out here — folding it into the (tile-ordered)
            // epilogue would reassociate the epoch-loss accumulation.
            let n = (rows * out_dim) as f64;
            dl.reshape(rows, out_dim);
            let diff = scratch.output();
            for r in 0..rows {
                for c in 0..out_dim {
                    let d = diff.get(r, c);
                    epoch_loss += d * d / data.len() as f64;
                    dl.set(r, c, 2.0 * d / n);
                }
            }
            // Fused backward + optimizer: the gradients, the ReLU/dropout
            // backward, the Adam update, and the Wᵀ-shadow refresh all ride
            // the backward GEMMs' epilogues — bit-identical to the split
            // backward-then-cursor-order-Adam reference (see
            // `Mlp::backward_adam_into`).
            let mut step = adam.step();
            net.backward_adam_into(&dl, &mut scratch, &mut step);
        }
        last_loss = epoch_loss;
    }
    TrainReport {
        final_train_loss: last_loss,
        examples: data.len(),
        epochs: config.epochs,
    }
}

/// Mean squared error of `net` over a dataset (validation metric).
///
/// Runs one batched forward pass over the whole dataset instead of an
/// allocating per-row [`Mlp::forward`]. Bit-identical to the per-row loop:
/// every row of [`Mlp::forward_batch_into`] is pinned equal to the scalar
/// path, and both the per-row squared-error sums and the cross-row total
/// accumulate in the same order as before.
pub fn mse(net: &Mlp, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut x = Matrix::zeros(0, 0);
    x.gather_rows(net.input_dim(), &data.inputs, &idx);
    let mut scratch = Matrix::zeros(0, 0);
    let mut out = Matrix::zeros(0, 0);
    net.forward_batch_into(&x, &mut scratch, &mut out);
    let mut total = 0.0;
    for (r, y) in data.targets.iter().enumerate() {
        total += out
            .row(r)
            .iter()
            .zip(y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>();
    }
    total / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn learns_linear_function() {
        let mut r = rng();
        let data = Dataset::from_rows((0..128).map(|i| {
            let x = i as f64 / 128.0;
            (vec![x], vec![3.0 * x - 1.0])
        }));
        let mut net = Mlp::new(&[1, 16, 1], 0.0, &mut r);
        let report = train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 600,
                batch_size: 32,
                learning_rate: 3e-3,
            },
            &mut r,
        );
        assert!(
            report.final_train_loss < 5e-3,
            "loss {}",
            report.final_train_loss
        );
        let y = net.forward(&[0.5])[0];
        assert!((y - 0.5).abs() < 0.15, "f(0.5) = {y}");
    }

    #[test]
    fn learns_nonlinear_function_with_dropout() {
        let mut r = rng();
        let data = Dataset::from_rows((0..256).map(|i| {
            let x = i as f64 / 256.0 * 2.0 - 1.0;
            (vec![x], vec![x * x])
        }));
        let mut net = Mlp::new(&[1, 32, 32, 1], 0.05, &mut r);
        train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 400,
                batch_size: 32,
                learning_rate: 2e-3,
            },
            &mut r,
        );
        let err = mse(&net, &data);
        assert!(err < 0.01, "val mse {err}");
    }

    #[test]
    fn split_partitions_all_examples() {
        let data = Dataset::from_rows((0..100).map(|i| (vec![i as f64], vec![0.0])));
        let (train_set, val) = data.split(0.6, &mut rng());
        assert_eq!(train_set.len(), 60);
        assert_eq!(val.len(), 40);
        let mut all: Vec<i64> = train_set
            .inputs
            .iter()
            .chain(val.inputs.iter())
            .map(|r| r[0] as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn split_owned_matches_split() {
        let data = Dataset::from_rows(
            (0..53).map(|i| (vec![i as f64, -(i as f64)], vec![i as f64 * 0.5])),
        );
        let (t1, v1) = data.split(0.6, &mut rng());
        let (t2, v2) = data.clone().split_owned(0.6, &mut rng());
        assert_eq!(t1.inputs, t2.inputs, "same partition, same order");
        assert_eq!(t1.targets, t2.targets);
        assert_eq!(v1.inputs, v2.inputs);
        assert_eq!(v1.targets, v2.targets);
    }

    #[test]
    fn mse_matches_per_row_forward_reference() {
        // The batched route must reproduce the historical per-row loop to
        // the bit (forward_batch rows are pinned equal to forward; the sum
        // orders are unchanged).
        let mut r = rng();
        let net = Mlp::new(&[3, 17, 2], 0.1, &mut r);
        let data = Dataset::from_rows((0..29).map(|i| {
            let x = i as f64 / 29.0;
            (vec![x, -x, x * x], vec![x, 1.0 - x])
        }));
        let mut reference = 0.0;
        for (x, y) in data.inputs.iter().zip(&data.targets) {
            let out = net.forward(x);
            reference += out
                .iter()
                .zip(y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        reference /= data.len() as f64;
        assert_eq!(mse(&net, &data).to_bits(), reference.to_bits());
    }

    #[test]
    fn normalizer_zscores() {
        let data = Dataset::from_rows(vec![
            (vec![0.0, 10.0], vec![0.0]),
            (vec![2.0, 30.0], vec![0.0]),
        ]);
        let norm = Normalizer::fit(&data);
        assert_eq!(norm.mean, vec![1.0, 20.0]);
        let z = norm.apply(&[1.0, 20.0]);
        assert!(z.iter().all(|v| v.abs() < 1e-9));
        let z2 = norm.apply(&[2.0, 30.0]);
        assert!((z2[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_epochs_reports_current_mse_and_trains_nothing() {
        let mut r = rng();
        let data = Dataset::from_rows((0..16).map(|i| (vec![i as f64 / 16.0], vec![1.0])));
        let mut net = Mlp::new(&[1, 8, 1], 0.1, &mut r);
        let params_before = net.flatten_params();
        let report = train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 0,
                ..Default::default()
            },
            &mut r,
        );
        assert_eq!(report.epochs, 0);
        assert_eq!(report.examples, 16);
        assert!(
            report.final_train_loss.is_finite(),
            "zero-epoch loss must be well-defined, got {}",
            report.final_train_loss
        );
        assert_eq!(report.final_train_loss, mse(&net, &data));
        assert_eq!(net.flatten_params(), params_before, "no step may be taken");
    }

    #[test]
    fn mse_of_empty_dataset_is_zero() {
        let net = Mlp::new(&[1, 2, 1], 0.0, &mut rng());
        assert_eq!(mse(&net, &Dataset::default()), 0.0);
    }
}
