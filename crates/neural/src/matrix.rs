//! Minimal row-major matrix type for the MLP's forward/backward passes.

use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat parameter slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat parameter slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reshapes in place, reusing the backing allocation. Contents are
    /// unspecified afterwards (the GEMM kernels overwrite every element);
    /// grows the buffer only when the new shape needs more room.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrites `self` with `other`'s shape and contents, reusing the
    /// backing allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.reshape(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self × other` into a caller-held output matrix (reshaped and
    /// overwritten; the backing allocation is reused).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.reshape(self.rows, other.cols);
        out.data.fill(0.0);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
    }

    /// `selfᵀ × other` (used for weight gradients).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into(other, &mut out);
        out
    }

    /// `selfᵀ × other` into a caller-held output matrix (reshaped and
    /// overwritten). The accumulation order is identical to [`Matrix::t_matmul`],
    /// so results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        out.reshape(self.cols, other.cols);
        out.data.fill(0.0);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (j, &b) in brow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
    }

    /// `self × otherᵀ` (used to backpropagate through weights).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// `self × otherᵀ` into a caller-held output matrix (reshaped and
    /// overwritten). Each output element is one ordered dot product, so
    /// results are bit-identical to [`Matrix::matmul_t`].
    ///
    /// This is the batched-inference kernel, and its speed over repeated
    /// per-row dots comes from instruction-level parallelism rather than
    /// reassociation: a single dot product is a serial chain of FP adds
    /// (each ~4 cycles of latency), but the dots of *different* batch rows
    /// are independent, so processing four rows of `self` against one row
    /// of `other` keeps four accumulator chains in flight and hides the
    /// add latency. Each accumulator still sums its row strictly in index
    /// order, so every output bit matches the naive loop; the blocking
    /// also loads each element of `other` once per four rows instead of
    /// once per row.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        out.reshape(self.rows, other.rows);
        for j in 0..other.rows {
            let brow = other.row(j);
            let mut i = 0;
            while i + 4 <= self.rows {
                let a0 = self.row(i);
                let a1 = self.row(i + 1);
                let a2 = self.row(i + 2);
                let a3 = self.row(i + 3);
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                for ((((&b, &x0), &x1), &x2), &x3) in brow.iter().zip(a0).zip(a1).zip(a2).zip(a3) {
                    s0 += x0 * b;
                    s1 += x1 * b;
                    s2 += x2 * b;
                    s3 += x3 * b;
                }
                out.set(i, j, s0);
                out.set(i + 1, j, s1);
                out.set(i + 2, j, s2);
                out.set(i + 3, j, s3);
                i += 4;
            }
            while i < self.rows {
                let arow = self.row(i);
                out.set(i, j, arow.iter().zip(brow).map(|(a, b)| a * b).sum());
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn matmul_basic() {
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a().matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        // aᵀ (3×2) × b (2×2) = 3×2
        let c = a().t_matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[13.0, 18.0]); // [1,4]·cols of b
    }

    #[test]
    fn matmul_t_matches_manual() {
        let b = Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let c = a().matmul_t(&b); // 2×3 × 3×2 = 2×2
        assert_eq!(c.row(0), &[4.0, 2.0]);
        assert_eq!(c.row(1), &[10.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let b = Matrix::zeros(2, 2);
        let _ = a().matmul(&b);
    }

    #[test]
    fn into_kernels_match_allocating_kernels() {
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::zeros(5, 5); // wrong shape + stale garbage
        out.as_mut_slice().fill(9e9);
        a().matmul_into(&b, &mut out);
        assert_eq!(out, a().matmul(&b));

        let c = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a().t_matmul_into(&c, &mut out);
        assert_eq!(out, a().t_matmul(&c));

        let d = Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        a().matmul_t_into(&d, &mut out);
        assert_eq!(out, a().matmul_t(&d));
    }

    #[test]
    fn reshape_reuses_and_copy_from_clones() {
        let mut m = Matrix::zeros(2, 2);
        m.reshape(3, 1);
        assert_eq!((m.rows(), m.cols()), (3, 1));
        let src = a();
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    fn row_accessors() {
        let mut m = a();
        m.set(1, 2, 42.0);
        assert_eq!(m.get(1, 2), 42.0);
        m.row_mut(0)[0] = -1.0;
        assert_eq!(m.row(0), &[-1.0, 2.0, 3.0]);
    }
}
