//! Minimal row-major matrix type for the MLP's forward/backward passes.
//!
//! All three products dispatch to the shared micro-kernel layer in
//! [`crate::gemm`]: register-blocked by default (bit-identical to the naive
//! reference loops), cache-tiled under [`crate::gemm::GemmMode::Tiled`]
//! (reorders FP accumulation). None of the kernels takes a sparsity
//! shortcut, so non-finite inputs propagate exactly as IEEE-754 dictates —
//! `0.0 × NaN` is NaN, never silently dropped.

use crate::gemm;
use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// `rows × cols` with an explicit panic on `usize` overflow: a hostile or
/// corrupted shape must fail loudly here, in release builds too, instead of
/// wrapping into a small allocation that later indexes out of bounds.
fn shape_len(rows: usize, cols: usize) -> usize {
    rows.checked_mul(cols)
        .unwrap_or_else(|| panic!("matrix shape {rows}x{cols} overflows usize"))
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; shape_len(rows, cols)],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`, or if that product overflows
    /// `usize`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), shape_len(rows, cols), "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat parameter slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat parameter slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reshapes in place, reusing the backing allocation. Contents are
    /// unspecified afterwards (the GEMM kernels overwrite every element);
    /// grows the buffer only when the new shape needs more room.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        let len = shape_len(rows, cols);
        self.rows = rows;
        self.cols = cols;
        self.data.resize(len, 0.0);
    }

    /// Overwrites `self` with `other`'s shape and contents, reusing the
    /// backing allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.reshape(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Writes this matrix's transpose into `dst` (reshaped to
    /// `cols × rows`, backing allocation reused). Values are copied
    /// bit-for-bit — this is how the training scratch seeds its persistent
    /// `Wᵀ` shadow. Cache-blocked so the strided reads and contiguous
    /// writes both stay L1-resident on the paper's 100×100 layers.
    pub fn transpose_into(&self, dst: &mut Matrix) {
        dst.reshape(self.cols, self.rows);
        let (rows, cols) = (self.rows, self.cols);
        const TB: usize = 32;
        let mut c0 = 0;
        while c0 < cols {
            let ce = (c0 + TB).min(cols);
            let mut r0 = 0;
            while r0 < rows {
                let re = (r0 + TB).min(rows);
                for c in c0..ce {
                    let drow = &mut dst.data[c * rows + r0..c * rows + re];
                    for (dv, r) in drow.iter_mut().zip(r0..re) {
                        *dv = self.data[r * cols + c];
                    }
                }
                r0 = re;
            }
            c0 = ce;
        }
    }

    /// Stages the selected rows of a row collection into `self` (reshaped
    /// to `idx.len() × cols`, backing allocation reused): row `r` of the
    /// result is `rows[idx[r]]`. This is the minibatch-gather primitive the
    /// training loop uses — one pass over the index list instead of
    /// per-row slicing at each call site.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or a selected row's length is
    /// not `cols`.
    pub fn gather_rows(&mut self, cols: usize, rows: &[Vec<f64>], idx: &[usize]) {
        self.reshape(idx.len(), cols);
        if cols == 0 {
            for &i in idx {
                assert_eq!(rows[i].len(), 0, "gathered row {i} has the wrong width");
            }
            return;
        }
        for (dst, &i) in self.data.chunks_exact_mut(cols).zip(idx) {
            let src = &rows[i];
            assert_eq!(src.len(), cols, "gathered row {i} has the wrong width");
            dst.copy_from_slice(src);
        }
    }

    /// `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self × other` into a caller-held output matrix (reshaped and
    /// overwritten; the backing allocation is reused).
    ///
    /// Every output element accumulates its contributions strictly in
    /// ascending inner-index order, with no zero-skip: results are
    /// bit-identical across [`gemm::GemmMode::Blocked`] and
    /// [`gemm::GemmMode::Naive`], and non-finite inputs propagate
    /// (`0.0 × NaN = NaN`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.reshape(self.rows, other.cols);
        gemm::nn(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// `selfᵀ × other` (used for weight gradients).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into(other, &mut out);
        out
    }

    /// `selfᵀ × other` into a caller-held output matrix (reshaped and
    /// overwritten). The accumulation order is identical to
    /// [`Matrix::t_matmul`], so results are bit-identical; like every
    /// kernel in [`gemm`], no zero-skip is taken, so NaN and ±∞ gradients
    /// propagate instead of being laundered into finite values.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        out.reshape(self.cols, other.cols);
        gemm::tn(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// `self × otherᵀ` (used to backpropagate through weights).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// `self × otherᵀ` into a caller-held output matrix (reshaped and
    /// overwritten). Each output element is one strictly index-ordered dot
    /// product, so results are bit-identical to [`Matrix::matmul_t`] in
    /// every non-reordering [`gemm::GemmMode`].
    ///
    /// This is the training-forward / batched-inference kernel: the default
    /// register-blocked implementation keeps a 4×4 tile of independent
    /// accumulator chains in flight (instruction-level parallelism hides
    /// the FP-add latency) without reassociating any single chain — see
    /// [`gemm::nt_blocked`].
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        out.reshape(self.rows, other.rows);
        gemm::nt(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            other.rows,
            self.cols,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn matmul_basic() {
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a().matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        // aᵀ (3×2) × b (2×2) = 3×2
        let c = a().t_matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[13.0, 18.0]); // [1,4]·cols of b
    }

    #[test]
    fn matmul_t_matches_manual() {
        let b = Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let c = a().matmul_t(&b); // 2×3 × 3×2 = 2×2
        assert_eq!(c.row(0), &[4.0, 2.0]);
        assert_eq!(c.row(1), &[10.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let b = Matrix::zeros(2, 2);
        let _ = a().matmul(&b);
    }

    #[test]
    fn into_kernels_match_allocating_kernels() {
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::zeros(5, 5); // wrong shape + stale garbage
        out.as_mut_slice().fill(9e9);
        a().matmul_into(&b, &mut out);
        assert_eq!(out, a().matmul(&b));

        let c = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a().t_matmul_into(&c, &mut out);
        assert_eq!(out, a().t_matmul(&c));

        let d = Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        a().matmul_t_into(&d, &mut out);
        assert_eq!(out, a().matmul_t(&d));
    }

    /// Regression for the non-IEEE sparsity shortcut: the old kernels
    /// skipped `a == 0.0` rows, so `0.0 × NaN` and `0.0 × ∞` contributions
    /// vanished instead of producing NaN. A NaN entering the backward pass
    /// must reach the output.
    #[test]
    fn zero_times_nonfinite_propagates_nan() {
        // matmul (nn): [0, 1] × [[NaN], [5]] — the 0·NaN term poisons the dot.
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 1, vec![f64::NAN, 5.0]);
        assert!(a.matmul(&b).get(0, 0).is_nan(), "matmul laundered 0*NaN");

        let binf = Matrix::from_vec(2, 1, vec![f64::INFINITY, 5.0]);
        assert!(a.matmul(&binf).get(0, 0).is_nan(), "matmul laundered 0*inf");

        // t_matmul (tn): zero row in the left operand against a NaN row.
        let d = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
        let x = Matrix::from_vec(2, 2, vec![f64::NAN, f64::INFINITY, 2.0, 3.0]);
        let g = d.t_matmul(&x);
        assert!(g.get(0, 0).is_nan(), "t_matmul laundered 0*NaN");
        assert!(g.get(0, 1).is_nan(), "t_matmul laundered 0*inf");

        // matmul_t (nt) was already a plain ordered dot; keep it pinned.
        let e = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let w = Matrix::from_vec(1, 2, vec![f64::NAN, 1.0]);
        assert!(e.matmul_t(&w).get(0, 0).is_nan(), "matmul_t laundered NaN");
    }

    /// Signed zeros follow IEEE-754 addition exactly: a `+0.0` accumulator
    /// plus a `-0.0` contribution is `+0.0`, and a negative-product zero row
    /// yields the same bits as the scalar expression would.
    #[test]
    fn signed_zero_contributions_follow_ieee() {
        let a = Matrix::from_vec(1, 1, vec![-0.0]);
        let b = Matrix::from_vec(1, 1, vec![5.0]);
        // 0.0 (start) + (-0.0 × 5.0) = +0.0 under round-to-nearest.
        let got = a.matmul(&b).get(0, 0);
        assert_eq!(got.to_bits(), (0.0f64 + (-0.0f64 * 5.0)).to_bits());

        let c = Matrix::from_vec(1, 2, vec![0.0, -0.0]);
        let d = Matrix::from_vec(1, 2, vec![-3.0, 4.0]);
        let got = c.matmul_t(&d).get(0, 0);
        let want = 0.0f64 + 0.0 * -3.0 + -0.0 * 4.0;
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn zeros_overflowing_shape_panics() {
        let _ = Matrix::zeros(usize::MAX, 2);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn from_vec_overflowing_shape_panics() {
        // Without the checked multiply this wraps to a tiny length in release
        // builds and "succeeds" with a catastrophically wrong shape.
        let _ = Matrix::from_vec(usize::MAX / 2 + 1, 4, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn reshape_overflowing_shape_panics() {
        let mut m = Matrix::zeros(1, 1);
        m.reshape(usize::MAX, usize::MAX);
    }

    #[test]
    fn zero_dimension_shapes_are_fine() {
        let m = Matrix::zeros(0, 5);
        assert_eq!((m.rows(), m.cols()), (0, 5));
        let n = Matrix::from_vec(3, 0, Vec::new());
        assert_eq!(n.as_slice().len(), 0);
        let p = m.matmul(&Matrix::zeros(5, 0));
        assert_eq!((p.rows(), p.cols()), (0, 0));
    }

    #[test]
    fn reshape_reuses_and_copy_from_clones() {
        let mut m = Matrix::zeros(2, 2);
        m.reshape(3, 1);
        assert_eq!((m.rows(), m.cols()), (3, 1));
        let src = a();
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    fn gather_rows_stages_selected_rows() {
        let rows = vec![
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ];
        let mut m = Matrix::from_vec(1, 1, vec![9e9]); // stale shape + garbage
        m.gather_rows(2, &rows, &[3, 1, 1]);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.row(0), &[7.0, 8.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.row(2), &[3.0, 4.0]);

        m.gather_rows(2, &rows, &[]);
        assert_eq!((m.rows(), m.cols()), (0, 2));
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn gather_rows_rejects_ragged_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        let mut m = Matrix::zeros(0, 0);
        m.gather_rows(2, &rows, &[0, 1]);
    }

    #[test]
    #[should_panic]
    fn gather_rows_rejects_out_of_bounds_index() {
        let rows = vec![vec![1.0, 2.0]];
        let mut m = Matrix::zeros(0, 0);
        m.gather_rows(2, &rows, &[1]);
    }

    #[test]
    fn row_accessors() {
        let mut m = a();
        m.set(1, 2, 42.0);
        assert_eq!(m.get(1, 2), 42.0);
        m.row_mut(0)[0] = -1.0;
        assert_eq!(m.row(0), &[-1.0, 2.0, 3.0]);
    }
}
