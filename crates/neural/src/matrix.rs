//! Minimal row-major matrix type for the MLP's forward/backward passes.

use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat parameter slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat parameter slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other` (used for weight gradients).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (j, &b) in brow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` (used to backpropagate through weights).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                out.set(i, j, arow.iter().zip(brow).map(|(a, b)| a * b).sum());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn matmul_basic() {
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a().matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        // aᵀ (3×2) × b (2×2) = 3×2
        let c = a().t_matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[13.0, 18.0]); // [1,4]·cols of b
    }

    #[test]
    fn matmul_t_matches_manual() {
        let b = Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let c = a().matmul_t(&b); // 2×3 × 3×2 = 2×2
        assert_eq!(c.row(0), &[4.0, 2.0]);
        assert_eq!(c.row(1), &[10.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let b = Matrix::zeros(2, 2);
        let _ = a().matmul(&b);
    }

    #[test]
    fn row_accessors() {
        let mut m = a();
        m.set(1, 2, 42.0);
        assert_eq!(m.get(1, 2), 42.0);
        m.row_mut(0)[0] = -1.0;
        assert_eq!(m.row(0), &[-1.0, 2.0, 3.0]);
    }
}
