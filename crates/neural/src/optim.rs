//! Adam optimizer (the paper trains the safety hijacker with Adam, §IV-B).
//!
//! Moment state is stored **interleaved**: one `mv` vector of `[m_i, v_i]`
//! pairs instead of separate `m` and `v` vectors. The Adam update reads
//! and writes both moments of a parameter together, so the interleaved
//! layout streams one cache line per parameter pair where the split layout
//! touched three independent streams (`m`, `v`, and the params) — the
//! update is memory-bound (ROADMAP: ~25 % of a training epoch), and
//! halving the moment traffic is the point. The per-element op *order* is
//! unchanged, so results stay bit-identical to the split layout (pinned by
//! a proptest over hostile gradients in `tests/props.rs`).
//!
//! Persistence keeps the historical split `m`/`v` shape via [`AdamRepr`]:
//! any consumer that externalizes optimizer state converts through the
//! repr (`From` in both directions), so the interleaved in-memory layout
//! never leaks into a stored artifact.

use serde::{Deserialize, Serialize};

/// Adam optimizer state over a flat parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    t: u64,
    /// Interleaved moment pairs: `mv[2i]` is `m_i`, `mv[2i + 1]` is `v_i`.
    mv: Vec<f64>,
}

/// The externalized shape of [`Adam`]: the historical split `m`/`v`
/// vectors. Consumers persisting optimizer state go through this repr
/// (via the `From` conversions), keeping the interleaved in-memory layout
/// invisible to every stored artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamRepr {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// Steps taken.
    pub t: u64,
    /// First moments, one per parameter.
    pub m: Vec<f64>,
    /// Second moments, one per parameter.
    pub v: Vec<f64>,
}

impl From<AdamRepr> for Adam {
    fn from(r: AdamRepr) -> Self {
        assert_eq!(r.m.len(), r.v.len(), "corrupt Adam state: m/v length skew");
        let mut mv = Vec::with_capacity(r.m.len() * 2);
        for (&m, &v) in r.m.iter().zip(&r.v) {
            mv.push(m);
            mv.push(v);
        }
        Adam {
            lr: r.lr,
            beta1: r.beta1,
            beta2: r.beta2,
            eps: r.eps,
            t: r.t,
            mv,
        }
    }
}

impl From<Adam> for AdamRepr {
    fn from(a: Adam) -> Self {
        let m = a.mv.chunks_exact(2).map(|p| p[0]).collect();
        let v = a.mv.chunks_exact(2).map(|p| p[1]).collect();
        AdamRepr {
            lr: a.lr,
            beta1: a.beta1,
            beta2: a.beta2,
            eps: a.eps,
            t: a.t,
            m,
            v,
        }
    }
}

impl Adam {
    /// Creates an Adam optimizer for `param_count` parameters.
    pub fn new(param_count: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            mv: vec![0.0; param_count * 2],
        }
    }

    /// Begins an optimization step (advances the bias-correction clock) and
    /// returns a stepper to be called once per parameter, **in a fixed
    /// order** across steps.
    pub fn step(&mut self) -> AdamStep<'_> {
        self.t += 1;
        // Bias corrections depend only on the step clock: compute them once
        // per step, not once per update call (bit-identical — the divisions
        // below still happen per parameter).
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        AdamStep {
            adam: self,
            idx: 0,
            bc1,
            bc2,
        }
    }

    /// Number of optimization steps taken.
    pub fn steps_taken(&self) -> u64 {
        self.t
    }

    fn param_count(&self) -> usize {
        self.mv.len() / 2
    }
}

/// Per-step cursor over the parameter vector.
#[derive(Debug)]
pub struct AdamStep<'a> {
    adam: &'a mut Adam,
    idx: usize,
    bc1: f64,
    bc2: f64,
}

impl AdamStep<'_> {
    /// Updates one parameter with its gradient. Must be called exactly once
    /// per parameter per step, in the same order every step.
    ///
    /// # Panics
    ///
    /// Panics if called more times than there are parameters.
    pub fn update(&mut self, param: &mut f64, grad: f64) {
        let a = &mut *self.adam;
        let i = self.idx;
        assert!(
            i < a.param_count(),
            "more parameters than the optimizer was sized for"
        );
        let pair = &mut a.mv[2 * i..2 * i + 2];
        pair[0] = a.beta1 * pair[0] + (1.0 - a.beta1) * grad;
        pair[1] = a.beta2 * pair[1] + (1.0 - a.beta2) * grad * grad;
        let m_hat = pair[0] / self.bc1;
        let v_hat = pair[1] / self.bc2;
        *param -= a.lr * m_hat / (v_hat.sqrt() + a.eps);
        self.idx += 1;
    }

    /// Updates a contiguous run of parameters with their gradients. Exactly
    /// equivalent to calling [`AdamStep::update`] once per element in order
    /// (bit-identical math), but a single pass over the interleaved moment
    /// pairs: each parameter's `[m, v]` pair is read, updated, and written
    /// through one streaming cursor instead of three.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length or the run passes the
    /// end of the parameter vector.
    pub fn update_slice(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let a = &mut *self.adam;
        let start = self.idx;
        assert!(
            start + params.len() <= a.param_count(),
            "more parameters than the optimizer was sized for"
        );
        let (bc1, bc2) = (self.bc1, self.bc2);
        let mv = &mut a.mv[2 * start..2 * (start + params.len())];
        for ((param, &grad), pair) in params.iter_mut().zip(grads).zip(mv.chunks_exact_mut(2)) {
            let m = a.beta1 * pair[0] + (1.0 - a.beta1) * grad;
            let v = a.beta2 * pair[1] + (1.0 - a.beta2) * grad * grad;
            pair[0] = m;
            pair[1] = v;
            let m_hat = m / bc1;
            let v_hat = v / bc2;
            *param -= a.lr * m_hat / (v_hat.sqrt() + a.eps);
        }
        self.idx += params.len();
    }

    /// Borrows the moment window for parameters `offset..offset + len` in
    /// the flat parameter order, independent of the sequential cursor. The
    /// fused training step hands each backward GEMM a lane over its layer's
    /// weights so the optimizer update runs *inside* the gradient kernel's
    /// store path (tile order, not cursor order) — every parameter keeps
    /// its fixed moment slot and its exact update expression, and
    /// parameters are independent, so the final state is bit-identical to
    /// cursor-order stepping.
    ///
    /// The caller is responsible for covering each parameter exactly once
    /// per step across lanes and cursor calls combined.
    ///
    /// # Panics
    ///
    /// Panics if the window passes the end of the parameter vector.
    pub fn lane(&mut self, offset: usize, len: usize) -> AdamLane<'_> {
        let a = &mut *self.adam;
        assert!(
            offset + len <= a.param_count(),
            "more parameters than the optimizer was sized for"
        );
        AdamLane {
            mv: &mut a.mv[2 * offset..2 * (offset + len)],
            lr: a.lr,
            beta1: a.beta1,
            beta2: a.beta2,
            eps: a.eps,
            bc1: self.bc1,
            bc2: self.bc2,
        }
    }

    /// Updates a contiguous run of parameters at an absolute offset in the
    /// flat parameter order, leaving the sequential cursor untouched.
    /// Bit-identical to covering the same window with cursor-order
    /// [`AdamStep::update_slice`] calls (same per-element expression, same
    /// moment slots).
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length or the window passes
    /// the end of the parameter vector.
    pub fn update_slice_at(&mut self, offset: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let mut lane = self.lane(offset, params.len());
        lane.update_run(0, params, grads);
    }
}

/// A borrowed window of one step's Adam state for out-of-order updates —
/// see [`AdamStep::lane`]. Holds the interleaved `[m, v]` pairs of its
/// window plus the step's hyperparameters and bias corrections.
#[derive(Debug)]
pub struct AdamLane<'a> {
    mv: &'a mut [f64],
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    bc1: f64,
    bc2: f64,
}

impl AdamLane<'_> {
    /// Updates the parameter at index `i` *within this lane's window*
    /// (global flat index `offset + i`). Must be called exactly once per
    /// parameter per step; calls may arrive in any order across the window.
    /// The update is the exact expression [`AdamStep::update_slice`]
    /// computes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the window.
    #[inline(always)]
    pub fn update(&mut self, i: usize, param: &mut f64, grad: f64) {
        let pair = &mut self.mv[2 * i..2 * i + 2];
        let m = self.beta1 * pair[0] + (1.0 - self.beta1) * grad;
        let v = self.beta2 * pair[1] + (1.0 - self.beta2) * grad * grad;
        pair[0] = m;
        pair[1] = v;
        let m_hat = m / self.bc1;
        let v_hat = v / self.bc2;
        *param -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
    }

    /// Updates the contiguous run of parameters starting at lane index
    /// `start` with `grads`. Per-element identical to calling
    /// [`AdamLane::update`] for `start..start + params.len()` in order, but
    /// a single streaming pass over the `[m, v]` pairs that the compiler
    /// can vectorize — the fused backward's epilogue calls this once per
    /// tile row so the divide/sqrt chain runs packed, not one scalar
    /// divide per element.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length or the run passes
    /// the end of the window.
    #[inline(always)]
    pub fn update_run(&mut self, start: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let mv = &mut self.mv[2 * start..2 * (start + params.len())];
        for ((param, &grad), pair) in params.iter_mut().zip(grads).zip(mv.chunks_exact_mut(2)) {
            let m = self.beta1 * pair[0] + (1.0 - self.beta1) * grad;
            let v = self.beta2 * pair[1] + (1.0 - self.beta2) * grad * grad;
            pair[0] = m;
            pair[1] = v;
            let m_hat = m / self.bc1;
            let v_hat = v / self.bc2;
            *param -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x - 3)², gradient 2(x - 3).
        let mut adam = Adam::new(1, 0.1);
        let mut x = 0.0;
        for _ in 0..500 {
            let g = 2.0 * (x - 3.0);
            adam.step().update(&mut x, g);
        }
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn handles_multiple_parameters_independently() {
        let mut adam = Adam::new(2, 0.05);
        let mut p = [0.0, 10.0];
        for _ in 0..2000 {
            let g0 = 2.0 * (p[0] + 1.0);
            let g1 = 2.0 * (p[1] - 5.0);
            let mut step = adam.step();
            step.update(&mut p[0], g0);
            step.update(&mut p[1], g1);
        }
        assert!((p[0] + 1.0).abs() < 1e-2);
        assert!((p[1] - 5.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "more parameters")]
    fn too_many_updates_panics() {
        let mut adam = Adam::new(1, 0.1);
        let mut x = 0.0;
        let mut step = adam.step();
        step.update(&mut x, 1.0);
        step.update(&mut x, 1.0);
    }

    #[test]
    fn update_slice_matches_per_element_updates() {
        let mut a1 = Adam::new(4, 0.1);
        let mut a2 = Adam::new(4, 0.1);
        let mut p1 = [1.0, -2.0, 0.5, 3.0];
        let mut p2 = p1;
        let g = [0.3, -0.7, 1.1, 0.0];
        for _ in 0..10 {
            let mut s1 = a1.step();
            for (p, &gi) in p1.iter_mut().zip(&g) {
                s1.update(p, gi);
            }
            let mut s2 = a2.step();
            s2.update_slice(&mut p2[..2], &g[..2]);
            s2.update_slice(&mut p2[2..], &g[2..]);
        }
        assert_eq!(p1, p2, "slice stepping must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "more parameters")]
    fn update_slice_past_end_panics() {
        let mut adam = Adam::new(1, 0.1);
        let mut p = [0.0, 0.0];
        adam.step().update_slice(&mut p, &[1.0, 1.0]);
    }

    #[test]
    fn step_count_advances() {
        let mut adam = Adam::new(1, 0.1);
        assert_eq!(adam.steps_taken(), 0);
        let mut x = 0.0;
        adam.step().update(&mut x, 1.0);
        assert_eq!(adam.steps_taken(), 1);
    }

    #[test]
    fn wire_repr_keeps_split_m_v_format() {
        // Serde routes through `AdamRepr` (`#[serde(from/into)]`), so the
        // wire shape is whatever the repr holds: the historical separate
        // `m`/`v` vectors. Pin the repr round trip de-/re-interleaving every
        // state bit.
        let mut adam = Adam::new(3, 0.1);
        let mut p = [1.0, -2.0, 0.5];
        for step in 0..5 {
            let g = [0.3 + step as f64, -0.7, 1.1];
            let mut s = adam.step();
            s.update_slice(&mut p, &g);
        }
        let repr = AdamRepr::from(adam.clone());
        assert_eq!(repr.m.len(), 3, "repr must expose a split m vector");
        assert_eq!(repr.v.len(), 3, "repr must expose a split v vector");
        for (i, (&m, &v)) in repr.m.iter().zip(&repr.v).enumerate() {
            assert_eq!(m.to_bits(), adam.mv[2 * i].to_bits());
            assert_eq!(v.to_bits(), adam.mv[2 * i + 1].to_bits());
        }
        let back = Adam::from(repr);
        assert_eq!(adam, back, "round trip must preserve every state bit");
    }

    #[test]
    #[should_panic(expected = "m/v length skew")]
    fn corrupt_wire_state_is_rejected() {
        let mut repr = AdamRepr::from(Adam::new(2, 0.1));
        repr.v.pop();
        let _ = Adam::from(repr);
    }
}
