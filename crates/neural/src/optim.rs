//! Adam optimizer (the paper trains the safety hijacker with Adam, §IV-B).

use serde::{Deserialize, Serialize};

/// Adam optimizer state over a flat parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an Adam optimizer for `param_count` parameters.
    pub fn new(param_count: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; param_count],
            v: vec![0.0; param_count],
        }
    }

    /// Begins an optimization step (advances the bias-correction clock) and
    /// returns a stepper to be called once per parameter, **in a fixed
    /// order** across steps.
    pub fn step(&mut self) -> AdamStep<'_> {
        self.t += 1;
        // Bias corrections depend only on the step clock: compute them once
        // per step, not once per update call (bit-identical — the divisions
        // below still happen per parameter).
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        AdamStep {
            adam: self,
            idx: 0,
            bc1,
            bc2,
        }
    }

    /// Number of optimization steps taken.
    pub fn steps_taken(&self) -> u64 {
        self.t
    }
}

/// Per-step cursor over the parameter vector.
#[derive(Debug)]
pub struct AdamStep<'a> {
    adam: &'a mut Adam,
    idx: usize,
    bc1: f64,
    bc2: f64,
}

impl AdamStep<'_> {
    /// Updates one parameter with its gradient. Must be called exactly once
    /// per parameter per step, in the same order every step.
    ///
    /// # Panics
    ///
    /// Panics if called more times than there are parameters.
    pub fn update(&mut self, param: &mut f64, grad: f64) {
        let a = &mut *self.adam;
        let i = self.idx;
        assert!(
            i < a.m.len(),
            "more parameters than the optimizer was sized for"
        );
        a.m[i] = a.beta1 * a.m[i] + (1.0 - a.beta1) * grad;
        a.v[i] = a.beta2 * a.v[i] + (1.0 - a.beta2) * grad * grad;
        let m_hat = a.m[i] / self.bc1;
        let v_hat = a.v[i] / self.bc2;
        *param -= a.lr * m_hat / (v_hat.sqrt() + a.eps);
        self.idx += 1;
    }

    /// Updates a contiguous run of parameters with their gradients. Exactly
    /// equivalent to calling [`AdamStep::update`] once per element in order
    /// (bit-identical math), but amortizes the cursor bookkeeping and lets
    /// the per-element loop work on plain slices.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length or the run passes the
    /// end of the parameter vector.
    pub fn update_slice(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let a = &mut *self.adam;
        let start = self.idx;
        assert!(
            start + params.len() <= a.m.len(),
            "more parameters than the optimizer was sized for"
        );
        let (bc1, bc2) = (self.bc1, self.bc2);
        let m = &mut a.m[start..start + params.len()];
        let v = &mut a.v[start..start + params.len()];
        for (((param, &grad), mi), vi) in params.iter_mut().zip(grads).zip(m).zip(v) {
            *mi = a.beta1 * *mi + (1.0 - a.beta1) * grad;
            *vi = a.beta2 * *vi + (1.0 - a.beta2) * grad * grad;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *param -= a.lr * m_hat / (v_hat.sqrt() + a.eps);
        }
        self.idx += params.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x - 3)², gradient 2(x - 3).
        let mut adam = Adam::new(1, 0.1);
        let mut x = 0.0;
        for _ in 0..500 {
            let g = 2.0 * (x - 3.0);
            adam.step().update(&mut x, g);
        }
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn handles_multiple_parameters_independently() {
        let mut adam = Adam::new(2, 0.05);
        let mut p = [0.0, 10.0];
        for _ in 0..2000 {
            let g0 = 2.0 * (p[0] + 1.0);
            let g1 = 2.0 * (p[1] - 5.0);
            let mut step = adam.step();
            step.update(&mut p[0], g0);
            step.update(&mut p[1], g1);
        }
        assert!((p[0] + 1.0).abs() < 1e-2);
        assert!((p[1] - 5.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "more parameters")]
    fn too_many_updates_panics() {
        let mut adam = Adam::new(1, 0.1);
        let mut x = 0.0;
        let mut step = adam.step();
        step.update(&mut x, 1.0);
        step.update(&mut x, 1.0);
    }

    #[test]
    fn update_slice_matches_per_element_updates() {
        let mut a1 = Adam::new(4, 0.1);
        let mut a2 = Adam::new(4, 0.1);
        let mut p1 = [1.0, -2.0, 0.5, 3.0];
        let mut p2 = p1;
        let g = [0.3, -0.7, 1.1, 0.0];
        for _ in 0..10 {
            let mut s1 = a1.step();
            for (p, &gi) in p1.iter_mut().zip(&g) {
                s1.update(p, gi);
            }
            let mut s2 = a2.step();
            s2.update_slice(&mut p2[..2], &g[..2]);
            s2.update_slice(&mut p2[2..], &g[2..]);
        }
        assert_eq!(p1, p2, "slice stepping must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "more parameters")]
    fn update_slice_past_end_panics() {
        let mut adam = Adam::new(1, 0.1);
        let mut p = [0.0, 0.0];
        adam.step().update_slice(&mut p, &[1.0, 1.0]);
    }

    #[test]
    fn step_count_advances() {
        let mut adam = Adam::new(1, 0.1);
        assert_eq!(adam.steps_taken(), 0);
        let mut x = 0.0;
        adam.step().update(&mut x, 1.0);
        assert_eq!(adam.steps_taken(), 1);
    }
}
