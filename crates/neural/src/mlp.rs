//! The feed-forward network: dense layers + ReLU + dropout.

use crate::gemm::{self, layer_forward_t, BiasDiffEpilogue, Epilogue, LayerEpilogue};
use crate::matrix::Matrix;
use crate::optim::{AdamLane, AdamStep};
use av_simkit::rng as simrng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One dense layer: `y = x·Wᵀ + b`, optionally followed by ReLU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Dense {
    /// Weights, shape (out, in).
    w: Matrix,
    /// Biases, length `out`.
    b: Vec<f64>,
    /// Apply ReLU after the affine map (all layers except the last).
    relu: bool,
}

/// Cached activations from a training forward pass.
///
/// Reusable: [`Mlp::forward_train_into`] reshapes the cached matrices in
/// place, so a cache held across minibatches performs no per-batch
/// allocation once warm.
#[derive(Debug, Default)]
pub struct ForwardCache {
    /// Input and post-activation output of each layer (len = layers + 1).
    activations: Vec<Matrix>,
    /// Dropout keep-masks (already scaled) per hidden layer.
    masks: Vec<Option<Matrix>>,
}

impl ForwardCache {
    /// Creates an empty cache; buffers are sized lazily on first use.
    pub fn new() -> Self {
        ForwardCache::default()
    }

    /// The output batch of the most recent training forward pass.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run through this cache.
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("no forward pass cached")
    }
}

/// Owned scratch for a training loop: forward cache, backprop deltas, and
/// per-layer gradients, all reused across minibatches so steady-state
/// training performs no heap allocation.
#[derive(Debug, Default)]
pub struct TrainScratch {
    cache: ForwardCache,
    delta: Matrix,
    delta_prev: Matrix,
    grads: Vec<(Matrix, Vec<f64>)>,
    /// Persistent transposed-weight shadow: `wt[l]` is `Wₗᵀ` (in × out),
    /// built on the first [`Mlp::backward_adam_into`] call and kept
    /// current by its optimizer epilogue (which writes each updated weight
    /// to both buffers). While non-empty, the fused forward reads it
    /// directly instead of re-transposing every weight matrix on every
    /// minibatch. Empty until the fused step runs, so scratches used with
    /// the split backward/optimizer path never consult a stale shadow.
    wt: Vec<Matrix>,
}

impl TrainScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        TrainScratch {
            cache: ForwardCache::new(),
            delta: Matrix::zeros(0, 0),
            delta_prev: Matrix::zeros(0, 0),
            grads: Vec::new(),
            wt: Vec::new(),
        }
    }

    /// The output batch of the most recent [`Mlp::forward_train_into`].
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run through this scratch.
    pub fn output(&self) -> &Matrix {
        self.cache.output()
    }

    /// Per-layer gradients from the most recent [`Mlp::backward_into`] or
    /// [`Mlp::backward_adam_into`], aligned with [`Mlp::apply_grads`].
    pub fn grads(&self) -> &[(Matrix, Vec<f64>)] {
        &self.grads
    }
}

/// A multi-layer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Dropout rate applied after each hidden activation during training.
    pub dropout: f64,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (input, hidden..., output),
    /// He-initialized. `dropout` is applied after each hidden ReLU during
    /// training (inverted dropout — inference needs no rescaling).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], dropout: f64, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[i], sizes[i + 1]);
            let std = (2.0 / fan_in as f64).sqrt();
            let mut w = Matrix::zeros(fan_out, fan_in);
            for v in w.as_mut_slice() {
                *v = simrng::normal(rng, 0.0, std);
            }
            layers.push(Dense {
                w,
                b: vec![0.0; fan_out],
                relu: i + 2 < sizes.len(),
            });
        }
        Mlp { layers, dropout }
    }

    /// The architecture the paper specifies: 3 hidden layers of 100/100/50
    /// ReLU units with dropout 0.1 (§IV-B).
    pub fn paper_architecture<R: Rng + ?Sized>(inputs: usize, rng: &mut R) -> Self {
        Mlp::new(&[inputs, 100, 100, 50, 1], 0.1, rng)
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("nonempty").b.len()
    }

    /// Inference forward pass (dropout disabled).
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.input_dim());
        let mut x = input.to_vec();
        for layer in &self.layers {
            let mut y = layer.b.clone();
            for (o, yo) in y.iter_mut().enumerate() {
                *yo += layer
                    .w
                    .row(o)
                    .iter()
                    .zip(&x)
                    .map(|(w, xi)| w * xi)
                    .sum::<f64>();
                if layer.relu && *yo < 0.0 {
                    *yo = 0.0;
                }
            }
            x = y;
        }
        x
    }

    /// Batched inference forward pass (dropout disabled); row `r` of the
    /// result is bit-identical to `forward(batch.row(r))`.
    ///
    /// Allocating convenience wrapper around [`Mlp::forward_batch_into`].
    pub fn forward_batch(&self, batch: &Matrix) -> Matrix {
        let mut scratch = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        self.forward_batch_into(batch, &mut scratch, &mut out);
        out
    }

    /// Batched inference forward pass (dropout disabled) into reusable
    /// scratch buffers; the result ends up in `out`.
    ///
    /// Bit-identity with the per-example path: the kernel accumulates each
    /// output element as the same ordered dot product that [`Mlp::forward`]
    /// uses, and adding the bias after the dot (`Σ + b` instead of `b + Σ`)
    /// is exact because IEEE-754 addition is commutative. The lane kernel
    /// ([`crate::gemm::layer_forward_t`]) is deliberately independent of the
    /// process-wide [`crate::gemm::GemmMode`], so batched inference stays
    /// bit-identical to [`Mlp::forward`] even when training runs tiled.
    ///
    /// The speed over per-example forwards comes from keeping activations
    /// *transposed* (feature-major, one column per batch row): the same
    /// feature of 8 adjacent batch rows is contiguous, so the layer kernel
    /// runs 8 independent k-ordered sums in SIMD lanes — per-row bits
    /// unchanged, since no sum is reassociated, only interleaved with the
    /// other rows' sums.
    pub fn forward_batch_into(&self, batch: &Matrix, scratch: &mut Matrix, out: &mut Matrix) {
        debug_assert_eq!(batch.cols(), self.input_dim());
        let n = batch.rows();
        // Transpose the batch into `scratch`: (N × K) → (K × N).
        scratch.reshape(batch.cols(), n);
        for r in 0..n {
            for (k, &v) in batch.row(r).iter().enumerate() {
                scratch.row_mut(k)[r] = v;
            }
        }
        // `scratch` holds the transposed input of each layer, `out` receives
        // its transposed output; the final swap leaves the last layer's
        // output transposed in `scratch`.
        for layer in &self.layers {
            layer_forward_t(&layer.w, &layer.b, layer.relu, scratch, out);
            std::mem::swap(scratch, out);
        }
        // Un-transpose the result into `out`: (J × N) → (N × J).
        let j_out = scratch.rows();
        out.reshape(n, j_out);
        for j in 0..j_out {
            for (i, &v) in scratch.row(j).iter().enumerate() {
                out.row_mut(i)[j] = v;
            }
        }
    }

    /// Batched training forward pass with inverted dropout; returns the
    /// output batch plus the cache for [`Mlp::backward`].
    ///
    /// Allocating convenience wrapper around [`Mlp::forward_train_into`].
    pub fn forward_train<R: Rng + ?Sized>(
        &self,
        batch: &Matrix,
        rng: &mut R,
    ) -> (Matrix, ForwardCache) {
        let mut cache = ForwardCache::new();
        self.forward_train_cache(batch, rng, &mut cache, None, None);
        (cache.output().clone(), cache)
    }

    /// Batched training forward pass into reusable scratch buffers. The
    /// output batch is available as [`TrainScratch::output`]. Numerically
    /// bit-identical to [`Mlp::forward_train`] (same accumulation order and
    /// the same per-element dropout RNG draws).
    pub fn forward_train_into<R: Rng + ?Sized>(
        &self,
        batch: &Matrix,
        rng: &mut R,
        scratch: &mut TrainScratch,
    ) {
        self.forward_train_cache(batch, rng, &mut scratch.cache, None, None);
    }

    /// Batched training forward pass with the output layer's MSE diff fused
    /// into its GEMM epilogue: the last cached activation holds
    /// `diff = (x·Wᵀ + b) − targets` instead of the raw output, so the
    /// training loop reads loss and delta from one buffer without a
    /// separate output-sized subtraction pass.
    ///
    /// Bit-identical to running [`Mlp::forward_train_into`] followed by a
    /// per-element `out − target`: the epilogue computes the same two
    /// rounded ops (`Σ + b`, then `− y`) in the same order. The backward
    /// pass is unaffected — it never reads the output layer's activation
    /// (no ReLU there), only the delta derived from `diff`.
    pub fn forward_train_diff_into<R: Rng + ?Sized>(
        &self,
        batch: &Matrix,
        targets: &Matrix,
        rng: &mut R,
        scratch: &mut TrainScratch,
    ) {
        debug_assert_eq!(targets.rows(), batch.rows());
        debug_assert_eq!(targets.cols(), self.output_dim());
        let TrainScratch { cache, wt, .. } = scratch;
        // Use the persistent Wᵀ shadow only once the fused optimizer step
        // has built (and is maintaining) it.
        let wt = if wt.len() == self.layers.len() {
            Some(&wt[..])
        } else {
            None
        };
        self.forward_train_cache(batch, rng, cache, Some(targets), wt);
    }

    /// The shared fused forward: every layer runs one [`gemm::nt_fused`]
    /// call whose epilogue applies bias + ReLU + dropout mask as each
    /// output element's strict-order accumulator chain completes — no
    /// separate full-matrix passes. With `diff_targets`, the output layer's
    /// epilogue additionally subtracts the target batch.
    ///
    /// Dropout masks are drawn row-major *before* the layer's GEMM; the
    /// draws are data-independent (one `rng.random()` per element,
    /// unconditionally), so the RNG stream is identical to the historical
    /// draw-after-GEMM pass and cached masks match bit-for-bit.
    /// `wt`, when present, holds every layer's transposed weights
    /// (`wt[l]` = `Wₗᵀ`, bit-equal) and the blocked kernel streams it
    /// directly — skipping the per-layer transpose. See
    /// [`TrainScratch::wt`].
    fn forward_train_cache<R: Rng + ?Sized>(
        &self,
        batch: &Matrix,
        rng: &mut R,
        cache: &mut ForwardCache,
        diff_targets: Option<&Matrix>,
        wt: Option<&[Matrix]>,
    ) {
        let n_layers = self.layers.len();
        let ForwardCache { activations, masks } = cache;
        activations.resize_with(n_layers + 1, || Matrix::zeros(0, 0));
        masks.resize_with(n_layers, || None);
        activations[0].copy_from(batch);
        let rows = batch.rows();
        for (li, layer) in self.layers.iter().enumerate() {
            let out_dim = layer.b.len();
            let mask: Option<&[f64]> = if layer.relu && self.dropout > 0.0 {
                let keep = 1.0 - self.dropout;
                let mask = masks[li].get_or_insert_with(|| Matrix::zeros(0, 0));
                mask.reshape(rows, out_dim);
                for m in mask.as_mut_slice() {
                    *m = if rng.random::<f64>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    };
                }
                Some(mask.as_slice())
            } else {
                masks[li] = None;
                None
            };
            let (done, rest) = activations.split_at_mut(li + 1);
            let x = &done[li];
            let y = &mut rest[0];
            y.reshape(rows, out_dim);
            let k = layer.w.cols();
            debug_assert_eq!(x.cols(), k);
            let wt_l = wt.map(|wt| {
                debug_assert_eq!(wt[li].rows(), k);
                debug_assert_eq!(wt[li].cols(), out_dim);
                wt[li].as_slice()
            });
            if let Some(targets) = diff_targets.filter(|_| li + 1 == n_layers) {
                let mut epi = BiasDiffEpilogue::new(&layer.b, targets.as_slice(), out_dim);
                gemm::nt_fused_bt(
                    x.as_slice(),
                    layer.w.as_slice(),
                    wt_l,
                    y.as_mut_slice(),
                    rows,
                    out_dim,
                    k,
                    &mut epi,
                );
            } else {
                let mut epi = LayerEpilogue::new(&layer.b, layer.relu, mask, out_dim);
                gemm::nt_fused_bt(
                    x.as_slice(),
                    layer.w.as_slice(),
                    wt_l,
                    y.as_mut_slice(),
                    rows,
                    out_dim,
                    k,
                    &mut epi,
                );
            }
        }
    }

    /// Backpropagates `dl_dout` (batch × out) through the cached pass and
    /// returns per-layer gradients aligned with [`Mlp::apply_grads`].
    ///
    /// Allocating convenience wrapper around [`Mlp::backward_into`].
    pub fn backward(&self, cache: &ForwardCache, dl_dout: &Matrix) -> Vec<(Matrix, Vec<f64>)> {
        let mut delta = Matrix::zeros(0, 0);
        let mut delta_prev = Matrix::zeros(0, 0);
        let mut grads = Vec::new();
        self.backward_cache(cache, dl_dout, &mut delta, &mut delta_prev, &mut grads);
        grads
    }

    /// Backpropagates `dl_dout` through the forward pass cached in `scratch`
    /// (by [`Mlp::forward_train_into`]), leaving per-layer gradients in
    /// [`TrainScratch::grads`]. Bit-identical to [`Mlp::backward`].
    pub fn backward_into(&self, dl_dout: &Matrix, scratch: &mut TrainScratch) {
        let TrainScratch {
            cache,
            delta,
            delta_prev,
            grads,
            ..
        } = scratch;
        self.backward_cache(cache, dl_dout, delta, delta_prev, grads);
    }

    fn backward_cache(
        &self,
        cache: &ForwardCache,
        dl_dout: &Matrix,
        delta: &mut Matrix,
        delta_prev: &mut Matrix,
        grads: &mut Vec<(Matrix, Vec<f64>)>,
    ) {
        grads.resize_with(self.layers.len(), || (Matrix::zeros(0, 0), Vec::new()));
        delta.copy_from(dl_dout);
        for (li, layer) in self.layers.iter().enumerate().rev() {
            // Through dropout mask and ReLU of this layer's output.
            if layer.relu {
                let out = &cache.activations[li + 1];
                if let Some(mask) = &cache.masks[li] {
                    for (d, m) in delta.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                        *d *= m;
                    }
                }
                for (d, &o) in delta.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    if o <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            let input = &cache.activations[li];
            let (dw, db) = &mut grads[li];
            // dW (out × in) = deltaᵀ × input
            delta.t_matmul_into(input, dw);
            db.clear();
            db.resize(layer.b.len(), 0.0);
            for r in 0..delta.rows() {
                for (o, dbo) in db.iter_mut().enumerate() {
                    *dbo += delta.get(r, o);
                }
            }
            // delta for previous layer = delta × W
            if li > 0 {
                delta.matmul_into(&layer.w, delta_prev);
                std::mem::swap(delta, delta_prev);
            }
        }
    }

    /// The fused backward + optimizer step: backpropagates `dl_dout`
    /// through the forward pass cached in `scratch` **and** applies one
    /// Adam update to every parameter inside the same sweep. Bit-identical
    /// to [`Mlp::backward_into`] followed by a cursor-order
    /// [`crate::optim::AdamStep::update_slice`] pass (pinned by a unit
    /// test here and end-to-end by the CI kernel-equivalence smoke).
    ///
    /// Three per-element fusions ride the backward GEMMs' store paths:
    ///
    /// - **ReLU/dropout backward** runs in the epilogue of the `nn` GEMM
    ///   that produces each hidden layer's delta (same two ops, same
    ///   order as the historical separate pass over `delta`).
    /// - **Adam on weights** runs in the epilogue of the `tn` GEMM that
    ///   produces each weight gradient: the moment the last contribution
    ///   of a `dW` element lands, that parameter's three divisions and
    ///   square root issue — so the divider unit (which bounds the Adam
    ///   pass on its own: ~9 cycles per parameter) churns *in parallel*
    ///   with the next tile's multiply/add stream instead of serializing
    ///   into a separate memory-bound pass over all parameters after
    ///   backward finishes. Gradients are still stored to
    ///   the scratch's gradient buffers.
    /// - The same epilogue mirrors each updated weight into the scratch's
    ///   persistent `Wᵀ` shadow, which the next fused forward streams
    ///   directly.
    ///
    /// Update order across parameters is tile order rather than cursor
    /// order; each parameter keeps its fixed moment slot and its exact
    /// update expression, and parameters are independent, so the final
    /// state is bit-identical. Within one layer the backpropagated delta
    /// is computed *before* that layer's weights move, exactly as the
    /// split pipeline orders it.
    ///
    /// `step` must come from an [`crate::optim::Adam`] sized for this
    /// net's [`Mlp::param_count`], freshly obtained from
    /// [`crate::optim::Adam::step`] once per minibatch, with its
    /// sequential cursor unused. Callers must not mutate weights between
    /// fused steps that share a `scratch` — the shadow would go stale
    /// (it is rebuilt whenever its shape disagrees with the net, but a
    /// same-shape parameter swap is undetectable).
    pub fn backward_adam_into(
        &mut self,
        dl_dout: &Matrix,
        scratch: &mut TrainScratch,
        step: &mut AdamStep<'_>,
    ) {
        let n_layers = self.layers.len();
        let TrainScratch {
            cache,
            delta,
            delta_prev,
            grads,
            wt,
        } = scratch;
        grads.resize_with(n_layers, || (Matrix::zeros(0, 0), Vec::new()));
        // (Re)build the transposed-weight shadow if absent or mis-shaped.
        let stale = wt.len() != n_layers
            || self
                .layers
                .iter()
                .zip(wt.iter())
                .any(|(l, t)| t.rows() != l.w.cols() || t.cols() != l.w.rows());
        if stale {
            wt.resize_with(n_layers, || Matrix::zeros(0, 0));
            for (l, t) in self.layers.iter().zip(wt.iter_mut()) {
                l.w.transpose_into(t);
            }
        }
        delta.copy_from(dl_dout);
        // Start past the last layer; each iteration steps back to the start
        // of layer `li`'s parameters in the flat `flatten_params` order —
        // the moment-slot indexing the cursor-order optimizer pass uses.
        let mut offset: usize = self.param_count();
        for li in (0..n_layers).rev() {
            let n_out = self.layers[li].w.rows();
            let n_in = self.layers[li].w.cols();
            offset -= n_out * n_in + self.layers[li].b.len();
            let rows = delta.rows();
            debug_assert_eq!(delta.cols(), n_out);
            // Bias gradients: column sums of the (already masked) delta.
            let (dw, db) = &mut grads[li];
            db.clear();
            db.resize(n_out, 0.0);
            for r in 0..rows {
                for (o, dbo) in db.iter_mut().enumerate() {
                    *dbo += delta.get(r, o);
                }
            }
            // Backpropagated delta for the layer below — computed *before*
            // this layer's weights move, with the layer-below ReLU/dropout
            // backward fused into the store.
            if li > 0 {
                delta_prev.reshape(rows, n_in);
                let w = self.layers[li].w.as_slice();
                if self.layers[li - 1].relu {
                    let mut epi = ReluMaskEpilogue {
                        mask: cache.masks[li - 1].as_ref().map(|m| m.as_slice()),
                        out: cache.activations[li].as_slice(),
                        n: n_in,
                    };
                    gemm::nn_fused(
                        delta.as_slice(),
                        w,
                        delta_prev.as_mut_slice(),
                        rows,
                        n_out,
                        n_in,
                        &mut epi,
                    );
                } else {
                    gemm::nn_fused(
                        delta.as_slice(),
                        w,
                        delta_prev.as_mut_slice(),
                        rows,
                        n_out,
                        n_in,
                        &mut gemm::NoEpilogue,
                    );
                }
            }
            // Weight gradients with the Adam update (and Wᵀ-shadow
            // refresh) fused into the store path.
            {
                let layer = &mut self.layers[li];
                let input = &cache.activations[li];
                dw.reshape(n_out, n_in);
                let mut epi = AdamWEpilogue {
                    lane: step.lane(offset, n_out * n_in),
                    w: layer.w.as_mut_slice(),
                    wt: wt[li].as_mut_slice(),
                    n_in,
                    n_out,
                };
                gemm::tn_fused(
                    delta.as_slice(),
                    input.as_slice(),
                    dw.as_mut_slice(),
                    rows,
                    n_out,
                    n_in,
                    &mut epi,
                );
            }
            step.update_slice_at(offset + n_out * n_in, &mut self.layers[li].b, db);
            if li > 0 {
                std::mem::swap(delta, delta_prev);
            }
        }
    }

    /// Layer sizes (input, hidden..., output) — the shape [`Mlp::new`] takes.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.layers.len() + 1);
        sizes.push(self.input_dim());
        sizes.extend(self.layers.iter().map(|l| l.b.len()));
        sizes
    }

    /// Flattens every parameter (per layer: weights row-major, then biases)
    /// in the order [`Mlp::apply_grads`] visits them.
    pub fn flatten_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.w.as_slice());
            out.extend_from_slice(&layer.b);
        }
        out
    }

    /// Rebuilds a network from [`Mlp::layer_sizes`], a dropout rate, and
    /// [`Mlp::flatten_params`] output. Returns `None` when the shape and the
    /// parameter count disagree (e.g. a corrupted snapshot) instead of
    /// panicking.
    pub fn from_flat(sizes: &[usize], dropout: f64, params: &[f64]) -> Option<Mlp> {
        if sizes.len() < 2 {
            return None;
        }
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        let mut cursor = params;
        for i in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[i], sizes[i + 1]);
            let n_w = fan_in.checked_mul(fan_out)?;
            if cursor.len() < n_w.checked_add(fan_out)? {
                return None;
            }
            let (w, rest) = cursor.split_at(n_w);
            let (b, rest) = rest.split_at(fan_out);
            cursor = rest;
            layers.push(Dense {
                w: Matrix::from_vec(fan_out, fan_in, w.to_vec()),
                b: b.to_vec(),
                relu: i + 2 < sizes.len(),
            });
        }
        if !cursor.is_empty() {
            return None;
        }
        Some(Mlp { layers, dropout })
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.as_slice().len() + l.b.len())
            .sum()
    }

    /// Applies `f` to every (parameter, gradient) pair, layer by layer.
    pub fn apply_grads<F: FnMut(&mut f64, f64)>(&mut self, grads: &[(Matrix, Vec<f64>)], mut f: F) {
        for (layer, (dw, db)) in self.layers.iter_mut().zip(grads) {
            for (p, g) in layer.w.as_mut_slice().iter_mut().zip(dw.as_slice()) {
                f(p, *g);
            }
            for (p, g) in layer.b.iter_mut().zip(db) {
                f(p, *g);
            }
        }
    }

    /// Applies `f` to each (parameter slice, gradient slice) pair — weights
    /// then biases, layer by layer. Visits parameters in the same order as
    /// [`Mlp::apply_grads`], one call per slice instead of per scalar.
    pub fn apply_grads_slices<F: FnMut(&mut [f64], &[f64])>(
        &mut self,
        grads: &[(Matrix, Vec<f64>)],
        mut f: F,
    ) {
        for (layer, (dw, db)) in self.layers.iter_mut().zip(grads) {
            f(layer.w.as_mut_slice(), dw.as_slice());
            f(&mut layer.b, db);
        }
    }
}

/// Backward ReLU/dropout epilogue for [`Mlp::backward_adam_into`]: applies
/// the layer-below mask multiply and ReLU zeroing to each backpropagated
/// delta element as it stores — the same two per-element ops, in the same
/// order, as the historical separate pass over `delta`.
struct ReluMaskEpilogue<'a> {
    /// Scaled keep-mask of the layer below (row-major `m×n`), if dropout.
    mask: Option<&'a [f64]>,
    /// Post-activation output of the layer below (row-major `m×n`).
    out: &'a [f64],
    n: usize,
}

impl Epilogue for ReluMaskEpilogue<'_> {
    #[inline(always)]
    fn apply(&mut self, i: usize, j: usize, s: f64) -> f64 {
        let idx = i * self.n + j;
        let mut v = s;
        if let Some(mask) = self.mask {
            v *= mask[idx];
        }
        if self.out[idx] <= 0.0 {
            v = 0.0;
        }
        v
    }

    #[inline(always)]
    fn apply_row(&mut self, i: usize, j: usize, vals: &mut [f64]) {
        // Per-element identical to `apply` over the run (mask multiply and
        // ReLU zeroing are independent per element), split into two slice
        // passes so each vectorizes.
        let idx0 = i * self.n + j;
        let len = vals.len();
        if let Some(mask) = self.mask {
            for (v, &m) in vals.iter_mut().zip(&mask[idx0..idx0 + len]) {
                *v *= m;
            }
        }
        for (v, &o) in vals.iter_mut().zip(&self.out[idx0..idx0 + len]) {
            if o <= 0.0 {
                *v = 0.0;
            }
        }
    }
}

/// Weight-update epilogue for [`Mlp::backward_adam_into`]: as each element
/// of a layer's `dW` completes its strict-order chain, run that
/// parameter's Adam update (fixed moment slot = its `flatten_params`
/// index) and mirror the new weight into the `Wᵀ` shadow. Stores the
/// untouched gradient, so [`TrainScratch::grads`] stays valid.
struct AdamWEpilogue<'a> {
    lane: AdamLane<'a>,
    /// The layer's weights, row-major (out × in).
    w: &'a mut [f64],
    /// The layer's transposed-weight shadow, row-major (in × out).
    wt: &'a mut [f64],
    n_in: usize,
    n_out: usize,
}

impl Epilogue for AdamWEpilogue<'_> {
    #[inline(always)]
    fn apply(&mut self, i: usize, j: usize, s: f64) -> f64 {
        let idx = i * self.n_in + j;
        let p = &mut self.w[idx];
        self.lane.update(idx, p, s);
        self.wt[j * self.n_out + i] = *p;
        s
    }

    // `inline(never)`: inlined into the GEMM tile loop this body loses its
    // slices' noalias guarantees and the `update_run` divide chain
    // scalarizes (~2× the whole kernel's cost); as an out-of-line call the
    // argument attributes survive and the run vectorizes.
    #[inline(never)]
    fn apply_row(&mut self, i: usize, j: usize, vals: &mut [f64]) {
        // A tile row of `dW` is a contiguous parameter run (`dW` and `W`
        // share row-major out×in layout), so the whole run updates through
        // one vectorizable `update_run` pass instead of per-element scalar
        // divides; per-element identical to `apply`. `vals` (the stored
        // gradients) are left untouched.
        let idx0 = i * self.n_in + j;
        let w = &mut self.w[idx0..idx0 + vals.len()];
        self.lane.update_run(idx0, w, vals);
        for (jj, &wv) in w.iter().enumerate() {
            self.wt[(j + jj) * self.n_out + i] = wv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn shapes_and_param_count() {
        let net = Mlp::new(&[5, 100, 100, 50, 1], 0.1, &mut rng());
        assert_eq!(net.input_dim(), 5);
        assert_eq!(net.output_dim(), 1);
        let expected = 5 * 100 + 100 + 100 * 100 + 100 + 100 * 50 + 50 + 50 + 1;
        assert_eq!(net.param_count(), expected);
    }

    #[test]
    fn forward_is_deterministic() {
        let net = Mlp::new(&[3, 8, 2], 0.5, &mut rng());
        let a = net.forward(&[0.1, -0.2, 0.3]);
        let b = net.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(a, b, "inference ignores dropout randomness");
    }

    #[test]
    fn forward_batch_rows_are_bit_identical_to_forward() {
        let mut r = rng();
        let net = Mlp::new(&[5, 100, 100, 50, 1], 0.1, &mut r);
        for rows in [1usize, 7, 64] {
            let mut batch = Matrix::zeros(rows, 5);
            for v in batch.as_mut_slice() {
                *v = simrng::normal(&mut r, 0.0, 2.0);
            }
            let out = net.forward_batch(&batch);
            assert_eq!(out.rows(), rows);
            assert_eq!(out.cols(), 1);
            for i in 0..rows {
                let single = net.forward(batch.row(i));
                assert_eq!(
                    out.get(i, 0).to_bits(),
                    single[0].to_bits(),
                    "row {i} of a {rows}-row batch diverged from the scalar path"
                );
            }
        }
    }

    #[test]
    fn forward_batch_into_reuses_buffers() {
        let net = Mlp::new(&[3, 8, 2], 0.0, &mut rng());
        let batch = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 1.0, 2.0, -3.0]);
        let mut scratch = Matrix::from_vec(1, 1, vec![9e9]);
        let mut out = Matrix::from_vec(1, 1, vec![9e9]);
        net.forward_batch_into(&batch, &mut scratch, &mut out);
        let fresh = net.forward_batch(&batch);
        assert_eq!(
            out.as_slice(),
            fresh.as_slice(),
            "dirty scratch must not leak"
        );
    }

    #[test]
    fn relu_only_on_hidden_layers() {
        // Output can be negative (regression head).
        let mut found_negative = false;
        let mut r = rng();
        for _ in 0..20 {
            let net = Mlp::new(&[2, 4, 1], 0.0, &mut r);
            if net.forward(&[1.0, -1.0])[0] < 0.0 {
                found_negative = true;
            }
        }
        assert!(found_negative, "regression head must be unbounded");
    }

    #[test]
    fn gradient_check_numeric() {
        // Finite-difference check on a tiny net without dropout.
        let mut net = Mlp::new(&[2, 3, 1], 0.0, &mut rng());
        let x = Matrix::from_vec(1, 2, vec![0.7, -0.4]);
        let target = 0.3;
        let loss = |net: &Mlp| {
            let y = net.forward(&[0.7, -0.4])[0];
            (y - target) * (y - target)
        };
        let (out, cache) = net.forward_train(&x, &mut rng());
        let dl = Matrix::from_vec(1, 1, vec![2.0 * (out.get(0, 0) - target)]);
        let grads = net.backward(&cache, &dl);

        // Collect analytic grads in order, then compare to numeric.
        let mut analytic = Vec::new();
        for (dw, db) in &grads {
            analytic.extend_from_slice(dw.as_slice());
            analytic.extend_from_slice(db);
        }
        let eps = 1e-6;
        let mut max_err: f64 = 0.0;
        assert_eq!(analytic.len(), net.param_count());
        for (idx, &analytic_grad) in analytic.iter().enumerate() {
            // Perturb parameter `idx` via apply_grads indexing trick.
            let mut i = 0;
            net.apply_grads(&grads, |p, _| {
                if i == idx {
                    *p += eps;
                }
                i += 1;
            });
            let lp = loss(&net);
            let mut i = 0;
            net.apply_grads(&grads, |p, _| {
                if i == idx {
                    *p -= 2.0 * eps;
                }
                i += 1;
            });
            let lm = loss(&net);
            let mut i = 0;
            net.apply_grads(&grads, |p, _| {
                if i == idx {
                    *p += eps;
                }
                i += 1;
            });
            let numeric = (lp - lm) / (2.0 * eps);
            max_err = max_err.max((numeric - analytic_grad).abs());
        }
        assert!(max_err < 1e-4, "max gradient error {max_err}");
    }

    #[test]
    fn dropout_zeroes_some_activations_in_training() {
        let net = Mlp::new(&[4, 64, 1], 0.5, &mut rng());
        let x = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let mut r = rng();
        let (_, cache) = net.forward_train(&x, &mut r);
        let mask = cache.masks[0].as_ref().expect("hidden dropout mask");
        let zeros = mask.as_slice().iter().filter(|&&m| m == 0.0).count();
        assert!(zeros > 10, "dropout disabled? zeros = {zeros}");
    }

    #[test]
    fn paper_architecture_shape() {
        let net = Mlp::paper_architecture(5, &mut rng());
        assert_eq!(net.input_dim(), 5);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.dropout, 0.1);
    }

    #[test]
    fn fused_backward_adam_matches_split_reference() {
        use crate::optim::Adam;
        // Several full optimization steps through the fused path (epilogue
        // Adam in tile order, persistent Wᵀ shadow) must leave parameters,
        // gradients, and optimizer state bit-identical to the split
        // reference: backward_into + cursor-order update_slice.
        let mut r = rng();
        let sizes = [5, 13, 7, 2];
        let mut net_split = Mlp::new(&sizes, 0.25, &mut r);
        let mut net_fused = net_split.clone();
        let mut adam_split = Adam::new(net_split.param_count(), 1e-3);
        let mut adam_fused = Adam::new(net_fused.param_count(), 1e-3);
        let mut scratch_split = TrainScratch::new();
        let mut scratch_fused = TrainScratch::new();
        // Two RNGs with identical streams so both paths draw the same
        // dropout masks.
        let mut rng_split = rand::rngs::StdRng::seed_from_u64(99);
        let mut rng_fused = rand::rngs::StdRng::seed_from_u64(99);
        for step_i in 0..5 {
            // Ragged batch sizes exercise remainder tiles.
            let rows = [16, 7, 1, 13, 4][step_i];
            let mut x = Matrix::zeros(rows, 5);
            for v in x.as_mut_slice() {
                *v = simrng::normal(&mut r, 0.0, 1.5);
            }
            let mut y = Matrix::zeros(rows, 2);
            for v in y.as_mut_slice() {
                *v = simrng::normal(&mut r, 0.0, 1.0);
            }
            let n = (rows * 2) as f64;

            net_split.forward_train_diff_into(&x, &y, &mut rng_split, &mut scratch_split);
            let mut dl = Matrix::zeros(rows, 2);
            for rr in 0..rows {
                for cc in 0..2 {
                    dl.set(rr, cc, 2.0 * scratch_split.output().get(rr, cc) / n);
                }
            }
            net_split.backward_into(&dl, &mut scratch_split);
            let mut step = adam_split.step();
            net_split.apply_grads_slices(scratch_split.grads(), |p, g| step.update_slice(p, g));

            net_fused.forward_train_diff_into(&x, &y, &mut rng_fused, &mut scratch_fused);
            let mut dl2 = Matrix::zeros(rows, 2);
            for rr in 0..rows {
                for cc in 0..2 {
                    dl2.set(rr, cc, 2.0 * scratch_fused.output().get(rr, cc) / n);
                }
            }
            let mut step = adam_fused.step();
            net_fused.backward_adam_into(&dl2, &mut scratch_fused, &mut step);

            let (ps, pf) = (net_split.flatten_params(), net_fused.flatten_params());
            for (i, (a, b)) in ps.iter().zip(&pf).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step {step_i}: param {i} diverged: {a} vs {b}"
                );
            }
            for (li, ((dw_s, db_s), (dw_f, db_f))) in scratch_split
                .grads()
                .iter()
                .zip(scratch_fused.grads())
                .enumerate()
            {
                for (a, b) in dw_s.as_slice().iter().zip(dw_f.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "step {step_i} layer {li} dW");
                }
                for (a, b) in db_s.iter().zip(db_f) {
                    assert_eq!(a.to_bits(), b.to_bits(), "step {step_i} layer {li} db");
                }
            }
        }
        assert_eq!(adam_split, adam_fused, "optimizer state diverged");
        // The Wᵀ shadow must mirror the final weights bit-for-bit.
        let mut t = Matrix::zeros(0, 0);
        for (li, (layer, shadow)) in net_fused.layers.iter().zip(&scratch_fused.wt).enumerate() {
            layer.w.transpose_into(&mut t);
            assert_eq!(
                t.as_slice(),
                shadow.as_slice(),
                "layer {li} Wᵀ shadow went stale"
            );
        }
    }
}
