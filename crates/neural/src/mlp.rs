//! The feed-forward network: dense layers + ReLU + dropout.

use crate::gemm::layer_forward_t;
use crate::matrix::Matrix;
use av_simkit::rng as simrng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One dense layer: `y = x·Wᵀ + b`, optionally followed by ReLU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Dense {
    /// Weights, shape (out, in).
    w: Matrix,
    /// Biases, length `out`.
    b: Vec<f64>,
    /// Apply ReLU after the affine map (all layers except the last).
    relu: bool,
}

/// Cached activations from a training forward pass.
///
/// Reusable: [`Mlp::forward_train_into`] reshapes the cached matrices in
/// place, so a cache held across minibatches performs no per-batch
/// allocation once warm.
#[derive(Debug, Default)]
pub struct ForwardCache {
    /// Input and post-activation output of each layer (len = layers + 1).
    activations: Vec<Matrix>,
    /// Dropout keep-masks (already scaled) per hidden layer.
    masks: Vec<Option<Matrix>>,
}

impl ForwardCache {
    /// Creates an empty cache; buffers are sized lazily on first use.
    pub fn new() -> Self {
        ForwardCache::default()
    }

    /// The output batch of the most recent training forward pass.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run through this cache.
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("no forward pass cached")
    }
}

/// Owned scratch for a training loop: forward cache, backprop deltas, and
/// per-layer gradients, all reused across minibatches so steady-state
/// training performs no heap allocation.
#[derive(Debug, Default)]
pub struct TrainScratch {
    cache: ForwardCache,
    delta: Matrix,
    delta_prev: Matrix,
    grads: Vec<(Matrix, Vec<f64>)>,
}

impl TrainScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        TrainScratch {
            cache: ForwardCache::new(),
            delta: Matrix::zeros(0, 0),
            delta_prev: Matrix::zeros(0, 0),
            grads: Vec::new(),
        }
    }

    /// The output batch of the most recent [`Mlp::forward_train_into`].
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run through this scratch.
    pub fn output(&self) -> &Matrix {
        self.cache.output()
    }

    /// Per-layer gradients from the most recent [`Mlp::backward_into`],
    /// aligned with [`Mlp::apply_grads`].
    pub fn grads(&self) -> &[(Matrix, Vec<f64>)] {
        &self.grads
    }
}

/// A multi-layer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Dropout rate applied after each hidden activation during training.
    pub dropout: f64,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (input, hidden..., output),
    /// He-initialized. `dropout` is applied after each hidden ReLU during
    /// training (inverted dropout — inference needs no rescaling).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], dropout: f64, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[i], sizes[i + 1]);
            let std = (2.0 / fan_in as f64).sqrt();
            let mut w = Matrix::zeros(fan_out, fan_in);
            for v in w.as_mut_slice() {
                *v = simrng::normal(rng, 0.0, std);
            }
            layers.push(Dense {
                w,
                b: vec![0.0; fan_out],
                relu: i + 2 < sizes.len(),
            });
        }
        Mlp { layers, dropout }
    }

    /// The architecture the paper specifies: 3 hidden layers of 100/100/50
    /// ReLU units with dropout 0.1 (§IV-B).
    pub fn paper_architecture<R: Rng + ?Sized>(inputs: usize, rng: &mut R) -> Self {
        Mlp::new(&[inputs, 100, 100, 50, 1], 0.1, rng)
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("nonempty").b.len()
    }

    /// Inference forward pass (dropout disabled).
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.input_dim());
        let mut x = input.to_vec();
        for layer in &self.layers {
            let mut y = layer.b.clone();
            for (o, yo) in y.iter_mut().enumerate() {
                *yo += layer
                    .w
                    .row(o)
                    .iter()
                    .zip(&x)
                    .map(|(w, xi)| w * xi)
                    .sum::<f64>();
                if layer.relu && *yo < 0.0 {
                    *yo = 0.0;
                }
            }
            x = y;
        }
        x
    }

    /// Batched inference forward pass (dropout disabled); row `r` of the
    /// result is bit-identical to `forward(batch.row(r))`.
    ///
    /// Allocating convenience wrapper around [`Mlp::forward_batch_into`].
    pub fn forward_batch(&self, batch: &Matrix) -> Matrix {
        let mut scratch = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        self.forward_batch_into(batch, &mut scratch, &mut out);
        out
    }

    /// Batched inference forward pass (dropout disabled) into reusable
    /// scratch buffers; the result ends up in `out`.
    ///
    /// Bit-identity with the per-example path: the kernel accumulates each
    /// output element as the same ordered dot product that [`Mlp::forward`]
    /// uses, and adding the bias after the dot (`Σ + b` instead of `b + Σ`)
    /// is exact because IEEE-754 addition is commutative. The lane kernel
    /// ([`crate::gemm::layer_forward_t`]) is deliberately independent of the
    /// process-wide [`crate::gemm::GemmMode`], so batched inference stays
    /// bit-identical to [`Mlp::forward`] even when training runs tiled.
    ///
    /// The speed over per-example forwards comes from keeping activations
    /// *transposed* (feature-major, one column per batch row): the same
    /// feature of 8 adjacent batch rows is contiguous, so the layer kernel
    /// runs 8 independent k-ordered sums in SIMD lanes — per-row bits
    /// unchanged, since no sum is reassociated, only interleaved with the
    /// other rows' sums.
    pub fn forward_batch_into(&self, batch: &Matrix, scratch: &mut Matrix, out: &mut Matrix) {
        debug_assert_eq!(batch.cols(), self.input_dim());
        let n = batch.rows();
        // Transpose the batch into `scratch`: (N × K) → (K × N).
        scratch.reshape(batch.cols(), n);
        for r in 0..n {
            for (k, &v) in batch.row(r).iter().enumerate() {
                scratch.row_mut(k)[r] = v;
            }
        }
        // `scratch` holds the transposed input of each layer, `out` receives
        // its transposed output; the final swap leaves the last layer's
        // output transposed in `scratch`.
        for layer in &self.layers {
            layer_forward_t(&layer.w, &layer.b, layer.relu, scratch, out);
            std::mem::swap(scratch, out);
        }
        // Un-transpose the result into `out`: (J × N) → (N × J).
        let j_out = scratch.rows();
        out.reshape(n, j_out);
        for j in 0..j_out {
            for (i, &v) in scratch.row(j).iter().enumerate() {
                out.row_mut(i)[j] = v;
            }
        }
    }

    /// Batched training forward pass with inverted dropout; returns the
    /// output batch plus the cache for [`Mlp::backward`].
    ///
    /// Allocating convenience wrapper around [`Mlp::forward_train_into`].
    pub fn forward_train<R: Rng + ?Sized>(
        &self,
        batch: &Matrix,
        rng: &mut R,
    ) -> (Matrix, ForwardCache) {
        let mut cache = ForwardCache::new();
        self.forward_train_cache(batch, rng, &mut cache);
        (cache.output().clone(), cache)
    }

    /// Batched training forward pass into reusable scratch buffers. The
    /// output batch is available as [`TrainScratch::output`]. Numerically
    /// bit-identical to [`Mlp::forward_train`] (same accumulation order and
    /// the same per-element dropout RNG draws).
    pub fn forward_train_into<R: Rng + ?Sized>(
        &self,
        batch: &Matrix,
        rng: &mut R,
        scratch: &mut TrainScratch,
    ) {
        self.forward_train_cache(batch, rng, &mut scratch.cache);
    }

    fn forward_train_cache<R: Rng + ?Sized>(
        &self,
        batch: &Matrix,
        rng: &mut R,
        cache: &mut ForwardCache,
    ) {
        let n_layers = self.layers.len();
        cache
            .activations
            .resize_with(n_layers + 1, || Matrix::zeros(0, 0));
        cache.masks.resize_with(n_layers, || None);
        cache.activations[0].copy_from(batch);
        for (li, layer) in self.layers.iter().enumerate() {
            let (done, rest) = cache.activations.split_at_mut(li + 1);
            let x = &done[li];
            let y = &mut rest[0];
            // y = x · Wᵀ + b: one ordered dot per element, bias added after —
            // the same accumulation order as the historical per-row loop.
            x.matmul_t_into(&layer.w, y);
            for r in 0..y.rows() {
                for (v, &bias) in y.row_mut(r).iter_mut().zip(&layer.b) {
                    *v += bias;
                }
            }
            if layer.relu {
                for v in y.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                if self.dropout > 0.0 {
                    let keep = 1.0 - self.dropout;
                    let mask = cache.masks[li].get_or_insert_with(|| Matrix::zeros(0, 0));
                    mask.reshape(y.rows(), y.cols());
                    for (m, v) in mask.as_mut_slice().iter_mut().zip(y.as_mut_slice()) {
                        if rng.random::<f64>() < keep {
                            *m = 1.0 / keep;
                            *v *= *m;
                        } else {
                            *m = 0.0;
                            *v = 0.0;
                        }
                    }
                } else {
                    cache.masks[li] = None;
                }
            } else {
                cache.masks[li] = None;
            }
        }
    }

    /// Backpropagates `dl_dout` (batch × out) through the cached pass and
    /// returns per-layer gradients aligned with [`Mlp::apply_grads`].
    ///
    /// Allocating convenience wrapper around [`Mlp::backward_into`].
    pub fn backward(&self, cache: &ForwardCache, dl_dout: &Matrix) -> Vec<(Matrix, Vec<f64>)> {
        let mut delta = Matrix::zeros(0, 0);
        let mut delta_prev = Matrix::zeros(0, 0);
        let mut grads = Vec::new();
        self.backward_cache(cache, dl_dout, &mut delta, &mut delta_prev, &mut grads);
        grads
    }

    /// Backpropagates `dl_dout` through the forward pass cached in `scratch`
    /// (by [`Mlp::forward_train_into`]), leaving per-layer gradients in
    /// [`TrainScratch::grads`]. Bit-identical to [`Mlp::backward`].
    pub fn backward_into(&self, dl_dout: &Matrix, scratch: &mut TrainScratch) {
        let TrainScratch {
            cache,
            delta,
            delta_prev,
            grads,
        } = scratch;
        self.backward_cache(cache, dl_dout, delta, delta_prev, grads);
    }

    fn backward_cache(
        &self,
        cache: &ForwardCache,
        dl_dout: &Matrix,
        delta: &mut Matrix,
        delta_prev: &mut Matrix,
        grads: &mut Vec<(Matrix, Vec<f64>)>,
    ) {
        grads.resize_with(self.layers.len(), || (Matrix::zeros(0, 0), Vec::new()));
        delta.copy_from(dl_dout);
        for (li, layer) in self.layers.iter().enumerate().rev() {
            // Through dropout mask and ReLU of this layer's output.
            if layer.relu {
                let out = &cache.activations[li + 1];
                if let Some(mask) = &cache.masks[li] {
                    for (d, m) in delta.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                        *d *= m;
                    }
                }
                for (d, &o) in delta.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    if o <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            let input = &cache.activations[li];
            let (dw, db) = &mut grads[li];
            // dW (out × in) = deltaᵀ × input
            delta.t_matmul_into(input, dw);
            db.clear();
            db.resize(layer.b.len(), 0.0);
            for r in 0..delta.rows() {
                for (o, dbo) in db.iter_mut().enumerate() {
                    *dbo += delta.get(r, o);
                }
            }
            // delta for previous layer = delta × W
            if li > 0 {
                delta.matmul_into(&layer.w, delta_prev);
                std::mem::swap(delta, delta_prev);
            }
        }
    }

    /// Layer sizes (input, hidden..., output) — the shape [`Mlp::new`] takes.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.layers.len() + 1);
        sizes.push(self.input_dim());
        sizes.extend(self.layers.iter().map(|l| l.b.len()));
        sizes
    }

    /// Flattens every parameter (per layer: weights row-major, then biases)
    /// in the order [`Mlp::apply_grads`] visits them.
    pub fn flatten_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.w.as_slice());
            out.extend_from_slice(&layer.b);
        }
        out
    }

    /// Rebuilds a network from [`Mlp::layer_sizes`], a dropout rate, and
    /// [`Mlp::flatten_params`] output. Returns `None` when the shape and the
    /// parameter count disagree (e.g. a corrupted snapshot) instead of
    /// panicking.
    pub fn from_flat(sizes: &[usize], dropout: f64, params: &[f64]) -> Option<Mlp> {
        if sizes.len() < 2 {
            return None;
        }
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        let mut cursor = params;
        for i in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[i], sizes[i + 1]);
            let n_w = fan_in.checked_mul(fan_out)?;
            if cursor.len() < n_w.checked_add(fan_out)? {
                return None;
            }
            let (w, rest) = cursor.split_at(n_w);
            let (b, rest) = rest.split_at(fan_out);
            cursor = rest;
            layers.push(Dense {
                w: Matrix::from_vec(fan_out, fan_in, w.to_vec()),
                b: b.to_vec(),
                relu: i + 2 < sizes.len(),
            });
        }
        if !cursor.is_empty() {
            return None;
        }
        Some(Mlp { layers, dropout })
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.as_slice().len() + l.b.len())
            .sum()
    }

    /// Applies `f` to every (parameter, gradient) pair, layer by layer.
    pub fn apply_grads<F: FnMut(&mut f64, f64)>(&mut self, grads: &[(Matrix, Vec<f64>)], mut f: F) {
        for (layer, (dw, db)) in self.layers.iter_mut().zip(grads) {
            for (p, g) in layer.w.as_mut_slice().iter_mut().zip(dw.as_slice()) {
                f(p, *g);
            }
            for (p, g) in layer.b.iter_mut().zip(db) {
                f(p, *g);
            }
        }
    }

    /// Applies `f` to each (parameter slice, gradient slice) pair — weights
    /// then biases, layer by layer. Visits parameters in the same order as
    /// [`Mlp::apply_grads`], one call per slice instead of per scalar.
    pub fn apply_grads_slices<F: FnMut(&mut [f64], &[f64])>(
        &mut self,
        grads: &[(Matrix, Vec<f64>)],
        mut f: F,
    ) {
        for (layer, (dw, db)) in self.layers.iter_mut().zip(grads) {
            f(layer.w.as_mut_slice(), dw.as_slice());
            f(&mut layer.b, db);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn shapes_and_param_count() {
        let net = Mlp::new(&[5, 100, 100, 50, 1], 0.1, &mut rng());
        assert_eq!(net.input_dim(), 5);
        assert_eq!(net.output_dim(), 1);
        let expected = 5 * 100 + 100 + 100 * 100 + 100 + 100 * 50 + 50 + 50 + 1;
        assert_eq!(net.param_count(), expected);
    }

    #[test]
    fn forward_is_deterministic() {
        let net = Mlp::new(&[3, 8, 2], 0.5, &mut rng());
        let a = net.forward(&[0.1, -0.2, 0.3]);
        let b = net.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(a, b, "inference ignores dropout randomness");
    }

    #[test]
    fn forward_batch_rows_are_bit_identical_to_forward() {
        let mut r = rng();
        let net = Mlp::new(&[5, 100, 100, 50, 1], 0.1, &mut r);
        for rows in [1usize, 7, 64] {
            let mut batch = Matrix::zeros(rows, 5);
            for v in batch.as_mut_slice() {
                *v = simrng::normal(&mut r, 0.0, 2.0);
            }
            let out = net.forward_batch(&batch);
            assert_eq!(out.rows(), rows);
            assert_eq!(out.cols(), 1);
            for i in 0..rows {
                let single = net.forward(batch.row(i));
                assert_eq!(
                    out.get(i, 0).to_bits(),
                    single[0].to_bits(),
                    "row {i} of a {rows}-row batch diverged from the scalar path"
                );
            }
        }
    }

    #[test]
    fn forward_batch_into_reuses_buffers() {
        let net = Mlp::new(&[3, 8, 2], 0.0, &mut rng());
        let batch = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 1.0, 2.0, -3.0]);
        let mut scratch = Matrix::from_vec(1, 1, vec![9e9]);
        let mut out = Matrix::from_vec(1, 1, vec![9e9]);
        net.forward_batch_into(&batch, &mut scratch, &mut out);
        let fresh = net.forward_batch(&batch);
        assert_eq!(
            out.as_slice(),
            fresh.as_slice(),
            "dirty scratch must not leak"
        );
    }

    #[test]
    fn relu_only_on_hidden_layers() {
        // Output can be negative (regression head).
        let mut found_negative = false;
        let mut r = rng();
        for _ in 0..20 {
            let net = Mlp::new(&[2, 4, 1], 0.0, &mut r);
            if net.forward(&[1.0, -1.0])[0] < 0.0 {
                found_negative = true;
            }
        }
        assert!(found_negative, "regression head must be unbounded");
    }

    #[test]
    fn gradient_check_numeric() {
        // Finite-difference check on a tiny net without dropout.
        let mut net = Mlp::new(&[2, 3, 1], 0.0, &mut rng());
        let x = Matrix::from_vec(1, 2, vec![0.7, -0.4]);
        let target = 0.3;
        let loss = |net: &Mlp| {
            let y = net.forward(&[0.7, -0.4])[0];
            (y - target) * (y - target)
        };
        let (out, cache) = net.forward_train(&x, &mut rng());
        let dl = Matrix::from_vec(1, 1, vec![2.0 * (out.get(0, 0) - target)]);
        let grads = net.backward(&cache, &dl);

        // Collect analytic grads in order, then compare to numeric.
        let mut analytic = Vec::new();
        for (dw, db) in &grads {
            analytic.extend_from_slice(dw.as_slice());
            analytic.extend_from_slice(db);
        }
        let eps = 1e-6;
        let mut max_err: f64 = 0.0;
        assert_eq!(analytic.len(), net.param_count());
        for (idx, &analytic_grad) in analytic.iter().enumerate() {
            // Perturb parameter `idx` via apply_grads indexing trick.
            let mut i = 0;
            net.apply_grads(&grads, |p, _| {
                if i == idx {
                    *p += eps;
                }
                i += 1;
            });
            let lp = loss(&net);
            let mut i = 0;
            net.apply_grads(&grads, |p, _| {
                if i == idx {
                    *p -= 2.0 * eps;
                }
                i += 1;
            });
            let lm = loss(&net);
            let mut i = 0;
            net.apply_grads(&grads, |p, _| {
                if i == idx {
                    *p += eps;
                }
                i += 1;
            });
            let numeric = (lp - lm) / (2.0 * eps);
            max_err = max_err.max((numeric - analytic_grad).abs());
        }
        assert!(max_err < 1e-4, "max gradient error {max_err}");
    }

    #[test]
    fn dropout_zeroes_some_activations_in_training() {
        let net = Mlp::new(&[4, 64, 1], 0.5, &mut rng());
        let x = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let mut r = rng();
        let (_, cache) = net.forward_train(&x, &mut r);
        let mask = cache.masks[0].as_ref().expect("hidden dropout mask");
        let zeros = mask.as_slice().iter().filter(|&&m| m == 0.0).count();
        assert!(zeros > 10, "dropout disabled? zeros = {zeros}");
    }

    #[test]
    fn paper_architecture_shape() {
        let net = Mlp::paper_architecture(5, &mut rng());
        assert_eq!(net.input_dim(), 5);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.dropout, 0.1);
    }
}
