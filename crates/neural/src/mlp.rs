//! The feed-forward network: dense layers + ReLU + dropout.

use crate::matrix::Matrix;
use av_simkit::rng as simrng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One dense layer: `y = x·Wᵀ + b`, optionally followed by ReLU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Dense {
    /// Weights, shape (out, in).
    w: Matrix,
    /// Biases, length `out`.
    b: Vec<f64>,
    /// Apply ReLU after the affine map (all layers except the last).
    relu: bool,
}

/// Cached activations from a training forward pass.
#[derive(Debug)]
pub struct ForwardCache {
    /// Input and post-activation output of each layer (len = layers + 1).
    activations: Vec<Matrix>,
    /// Dropout keep-masks (already scaled) per hidden layer.
    masks: Vec<Option<Matrix>>,
}

/// A multi-layer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Dropout rate applied after each hidden activation during training.
    pub dropout: f64,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (input, hidden..., output),
    /// He-initialized. `dropout` is applied after each hidden ReLU during
    /// training (inverted dropout — inference needs no rescaling).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], dropout: f64, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[i], sizes[i + 1]);
            let std = (2.0 / fan_in as f64).sqrt();
            let mut w = Matrix::zeros(fan_out, fan_in);
            for v in w.as_mut_slice() {
                *v = simrng::normal(rng, 0.0, std);
            }
            layers.push(Dense {
                w,
                b: vec![0.0; fan_out],
                relu: i + 2 < sizes.len(),
            });
        }
        Mlp { layers, dropout }
    }

    /// The architecture the paper specifies: 3 hidden layers of 100/100/50
    /// ReLU units with dropout 0.1 (§IV-B).
    pub fn paper_architecture<R: Rng + ?Sized>(inputs: usize, rng: &mut R) -> Self {
        Mlp::new(&[inputs, 100, 100, 50, 1], 0.1, rng)
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("nonempty").b.len()
    }

    /// Inference forward pass (dropout disabled).
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.input_dim());
        let mut x = input.to_vec();
        for layer in &self.layers {
            let mut y = layer.b.clone();
            for (o, yo) in y.iter_mut().enumerate() {
                *yo += layer
                    .w
                    .row(o)
                    .iter()
                    .zip(&x)
                    .map(|(w, xi)| w * xi)
                    .sum::<f64>();
                if layer.relu && *yo < 0.0 {
                    *yo = 0.0;
                }
            }
            x = y;
        }
        x
    }

    /// Batched training forward pass with inverted dropout; returns the
    /// output batch plus the cache for [`Mlp::backward`].
    pub fn forward_train<R: Rng + ?Sized>(
        &self,
        batch: &Matrix,
        rng: &mut R,
    ) -> (Matrix, ForwardCache) {
        let mut activations = vec![batch.clone()];
        let mut masks = Vec::with_capacity(self.layers.len());
        let mut x = batch.clone();
        for layer in &self.layers {
            // y = x · Wᵀ + b
            let mut y = Matrix::zeros(x.rows(), layer.b.len());
            for r in 0..x.rows() {
                for (o, &bias) in layer.b.iter().enumerate() {
                    let dot: f64 = layer
                        .w
                        .row(o)
                        .iter()
                        .zip(x.row(r))
                        .map(|(w, xi)| w * xi)
                        .sum();
                    y.set(r, o, dot + bias);
                }
            }
            if layer.relu {
                for v in y.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                if self.dropout > 0.0 {
                    let keep = 1.0 - self.dropout;
                    let mut mask = Matrix::zeros(y.rows(), y.cols());
                    for (m, v) in mask.as_mut_slice().iter_mut().zip(y.as_mut_slice()) {
                        if rng.random::<f64>() < keep {
                            *m = 1.0 / keep;
                            *v *= *m;
                        } else {
                            *m = 0.0;
                            *v = 0.0;
                        }
                    }
                    masks.push(Some(mask));
                } else {
                    masks.push(None);
                }
            } else {
                masks.push(None);
            }
            activations.push(y.clone());
            x = y;
        }
        (x, ForwardCache { activations, masks })
    }

    /// Backpropagates `dl_dout` (batch × out) through the cached pass and
    /// returns per-layer gradients aligned with [`Mlp::apply_grads`].
    pub fn backward(&self, cache: &ForwardCache, dl_dout: &Matrix) -> Vec<(Matrix, Vec<f64>)> {
        let mut grads = vec![(Matrix::zeros(0, 0), Vec::new()); self.layers.len()];
        let mut delta = dl_dout.clone();
        for (li, layer) in self.layers.iter().enumerate().rev() {
            // Through dropout mask and ReLU of this layer's output.
            if layer.relu {
                let out = &cache.activations[li + 1];
                if let Some(mask) = &cache.masks[li] {
                    for (d, m) in delta.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                        *d *= m;
                    }
                }
                for (d, &o) in delta.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    if o <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            let input = &cache.activations[li];
            // dW (out × in) = deltaᵀ × input
            let dw = delta.t_matmul(input);
            let mut db = vec![0.0; layer.b.len()];
            for r in 0..delta.rows() {
                for (o, dbo) in db.iter_mut().enumerate() {
                    *dbo += delta.get(r, o);
                }
            }
            // delta for previous layer = delta × W
            if li > 0 {
                delta = delta.matmul(&layer.w);
            }
            grads[li] = (dw, db);
        }
        grads
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.as_slice().len() + l.b.len())
            .sum()
    }

    /// Applies `f` to every (parameter, gradient) pair, layer by layer.
    pub fn apply_grads<F: FnMut(&mut f64, f64)>(&mut self, grads: &[(Matrix, Vec<f64>)], mut f: F) {
        for (layer, (dw, db)) in self.layers.iter_mut().zip(grads) {
            for (p, g) in layer.w.as_mut_slice().iter_mut().zip(dw.as_slice()) {
                f(p, *g);
            }
            for (p, g) in layer.b.iter_mut().zip(db) {
                f(p, *g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn shapes_and_param_count() {
        let net = Mlp::new(&[5, 100, 100, 50, 1], 0.1, &mut rng());
        assert_eq!(net.input_dim(), 5);
        assert_eq!(net.output_dim(), 1);
        let expected = 5 * 100 + 100 + 100 * 100 + 100 + 100 * 50 + 50 + 50 + 1;
        assert_eq!(net.param_count(), expected);
    }

    #[test]
    fn forward_is_deterministic() {
        let net = Mlp::new(&[3, 8, 2], 0.5, &mut rng());
        let a = net.forward(&[0.1, -0.2, 0.3]);
        let b = net.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(a, b, "inference ignores dropout randomness");
    }

    #[test]
    fn relu_only_on_hidden_layers() {
        // Output can be negative (regression head).
        let mut found_negative = false;
        let mut r = rng();
        for _ in 0..20 {
            let net = Mlp::new(&[2, 4, 1], 0.0, &mut r);
            if net.forward(&[1.0, -1.0])[0] < 0.0 {
                found_negative = true;
            }
        }
        assert!(found_negative, "regression head must be unbounded");
    }

    #[test]
    fn gradient_check_numeric() {
        // Finite-difference check on a tiny net without dropout.
        let mut net = Mlp::new(&[2, 3, 1], 0.0, &mut rng());
        let x = Matrix::from_vec(1, 2, vec![0.7, -0.4]);
        let target = 0.3;
        let loss = |net: &Mlp| {
            let y = net.forward(&[0.7, -0.4])[0];
            (y - target) * (y - target)
        };
        let (out, cache) = net.forward_train(&x, &mut rng());
        let dl = Matrix::from_vec(1, 1, vec![2.0 * (out.get(0, 0) - target)]);
        let grads = net.backward(&cache, &dl);

        // Collect analytic grads in order, then compare to numeric.
        let mut analytic = Vec::new();
        for (dw, db) in &grads {
            analytic.extend_from_slice(dw.as_slice());
            analytic.extend_from_slice(db);
        }
        let eps = 1e-6;
        let mut max_err: f64 = 0.0;
        assert_eq!(analytic.len(), net.param_count());
        for (idx, &analytic_grad) in analytic.iter().enumerate() {
            // Perturb parameter `idx` via apply_grads indexing trick.
            let mut i = 0;
            net.apply_grads(&grads, |p, _| {
                if i == idx {
                    *p += eps;
                }
                i += 1;
            });
            let lp = loss(&net);
            let mut i = 0;
            net.apply_grads(&grads, |p, _| {
                if i == idx {
                    *p -= 2.0 * eps;
                }
                i += 1;
            });
            let lm = loss(&net);
            let mut i = 0;
            net.apply_grads(&grads, |p, _| {
                if i == idx {
                    *p += eps;
                }
                i += 1;
            });
            let numeric = (lp - lm) / (2.0 * eps);
            max_err = max_err.max((numeric - analytic_grad).abs());
        }
        assert!(max_err < 1e-4, "max gradient error {max_err}");
    }

    #[test]
    fn dropout_zeroes_some_activations_in_training() {
        let net = Mlp::new(&[4, 64, 1], 0.5, &mut rng());
        let x = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let mut r = rng();
        let (_, cache) = net.forward_train(&x, &mut r);
        let mask = cache.masks[0].as_ref().expect("hidden dropout mask");
        let zeros = mask.as_slice().iter().filter(|&&m| m == 0.0).count();
        assert!(zeros > 10, "dropout disabled? zeros = {zeros}");
    }

    #[test]
    fn paper_architecture_shape() {
        let net = Mlp::paper_architecture(5, &mut rng());
        assert_eq!(net.input_dim(), 5);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.dropout, 0.1);
    }
}
