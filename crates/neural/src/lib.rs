//! # av-neural — from-scratch feed-forward neural networks
//!
//! A small, dependency-free MLP implementation sufficient to reproduce the
//! paper's safety hijacker (§IV-B): a fully connected network with 3 hidden
//! layers (100, 100, 50 neurons), ReLU activations, dropout 0.1, trained
//! with Adam on an L2 (MSE) objective with a 60/40 train/validation split.
//!
//! - [`matrix`]: row-major `f64` matrices with the handful of ops backprop
//!   needs.
//! - [`gemm`]: the shared register-blocked / cache-tiled GEMM micro-kernel
//!   layer every product (training *and* batched inference) routes through,
//!   plus the process-wide [`gemm::GemmMode`] selecting blocked (default,
//!   bit-identical to the naive reference) vs tiled (faster long
//!   reductions, reorders FP accumulation) vs naive kernels.
//! - [`mlp`]: the network — He initialization, forward (train/eval),
//!   backward, parameter access.
//! - [`optim`]: the Adam optimizer over flat parameter/gradient slices.
//! - [`mod@train`]: datasets, normalization, the training loop, and train/val
//!   splitting.
//!
//! # Example
//!
//! ```
//! use av_neural::mlp::Mlp;
//! use av_neural::train::{train, Dataset, TrainConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // Learn y = 2x on [0, 1].
//! let data = Dataset::from_rows(
//!     (0..64).map(|i| (vec![i as f64 / 64.0], vec![2.0 * i as f64 / 64.0])),
//! );
//! let mut net = Mlp::new(&[1, 16, 1], 0.0, &mut rng);
//! let report = train(&mut net, &data, &TrainConfig { epochs: 200, ..Default::default() }, &mut rng);
//! assert!(report.final_train_loss < 0.01);
//! ```

#![warn(missing_docs)]

pub mod gemm;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod train;

pub use gemm::GemmMode;
pub use matrix::Matrix;
pub use mlp::{ForwardCache, Mlp, TrainScratch};
pub use optim::Adam;
pub use train::{train, Dataset, Normalizer, TrainConfig, TrainReport};
