//! The shared GEMM micro-kernel layer behind every matrix product in the
//! crate.
//!
//! Training a safety-hijacker oracle is GEMM-bound: the minibatch forward
//! pass (`x · Wᵀ`), the weight gradients (`δᵀ · x`), and the backpropagated
//! deltas (`δ · W`) each run one of the three kernel families here on every
//! minibatch of every epoch, and the batch engine's cross-session inference
//! rides the same layer through [`layer_forward_t`]. All callers —
//! [`Matrix::matmul_into`], [`Matrix::t_matmul_into`],
//! [`Matrix::matmul_t_into`], `Mlp::forward_train_into`/`backward_into`,
//! and `Mlp::forward_batch_into` — resolve to the kernels in this module,
//! so there is exactly one place where accumulation order (and therefore
//! bit-level reproducibility) is decided.
//!
//! # Kernel families
//!
//! | family | computes | reduction | used by |
//! |---|---|---|---|
//! | `nt` | `C = A × Bᵀ` | over columns (`k`) | training/batch forward |
//! | `tn` | `C = Aᵀ × B` | over rows (`r`) | weight gradients |
//! | `nn` | `C = A × B` | over inner dim (`k`) | backpropagated deltas |
//!
//! Each family ships three implementations:
//!
//! - **naive** — reference triple loops. Every output element accumulates
//!   its contributions strictly in ascending reduction-index order from a
//!   `+0.0` start. This is the bit-level ground truth the other kernels
//!   are pinned against (and what `AV_GEMM_MODE=naive` routes through).
//! - **blocked** (default) — register-blocked 4×4 micro-kernels: a 4×4
//!   tile of outputs is held in 16 register accumulators while the
//!   reduction loop streams over both operands once. Every accumulator
//!   still sums *its* contributions strictly in ascending index order, so
//!   the speedup comes purely from instruction-level parallelism (16
//!   independent FP-add chains hide the ~4-cycle add latency) and from
//!   loading each operand element once per 4 outputs instead of once per
//!   output — **bit-identical** to naive on every non-NaN output (finite
//!   values, signed zeros, and infinities), with NaNs appearing in exactly
//!   the same places for non-finite inputs. NaN *payloads* are the one
//!   thing left unpinned: IEEE-754 leaves payload propagation
//!   implementation-defined and LLVM may commute add/mul operands, so two
//!   codegens of the same chain can surface different payload bits.
//!   (Pinned by unit tests and `tests/gemm_props.rs`.)
//! - **tiled** — the `TiledGemm` configuration ([`GemmMode::Tiled`]):
//!   additionally blocks the reduction dimension into [`K_PANEL`]-wide
//!   cache panels so each operand panel stays L1-resident across the whole
//!   output tile sweep. Panel partial sums are accumulated into `C`
//!   between panels, which **reorders floating-point addition** whenever
//!   the reduction dimension exceeds one panel — results are no longer
//!   bit-identical to naive (they agree to normal FP-summation error).
//!   Because trained-oracle artifacts are content-addressed by bit
//!   pattern, `av-experiments` keys tiled-mode artifacts separately; the
//!   default mode is untiled exactly so that golden fixtures and cache
//!   keys stay valid.
//!
//! # No sparsity shortcut
//!
//! The pre-PR-8 `nn`/`tn` loops skipped work when a left-hand element
//! compared equal to `0.0`. That shortcut is **not IEEE-transparent**:
//! `0.0 × NaN` and `0.0 × ∞` are NaN, so a NaN or infinity entering the
//! backward pass (a diverging Adam step, a poisoned activation) was
//! silently laundered into a finite gradient instead of propagating to
//! the loss where a training stack must surface it. No kernel here skips
//! any contribution; non-finite inputs propagate exactly as IEEE-754
//! arithmetic dictates (pinned by regression tests in
//! [`crate::matrix`]).
//!
//! # Selecting a mode
//!
//! The process-wide mode defaults to [`GemmMode::Blocked`], may be set
//! programmatically with [`set_mode`], and is seeded on first use from the
//! `AV_GEMM_MODE` environment variable (`blocked` | `tiled` | `naive`) —
//! which is how CI's kernel-equivalence smoke job runs the whole
//! oracle-training path against the naive reference build and diffs the
//! resulting artifacts byte-for-byte.

use crate::matrix::Matrix;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which GEMM implementation the [`Matrix`] product methods dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmMode {
    /// Register-blocked 4×4 micro-kernels (the default). Bit-identical to
    /// [`GemmMode::Naive`] for every input.
    Blocked,
    /// The `TiledGemm` configuration: register blocking plus
    /// [`K_PANEL`]-wide cache tiling of the reduction dimension. Faster on
    /// long reductions but **reorders FP accumulation** — results differ
    /// from the other modes at the last-ulp level, so content-addressed
    /// training artifacts are keyed separately under this mode.
    Tiled,
    /// Reference triple loops with strict index-order accumulation; the
    /// bit-level ground truth the blocked kernels are pinned against.
    Naive,
}

impl GemmMode {
    /// Whether this mode reorders floating-point accumulation relative to
    /// the strict index-order reference — i.e. whether its results can
    /// differ bit-for-bit from [`GemmMode::Naive`]. Consumers that
    /// content-address results by bit pattern (the oracle cache) must key
    /// reordering modes separately.
    pub fn reorders_fp(self) -> bool {
        matches!(self, GemmMode::Tiled)
    }
}

/// Reduction-dimension panel width of [`GemmMode::Tiled`]: 4 operand rows
/// × 256 f64 = 8 KiB per operand panel, so both panels plus the output
/// tile sit comfortably in a 32 KiB L1D.
pub const K_PANEL: usize = 256;

const MODE_UNSET: u8 = 0;
const MODE_BLOCKED: u8 = 1;
const MODE_TILED: u8 = 2;
const MODE_NAIVE: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn encode(mode: GemmMode) -> u8 {
    match mode {
        GemmMode::Blocked => MODE_BLOCKED,
        GemmMode::Tiled => MODE_TILED,
        GemmMode::Naive => MODE_NAIVE,
    }
}

fn mode_from_env() -> GemmMode {
    match std::env::var("AV_GEMM_MODE") {
        Ok(v) if v == "blocked" => GemmMode::Blocked,
        Ok(v) if v == "tiled" => GemmMode::Tiled,
        Ok(v) if v == "naive" => GemmMode::Naive,
        Ok(v) => {
            eprintln!(
                "[gemm] unknown AV_GEMM_MODE {v:?} (expected blocked|tiled|naive); using blocked"
            );
            GemmMode::Blocked
        }
        Err(_) => GemmMode::Blocked,
    }
}

/// The process-wide GEMM mode. Seeded from `AV_GEMM_MODE` on first call
/// (racing first readers all resolve the same environment value), defaults
/// to [`GemmMode::Blocked`].
pub fn mode() -> GemmMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_BLOCKED => GemmMode::Blocked,
        MODE_TILED => GemmMode::Tiled,
        MODE_NAIVE => GemmMode::Naive,
        _ => {
            let m = mode_from_env();
            MODE.store(encode(m), Ordering::Relaxed);
            m
        }
    }
}

/// Overrides the process-wide GEMM mode (e.g. a benchmark harness pinning
/// one implementation). Set this before any training or inference runs:
/// artifacts produced under a [reordering](GemmMode::reorders_fp) mode are
/// not bit-compatible with default-mode golden fixtures.
pub fn set_mode(mode: GemmMode) {
    MODE.store(encode(mode), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// nt: C (m×n) = A (m×k) × B (n×k)ᵀ — reduction over columns of both operands.
// ---------------------------------------------------------------------------

/// Reference `C = A × Bᵀ`: each output is one strictly index-ordered dot
/// product of a row of `A` (`m×k`) with a row of `B` (`n×k`). Overwrites
/// every element of `c` (`m×n`).
pub fn nt_naive(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, k: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        let crow = &mut c[i * n..i * n + n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..j * k + k];
            let mut s = 0.0;
            for (x, y) in arow.iter().zip(brow) {
                s += x * y;
            }
            *cv = s;
        }
    }
}

/// Register-blocked `C = A × Bᵀ`; bit-identical to [`nt_naive`] (each of
/// the 16 accumulators of a 4×4 output tile is a single strict-`k`-order
/// chain). Overwrites every element of `c`.
///
/// Large shapes first transpose `B` into a thread-local scratch and run
/// the `nn` micro-kernel over it: `nt`'s natural inner loop gathers from
/// four different `B` rows (which defeats vectorization), while the
/// transposed form makes the `j` dimension contiguous. Per output element
/// the contributions are still consumed in strictly ascending `k` order —
/// operand layout changes, the accumulation chain does not — so the fast
/// path stays bit-identical.
pub fn nt_blocked(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, k: usize) {
    if m >= 4 && n >= 4 && k >= 8 {
        with_transposed(b, n, k, |bt| nn_panel(a, bt, c, m, k, n, 0, k, true));
    } else {
        nt_panel(a, b, c, m, n, k, 0, k, true);
    }
}

/// Cache-tiled `C = A × Bᵀ`: the `k` reduction runs in `k_panel`-wide
/// panels, each panel's register-blocked partial sums accumulated into
/// `c`. With more than one panel this **reorders FP addition** (a panel
/// boundary splits each dot chain); with `k <= k_panel` it is bit-identical
/// to [`nt_blocked`]. Overwrites every element of `c`.
pub fn nt_tiled(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, k: usize, k_panel: usize) {
    debug_assert!(k_panel > 0, "k_panel must be positive");
    if k == 0 {
        c[..m * n].fill(0.0);
        return;
    }
    if m >= 4 && n >= 4 && k >= 8 {
        with_transposed(b, n, k, |bt| {
            let mut k0 = 0;
            while k0 < k {
                let kw = (k - k0).min(k_panel);
                nn_panel(a, bt, c, m, k, n, k0, kw, k0 == 0);
                k0 += kw;
            }
        });
        return;
    }
    let mut k0 = 0;
    while k0 < k {
        let kw = (k - k0).min(k_panel);
        nt_panel(a, b, c, m, n, k, k0, kw, k0 == 0);
        k0 += kw;
    }
}

thread_local! {
    /// Scratch for the `nt` fast path's transposed copy of `B`. Thread-local
    /// (not per-call) so steady-state training performs no heap allocation
    /// after the first minibatch, mirroring the batch engine's scratch
    /// pattern.
    static BT_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` over `B` (`rows×cols`, row-major) transposed into the
/// thread-local scratch (`cols×rows`, row-major).
fn with_transposed(b: &[f64], rows: usize, cols: usize, f: impl FnOnce(&[f64])) {
    BT_SCRATCH.with(|s| {
        let mut buf = s.borrow_mut();
        if buf.len() < rows * cols {
            buf.resize(rows * cols, 0.0);
        }
        let bt = &mut buf[..rows * cols];
        for (j, brow) in b.chunks_exact(cols).enumerate() {
            for (t, &v) in brow.iter().enumerate() {
                bt[t * rows + j] = v;
            }
        }
        f(bt);
    });
}

/// One reduction panel of the blocked `nt` kernel: columns `k0..k0+kw` of
/// both operands. `store` overwrites `c` (first panel), otherwise panel
/// sums accumulate into it.
#[allow(clippy::too_many_arguments)] // private micro-kernel; the dims are the signature
fn nt_panel(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    k0: usize,
    kw: usize,
    store: bool,
) {
    let mut i = 0;
    while i + 4 <= m {
        let a0 = &a[i * k + k0..i * k + k0 + kw];
        let a1 = &a[(i + 1) * k + k0..(i + 1) * k + k0 + kw];
        let a2 = &a[(i + 2) * k + k0..(i + 2) * k + k0 + kw];
        let a3 = &a[(i + 3) * k + k0..(i + 3) * k + k0 + kw];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k + k0..j * k + k0 + kw];
            let b1 = &b[(j + 1) * k + k0..(j + 1) * k + k0 + kw];
            let b2 = &b[(j + 2) * k + k0..(j + 2) * k + k0 + kw];
            let b3 = &b[(j + 3) * k + k0..(j + 3) * k + k0 + kw];
            let mut s = [[0.0f64; 4]; 4];
            for t in 0..kw {
                let x = [a0[t], a1[t], a2[t], a3[t]];
                let y = [b0[t], b1[t], b2[t], b3[t]];
                for (si, &xi) in s.iter_mut().zip(&x) {
                    for (sij, &yj) in si.iter_mut().zip(&y) {
                        *sij += xi * yj;
                    }
                }
            }
            for (ii, si) in s.iter().enumerate() {
                let crow = &mut c[(i + ii) * n + j..(i + ii) * n + j + 4];
                if store {
                    crow.copy_from_slice(si);
                } else {
                    for (cv, &sv) in crow.iter_mut().zip(si) {
                        *cv += sv;
                    }
                }
            }
            j += 4;
        }
        while j < n {
            let bj = &b[j * k + k0..j * k + k0 + kw];
            let mut s = [0.0f64; 4];
            for (t, &y) in bj.iter().enumerate() {
                s[0] += a0[t] * y;
                s[1] += a1[t] * y;
                s[2] += a2[t] * y;
                s[3] += a3[t] * y;
            }
            for (ii, &sv) in s.iter().enumerate() {
                let cv = &mut c[(i + ii) * n + j];
                if store {
                    *cv = sv;
                } else {
                    *cv += sv;
                }
            }
            j += 1;
        }
        i += 4;
    }
    while i < m {
        let ai = &a[i * k + k0..i * k + k0 + kw];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k + k0..j * k + k0 + kw];
            let b1 = &b[(j + 1) * k + k0..(j + 1) * k + k0 + kw];
            let b2 = &b[(j + 2) * k + k0..(j + 2) * k + k0 + kw];
            let b3 = &b[(j + 3) * k + k0..(j + 3) * k + k0 + kw];
            let mut s = [0.0f64; 4];
            for (t, &x) in ai.iter().enumerate() {
                s[0] += x * b0[t];
                s[1] += x * b1[t];
                s[2] += x * b2[t];
                s[3] += x * b3[t];
            }
            let crow = &mut c[i * n + j..i * n + j + 4];
            if store {
                crow.copy_from_slice(&s);
            } else {
                for (cv, &sv) in crow.iter_mut().zip(&s) {
                    *cv += sv;
                }
            }
            j += 4;
        }
        while j < n {
            let bj = &b[j * k + k0..j * k + k0 + kw];
            let mut s = 0.0;
            for (x, y) in ai.iter().zip(bj) {
                s += x * y;
            }
            let cv = &mut c[i * n + j];
            if store {
                *cv = s;
            } else {
                *cv += s;
            }
            j += 1;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// tn: C (m×n) = A (r×m)ᵀ × B (r×n) — reduction over the shared row count.
// ---------------------------------------------------------------------------

/// Reference `C = Aᵀ × B`: `A` is `r×m`, `B` is `r×n`, and every output
/// element accumulates its `r` contributions strictly in ascending row
/// order (no sparsity shortcut — zero entries still multiply, so NaN/∞
/// propagate). Overwrites every element of `c` (`m×n`).
pub fn tn_naive(a: &[f64], b: &[f64], c: &mut [f64], r: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), r * m);
    debug_assert_eq!(b.len(), r * n);
    debug_assert_eq!(c.len(), m * n);
    c[..m * n].fill(0.0);
    for t in 0..r {
        let arow = &a[t * m..t * m + m];
        let brow = &b[t * n..t * n + n];
        for (i, &x) in arow.iter().enumerate() {
            let crow = &mut c[i * n..i * n + n];
            for (cv, &y) in crow.iter_mut().zip(brow) {
                *cv += x * y;
            }
        }
    }
}

/// Register-blocked `C = Aᵀ × B`; bit-identical to [`tn_naive`] (each 4×4
/// output tile holds 16 strict-row-order accumulator chains). Overwrites
/// every element of `c`.
pub fn tn_blocked(a: &[f64], b: &[f64], c: &mut [f64], r: usize, m: usize, n: usize) {
    tn_panel(a, b, c, r, m, n, 0, r, true);
}

/// Cache-tiled `C = Aᵀ × B` with `r_panel`-row reduction panels; reorders
/// FP addition once `r > r_panel` (bit-identical to [`tn_blocked`]
/// otherwise). Overwrites every element of `c`.
pub fn tn_tiled(a: &[f64], b: &[f64], c: &mut [f64], r: usize, m: usize, n: usize, r_panel: usize) {
    debug_assert!(r_panel > 0, "r_panel must be positive");
    if r == 0 {
        c[..m * n].fill(0.0);
        return;
    }
    let mut r0 = 0;
    while r0 < r {
        let rw = (r - r0).min(r_panel);
        tn_panel(a, b, c, r, m, n, r0, rw, r0 == 0);
        r0 += rw;
    }
}

/// One reduction panel of the blocked `tn` kernel: rows `r0..r0+rw`.
#[allow(clippy::too_many_arguments)] // private micro-kernel; the dims are the signature
fn tn_panel(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    _r: usize,
    m: usize,
    n: usize,
    r0: usize,
    rw: usize,
    store: bool,
) {
    let mut i = 0;
    while i + 4 <= m {
        let mut j = 0;
        while j + 4 <= n {
            let mut s = [[0.0f64; 4]; 4];
            for t in r0..r0 + rw {
                let arow = &a[t * m + i..t * m + i + 4];
                let brow = &b[t * n + j..t * n + j + 4];
                for (si, &xi) in s.iter_mut().zip(arow) {
                    for (sij, &yj) in si.iter_mut().zip(brow) {
                        *sij += xi * yj;
                    }
                }
            }
            for (ii, si) in s.iter().enumerate() {
                let crow = &mut c[(i + ii) * n + j..(i + ii) * n + j + 4];
                if store {
                    crow.copy_from_slice(si);
                } else {
                    for (cv, &sv) in crow.iter_mut().zip(si) {
                        *cv += sv;
                    }
                }
            }
            j += 4;
        }
        while j < n {
            let mut s = [0.0f64; 4];
            for t in r0..r0 + rw {
                let arow = &a[t * m + i..t * m + i + 4];
                let y = b[t * n + j];
                for (sv, &xi) in s.iter_mut().zip(arow) {
                    *sv += xi * y;
                }
            }
            for (ii, &sv) in s.iter().enumerate() {
                let cv = &mut c[(i + ii) * n + j];
                if store {
                    *cv = sv;
                } else {
                    *cv += sv;
                }
            }
            j += 1;
        }
        i += 4;
    }
    while i < m {
        let mut j = 0;
        while j + 4 <= n {
            let mut s = [0.0f64; 4];
            for t in r0..r0 + rw {
                let x = a[t * m + i];
                let brow = &b[t * n + j..t * n + j + 4];
                for (sv, &yj) in s.iter_mut().zip(brow) {
                    *sv += x * yj;
                }
            }
            let crow = &mut c[i * n + j..i * n + j + 4];
            if store {
                crow.copy_from_slice(&s);
            } else {
                for (cv, &sv) in crow.iter_mut().zip(&s) {
                    *cv += sv;
                }
            }
            j += 4;
        }
        while j < n {
            let mut s = 0.0;
            for t in r0..r0 + rw {
                s += a[t * m + i] * b[t * n + j];
            }
            let cv = &mut c[i * n + j];
            if store {
                *cv = s;
            } else {
                *cv += s;
            }
            j += 1;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// nn: C (m×n) = A (m×k) × B (k×n) — reduction over A's columns / B's rows.
// ---------------------------------------------------------------------------

/// Reference `C = A × B`: every output element accumulates its `k`
/// contributions strictly in ascending inner-index order (no sparsity
/// shortcut). Overwrites every element of `c` (`m×n`).
pub fn nn_naive(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c[..m * n].fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for (t, &x) in arow.iter().enumerate() {
            let brow = &b[t * n..t * n + n];
            let crow = &mut c[i * n..i * n + n];
            for (cv, &y) in crow.iter_mut().zip(brow) {
                *cv += x * y;
            }
        }
    }
}

/// Register-blocked `C = A × B`; bit-identical to [`nn_naive`] (each 4×4
/// output tile holds 16 strict-`k`-order accumulator chains). Overwrites
/// every element of `c`.
pub fn nn_blocked(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    nn_panel(a, b, c, m, k, n, 0, k, true);
}

/// Cache-tiled `C = A × B` with `k_panel`-wide reduction panels; reorders
/// FP addition once `k > k_panel` (bit-identical to [`nn_blocked`]
/// otherwise). Overwrites every element of `c`.
pub fn nn_tiled(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize, k_panel: usize) {
    debug_assert!(k_panel > 0, "k_panel must be positive");
    if k == 0 {
        c[..m * n].fill(0.0);
        return;
    }
    let mut k0 = 0;
    while k0 < k {
        let kw = (k - k0).min(k_panel);
        nn_panel(a, b, c, m, k, n, k0, kw, k0 == 0);
        k0 += kw;
    }
}

/// One reduction panel of the blocked `nn` kernel: inner indices
/// `k0..k0+kw`.
#[allow(clippy::too_many_arguments)] // private micro-kernel; the dims are the signature
fn nn_panel(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    k0: usize,
    kw: usize,
    store: bool,
) {
    let mut i = 0;
    while i + 4 <= m {
        let a0 = &a[i * k + k0..i * k + k0 + kw];
        let a1 = &a[(i + 1) * k + k0..(i + 1) * k + k0 + kw];
        let a2 = &a[(i + 2) * k + k0..(i + 2) * k + k0 + kw];
        let a3 = &a[(i + 3) * k + k0..(i + 3) * k + k0 + kw];
        let mut j = 0;
        while j + 4 <= n {
            let mut s = [[0.0f64; 4]; 4];
            for t in 0..kw {
                let x = [a0[t], a1[t], a2[t], a3[t]];
                let brow = &b[(k0 + t) * n + j..(k0 + t) * n + j + 4];
                for (si, &xi) in s.iter_mut().zip(&x) {
                    for (sij, &yj) in si.iter_mut().zip(brow) {
                        *sij += xi * yj;
                    }
                }
            }
            for (ii, si) in s.iter().enumerate() {
                let crow = &mut c[(i + ii) * n + j..(i + ii) * n + j + 4];
                if store {
                    crow.copy_from_slice(si);
                } else {
                    for (cv, &sv) in crow.iter_mut().zip(si) {
                        *cv += sv;
                    }
                }
            }
            j += 4;
        }
        while j < n {
            let mut s = [0.0f64; 4];
            for t in 0..kw {
                let y = b[(k0 + t) * n + j];
                s[0] += a0[t] * y;
                s[1] += a1[t] * y;
                s[2] += a2[t] * y;
                s[3] += a3[t] * y;
            }
            for (ii, &sv) in s.iter().enumerate() {
                let cv = &mut c[(i + ii) * n + j];
                if store {
                    *cv = sv;
                } else {
                    *cv += sv;
                }
            }
            j += 1;
        }
        i += 4;
    }
    while i < m {
        let ai = &a[i * k + k0..i * k + k0 + kw];
        let mut j = 0;
        while j + 4 <= n {
            let mut s = [0.0f64; 4];
            for (t, &x) in ai.iter().enumerate() {
                let brow = &b[(k0 + t) * n + j..(k0 + t) * n + j + 4];
                for (sv, &yj) in s.iter_mut().zip(brow) {
                    *sv += x * yj;
                }
            }
            let crow = &mut c[i * n + j..i * n + j + 4];
            if store {
                crow.copy_from_slice(&s);
            } else {
                for (cv, &sv) in crow.iter_mut().zip(&s) {
                    *cv += sv;
                }
            }
            j += 4;
        }
        while j < n {
            let mut s = 0.0;
            for (t, &x) in ai.iter().enumerate() {
                s += x * b[(k0 + t) * n + j];
            }
            let cv = &mut c[i * n + j];
            if store {
                *cv = s;
            } else {
                *cv += s;
            }
            j += 1;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Mode dispatchers (what the Matrix product methods call).
// ---------------------------------------------------------------------------

pub(crate) fn nt(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, k: usize) {
    match mode() {
        GemmMode::Blocked => nt_blocked(a, b, c, m, n, k),
        GemmMode::Tiled => nt_tiled(a, b, c, m, n, k, K_PANEL),
        GemmMode::Naive => nt_naive(a, b, c, m, n, k),
    }
}

pub(crate) fn tn(a: &[f64], b: &[f64], c: &mut [f64], r: usize, m: usize, n: usize) {
    match mode() {
        GemmMode::Blocked => tn_blocked(a, b, c, r, m, n),
        GemmMode::Tiled => tn_tiled(a, b, c, r, m, n, K_PANEL),
        GemmMode::Naive => tn_naive(a, b, c, r, m, n),
    }
}

pub(crate) fn nn(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    match mode() {
        GemmMode::Blocked => nn_blocked(a, b, c, m, k, n),
        GemmMode::Tiled => nn_tiled(a, b, c, m, k, n, K_PANEL),
        GemmMode::Naive => nn_naive(a, b, c, m, k, n),
    }
}

// ---------------------------------------------------------------------------
// The batch engine's transposed layer kernel.
// ---------------------------------------------------------------------------

/// One dense layer over transposed activations: `x_t` is (in × N), `out_t`
/// becomes (out × N), both feature-major.
///
/// For each output unit `j`, the kernel runs a register block of up to 32
/// batch lanes: independent accumulators, each summing its own lane's
/// products strictly in `k` order — the independent lanes vectorize while
/// every lane's sum keeps the exact accumulation order of `Mlp::forward`.
/// Bias is added once per element after the full dot, then ReLU, matching
/// the per-example path.
///
/// This kernel is deliberately **mode-independent**: every [`GemmMode`]
/// leaves batched inference bit-identical to the scalar forward pass, so
/// campaign digests never depend on the training-kernel configuration.
pub fn layer_forward_t(w: &Matrix, bias: &[f64], relu: bool, x_t: &Matrix, out_t: &mut Matrix) {
    let n = x_t.cols();
    debug_assert_eq!(x_t.rows(), w.cols());
    out_t.reshape(w.rows(), n);
    // Lane-block widths: enough independent 8-wide vector chains to hide FMA
    // latency on wide SIMD hosts, with narrower blocks mopping up.
    macro_rules! lane_block {
        ($width:literal, $i:ident, $wrow:ident, $xflat:ident, $orow:ident, $b:ident) => {
            while $i + $width <= n {
                let mut acc = [0.0f64; $width];
                for (&wk, xrow) in $wrow.iter().zip($xflat.chunks_exact(n)) {
                    let lanes = &xrow[$i..$i + $width];
                    for (a, &x) in acc.iter_mut().zip(lanes) {
                        *a += x * wk;
                    }
                }
                for (o, a) in $orow[$i..$i + $width].iter_mut().zip(acc) {
                    let v = a + $b;
                    *o = if relu && v < 0.0 { 0.0 } else { v };
                }
                $i += $width;
            }
        };
    }
    debug_assert_eq!(bias.len(), w.rows());
    let xflat = x_t.as_slice();
    for (j, &b) in bias.iter().enumerate() {
        let wrow = w.row(j);
        let orow = out_t.row_mut(j);
        let mut i = 0;
        lane_block!(32, i, wrow, xflat, orow, b);
        lane_block!(16, i, wrow, xflat, orow, b);
        lane_block!(8, i, wrow, xflat, orow, b);
        lane_block!(4, i, wrow, xflat, orow, b);
        while i < n {
            let mut s = 0.0;
            for (&wk, xrow) in wrow.iter().zip(xflat.chunks_exact(n)) {
                s += xrow[i] * wk;
            }
            let v = s + b;
            orow[i] = if relu && v < 0.0 { 0.0 } else { v };
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_simkit::rng as simrng;
    use rand::Rng;
    use rand::SeedableRng;

    fn filled(len: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..len).map(|_| simrng::normal(rng, 0.0, 2.0)).collect()
    }

    /// Every (m, n, reduction) shape combination the paper's training loop
    /// hits, plus primes, degenerate zeros, and sizes straddling the tile
    /// boundaries.
    fn shapes() -> Vec<(usize, usize, usize)> {
        vec![
            (0, 0, 0),
            (0, 3, 2),
            (3, 0, 2),
            (3, 2, 0),
            (1, 1, 1),
            (4, 4, 4),
            (5, 7, 13),
            (16, 100, 5),
            (16, 1, 50),
            (9, 64, 3),
            (17, 23, 29),
            (32, 64, 64),
        ]
    }

    #[test]
    fn blocked_kernels_match_naive_to_the_bit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for (m, n, k) in shapes() {
            let a = filled(m * k, &mut rng);
            let b = filled(n * k, &mut rng);
            let mut want = vec![9e9; m * n];
            let mut got = vec![-9e9; m * n];
            nt_naive(&a, &b, &mut want, m, n, k);
            nt_blocked(&a, &b, &mut got, m, n, k);
            assert_bits(&want, &got, "nt", m, n, k);

            let a = filled(k * m, &mut rng);
            let b = filled(k * n, &mut rng);
            tn_naive(&a, &b, &mut want, k, m, n);
            tn_blocked(&a, &b, &mut got, k, m, n);
            assert_bits(&want, &got, "tn", m, n, k);

            let a = filled(m * k, &mut rng);
            let b = filled(k * n, &mut rng);
            nn_naive(&a, &b, &mut want, m, k, n);
            nn_blocked(&a, &b, &mut got, m, k, n);
            assert_bits(&want, &got, "nn", m, n, k);
        }
    }

    #[test]
    fn tiled_kernels_are_bit_identical_within_one_panel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (m, n, k) = (9, 6, 31);
        let a = filled(m * k, &mut rng);
        let b = filled(n * k, &mut rng);
        let mut want = vec![0.0; m * n];
        let mut got = vec![0.0; m * n];
        nt_blocked(&a, &b, &mut want, m, n, k);
        nt_tiled(&a, &b, &mut got, m, n, k, K_PANEL);
        assert_bits(&want, &got, "nt_tiled(one panel)", m, n, k);
    }

    #[test]
    fn tiled_kernels_reorder_but_stay_close_across_panels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let (m, n, k) = (7, 5, 103);
        let a = filled(m * k, &mut rng);
        let b = filled(n * k, &mut rng);
        let mut want = vec![0.0; m * n];
        let mut got = vec![0.0; m * n];
        nt_naive(&a, &b, &mut want, m, n, k);
        // A tiny panel forces many panel boundaries (the reordering case).
        nt_tiled(&a, &b, &mut got, m, n, k, 8);
        for (w, g) in want.iter().zip(&got) {
            let err = (w - g).abs() / w.abs().max(1.0);
            assert!(err < 1e-12, "tiled drifted: {w} vs {g}");
        }

        let a = filled(k * m, &mut rng);
        let b = filled(k * n, &mut rng);
        tn_naive(&a, &b, &mut want, k, m, n);
        tn_tiled(&a, &b, &mut got, k, m, n, 8);
        for (w, g) in want.iter().zip(&got) {
            let err = (w - g).abs() / w.abs().max(1.0);
            assert!(err < 1e-12, "tn tiled drifted: {w} vs {g}");
        }

        let a = filled(m * k, &mut rng);
        let b = filled(k * n, &mut rng);
        nn_naive(&a, &b, &mut want, m, k, n);
        nn_tiled(&a, &b, &mut got, m, k, n, 8);
        for (w, g) in want.iter().zip(&got) {
            let err = (w - g).abs() / w.abs().max(1.0);
            assert!(err < 1e-12, "nn tiled drifted: {w} vs {g}");
        }
    }

    #[test]
    fn kernels_overwrite_stale_output() {
        // k = 0 must still clear the output buffer in every implementation.
        for f in [nt_naive, nt_blocked] {
            let mut c = vec![7.0; 6];
            f(&[], &[], &mut c, 2, 3, 0);
            assert_eq!(c, vec![0.0; 6]);
        }
        let mut c = vec![7.0; 6];
        nt_tiled(&[], &[], &mut c, 2, 3, 0, K_PANEL);
        assert_eq!(c, vec![0.0; 6]);
        let mut c = vec![7.0; 6];
        tn_tiled(&[], &[], &mut c, 0, 2, 3, K_PANEL);
        assert_eq!(c, vec![0.0; 6]);
        let mut c = vec![7.0; 6];
        nn_tiled(&[], &[], &mut c, 2, 0, 3, K_PANEL);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn mode_reorders_fp_only_for_tiled() {
        assert!(!GemmMode::Blocked.reorders_fp());
        assert!(!GemmMode::Naive.reorders_fp());
        assert!(GemmMode::Tiled.reorders_fp());
    }

    fn assert_bits(want: &[f64], got: &[f64], kernel: &str, m: usize, n: usize, k: usize) {
        assert_eq!(want.len(), got.len());
        for (idx, (w, g)) in want.iter().zip(got).enumerate() {
            assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "{kernel} {m}x{n} (reduction {k}) diverged at flat index {idx}: {w} vs {g}"
            );
        }
    }
}
