//! The shared GEMM micro-kernel layer behind every matrix product in the
//! crate.
//!
//! Training a safety-hijacker oracle is GEMM-bound: the minibatch forward
//! pass (`x · Wᵀ`), the weight gradients (`δᵀ · x`), and the backpropagated
//! deltas (`δ · W`) each run one of the three kernel families here on every
//! minibatch of every epoch, and the batch engine's cross-session inference
//! rides the same layer through [`layer_forward_t`]. All callers —
//! [`Matrix::matmul_into`], [`Matrix::t_matmul_into`],
//! [`Matrix::matmul_t_into`], `Mlp::forward_train_into`/`backward_into`,
//! and `Mlp::forward_batch_into` — resolve to the kernels in this module,
//! so there is exactly one place where accumulation order (and therefore
//! bit-level reproducibility) is decided.
//!
//! # Kernel families
//!
//! | family | computes | reduction | used by |
//! |---|---|---|---|
//! | `nt` | `C = A × Bᵀ` | over columns (`k`) | training/batch forward |
//! | `tn` | `C = Aᵀ × B` | over rows (`r`) | weight gradients |
//! | `nn` | `C = A × B` | over inner dim (`k`) | backpropagated deltas |
//!
//! Each family ships three implementations:
//!
//! - **naive** — reference triple loops. Every output element accumulates
//!   its contributions strictly in ascending reduction-index order from a
//!   `+0.0` start. This is the bit-level ground truth the other kernels
//!   are pinned against (and what `AV_GEMM_MODE=naive` routes through).
//! - **blocked** (default) — register-blocked micro-kernels built from one
//!   const-generic `R×C` tile (up to 4×4): an `R×C` block of outputs is
//!   held in `R·C` register accumulators while the reduction loop streams
//!   over both operands once. Every accumulator still sums *its*
//!   contributions strictly in ascending index order, so the speedup comes
//!   purely from instruction-level parallelism (up to 16 independent
//!   FP-add chains hide the ~4-cycle add latency) and from loading each
//!   operand element once per tile edge instead of once per output —
//!   **bit-identical** to naive on every non-NaN output (finite values,
//!   signed zeros, and infinities), with NaNs appearing in exactly the
//!   same places for non-finite inputs. NaN *payloads* are the one thing
//!   left unpinned: IEEE-754 leaves payload propagation
//!   implementation-defined and LLVM may commute add/mul operands, so two
//!   codegens of the same chain can surface different payload bits.
//!   Remainder rows/columns (shapes that are not multiples of 4 — which
//!   the paper's 5/100/50/1 layer sizes hit on every layer) run as
//!   narrower `R×C` tiles of the *same* generic micro-kernel, so even the
//!   edge outputs keep several independent chains in flight instead of
//!   finishing one dot product at a time. The `nt` family additionally
//!   transposes `B` into a thread-local scratch on large shapes so the
//!   inner loop vectorizes. (Pinned by unit tests and
//!   `tests/gemm_props.rs`.)
//! - **tiled** — the `TiledGemm` configuration ([`GemmMode::Tiled`]):
//!   additionally blocks the reduction dimension into [`K_PANEL`]-wide
//!   cache panels so each operand panel stays L1-resident across the whole
//!   output tile sweep. Panel partial sums are accumulated into `C`
//!   between panels, which **reorders floating-point addition** whenever
//!   the reduction dimension exceeds one panel — results are no longer
//!   bit-identical to naive (they agree to normal FP-summation error).
//!   Because trained-oracle artifacts are content-addressed by bit
//!   pattern, `av-experiments` keys tiled-mode artifacts separately; the
//!   default mode is untiled exactly so that golden fixtures and cache
//!   keys stay valid.
//!
//! # Fused epilogues
//!
//! The training pipeline historically ran the per-layer bias add, ReLU,
//! inverted-dropout mask apply, and the output layer's MSE diff as
//! separate full-matrix passes after each GEMM. Those are pure
//! *per-element* transforms of a completed output, so they can run inside
//! the kernel's store path — after an output element's strict-order
//! accumulator chain completes, before the register result is written back
//! — without reassociating a single FP add. [`nt_fused`] takes an
//! [`Epilogue`] and applies it exactly there in blocked mode; under the
//! naive (and tiled) modes it runs the plain kernel followed by a separate
//! row-major [`epilogue_pass`], which computes the identical per-element
//! expression — so `AV_GEMM_MODE=naive` stays the end-to-end bit-level
//! reference for the *fused* pipeline too, and CI's kernel-equivalence
//! smoke keeps proving the claim without modification.
//!
//! # No sparsity shortcut
//!
//! The pre-PR-8 `nn`/`tn` loops skipped work when a left-hand element
//! compared equal to `0.0`. That shortcut is **not IEEE-transparent**:
//! `0.0 × NaN` and `0.0 × ∞` are NaN, so a NaN or infinity entering the
//! backward pass (a diverging Adam step, a poisoned activation) was
//! silently laundered into a finite gradient instead of propagating to
//! the loss where a training stack must surface it. No kernel here skips
//! any contribution; non-finite inputs propagate exactly as IEEE-754
//! arithmetic dictates (pinned by regression tests in
//! [`crate::matrix`]).
//!
//! # Selecting a mode
//!
//! The process-wide mode defaults to [`GemmMode::Blocked`], may be set
//! programmatically with [`set_mode`], and is seeded on first use from the
//! `AV_GEMM_MODE` environment variable (`blocked` | `tiled` | `naive`) —
//! which is how CI's kernel-equivalence smoke job runs the whole
//! oracle-training path against the naive reference build and diffs the
//! resulting artifacts byte-for-byte.

use crate::matrix::Matrix;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which GEMM implementation the [`Matrix`] product methods dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmMode {
    /// Register-blocked micro-kernels (the default). Bit-identical to
    /// [`GemmMode::Naive`] for every input.
    Blocked,
    /// The `TiledGemm` configuration: register blocking plus
    /// [`K_PANEL`]-wide cache tiling of the reduction dimension. Faster on
    /// long reductions but **reorders FP accumulation** — results differ
    /// from the other modes at the last-ulp level, so content-addressed
    /// training artifacts are keyed separately under this mode.
    Tiled,
    /// Reference triple loops with strict index-order accumulation; the
    /// bit-level ground truth the blocked kernels are pinned against.
    Naive,
}

impl GemmMode {
    /// Whether this mode reorders floating-point accumulation relative to
    /// the strict index-order reference — i.e. whether its results can
    /// differ bit-for-bit from [`GemmMode::Naive`]. Consumers that
    /// content-address results by bit pattern (the oracle cache) must key
    /// reordering modes separately.
    pub fn reorders_fp(self) -> bool {
        matches!(self, GemmMode::Tiled)
    }
}

/// Reduction-dimension panel width of [`GemmMode::Tiled`]: 4 operand rows
/// × 256 f64 = 8 KiB per operand panel, so both panels plus the output
/// tile sit comfortably in a 32 KiB L1D.
pub const K_PANEL: usize = 256;

const MODE_UNSET: u8 = 0;
const MODE_BLOCKED: u8 = 1;
const MODE_TILED: u8 = 2;
const MODE_NAIVE: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn encode(mode: GemmMode) -> u8 {
    match mode {
        GemmMode::Blocked => MODE_BLOCKED,
        GemmMode::Tiled => MODE_TILED,
        GemmMode::Naive => MODE_NAIVE,
    }
}

fn mode_from_env() -> GemmMode {
    match std::env::var("AV_GEMM_MODE") {
        Ok(v) if v == "blocked" => GemmMode::Blocked,
        Ok(v) if v == "tiled" => GemmMode::Tiled,
        Ok(v) if v == "naive" => GemmMode::Naive,
        Ok(v) => {
            eprintln!(
                "[gemm] unknown AV_GEMM_MODE {v:?} (expected blocked|tiled|naive); using blocked"
            );
            GemmMode::Blocked
        }
        Err(_) => GemmMode::Blocked,
    }
}

/// The process-wide GEMM mode. Seeded from `AV_GEMM_MODE` on first call
/// (racing first readers all resolve the same environment value), defaults
/// to [`GemmMode::Blocked`].
pub fn mode() -> GemmMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_BLOCKED => GemmMode::Blocked,
        MODE_TILED => GemmMode::Tiled,
        MODE_NAIVE => GemmMode::Naive,
        _ => {
            let m = mode_from_env();
            MODE.store(encode(m), Ordering::Relaxed);
            m
        }
    }
}

/// Overrides the process-wide GEMM mode (e.g. a benchmark harness pinning
/// one implementation). Set this before any training or inference runs:
/// artifacts produced under a [reordering](GemmMode::reorders_fp) mode are
/// not bit-compatible with default-mode golden fixtures.
pub fn set_mode(mode: GemmMode) {
    MODE.store(encode(mode), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Epilogues: per-element transforms fused into the kernel store path.
// ---------------------------------------------------------------------------

/// A per-element transform applied to output element `(i, j)` *after* its
/// strict-order accumulator chain completes, as the register result is
/// stored. Because an epilogue sees only one finished element at a time, a
/// fused kernel and "plain kernel + separate [`epilogue_pass`]" compute
/// the identical per-element expression — fusion changes memory traffic,
/// never bits.
///
/// `apply` takes `&mut self` so an epilogue may carry *state* — the fused
/// training step's optimizer epilogue updates weights and Adam moments as
/// each gradient element completes. A stateful epilogue is visited exactly
/// once per output element, but in an implementation-defined *order*
/// (tile order under the blocked kernels, row-major under
/// [`epilogue_pass`]); state mutations must therefore be per-element
/// independent for the fused/unfused equivalence to hold.
pub trait Epilogue {
    /// Transforms the completed accumulator `s` of output element `(i, j)`.
    fn apply(&mut self, i: usize, j: usize, s: f64) -> f64;

    /// Transforms a contiguous run of completed elements in row `i`,
    /// starting at column `j` — the granularity the kernels actually store
    /// at (one tile row at a time, the full matrix row under
    /// [`epilogue_pass`]). The default forwards to [`Epilogue::apply`] per
    /// element; stateful epilogues whose per-element work is
    /// division-heavy (the fused optimizer) override it so the run
    /// vectorizes instead of issuing one scalar divide per element.
    /// Overrides must stay per-element equivalent to `apply` — the
    /// fused/unfused equivalence contract is defined element-wise.
    #[inline(always)]
    fn apply_row(&mut self, i: usize, j: usize, vals: &mut [f64]) {
        for (jj, v) in vals.iter_mut().enumerate() {
            *v = self.apply(i, j + jj, *v);
        }
    }
}

/// The identity epilogue: a plain GEMM store.
#[derive(Debug, Clone, Copy)]
pub struct NoEpilogue;

impl Epilogue for NoEpilogue {
    #[inline(always)]
    fn apply(&mut self, _i: usize, _j: usize, s: f64) -> f64 {
        s
    }

    #[inline(always)]
    fn apply_row(&mut self, _i: usize, _j: usize, _vals: &mut [f64]) {}
}

/// The dense-layer epilogue: bias add, then optional ReLU, then optional
/// inverted-dropout mask apply — the exact per-element op chain the
/// historical separate full-matrix passes ran, in the same order.
///
/// The mask (row-major `m×n`, same shape as the output) holds `1/keep` for
/// kept units and `0.0` for dropped ones; dropped units are *assigned*
/// zero (not multiplied), so a NaN activation that dropout silences stays
/// silenced exactly as the unfused pipeline left it.
#[derive(Debug, Clone, Copy)]
pub struct LayerEpilogue<'a> {
    bias: &'a [f64],
    relu: bool,
    mask: Option<&'a [f64]>,
    n: usize,
}

impl<'a> LayerEpilogue<'a> {
    /// Builds the epilogue for an `m×n` layer output: `bias` has length
    /// `n`; `mask`, when present, is the row-major `m×n` scaled keep-mask.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != n`.
    pub fn new(bias: &'a [f64], relu: bool, mask: Option<&'a [f64]>, n: usize) -> Self {
        assert_eq!(bias.len(), n, "bias length must match output columns");
        LayerEpilogue {
            bias,
            relu,
            mask,
            n,
        }
    }
}

impl Epilogue for LayerEpilogue<'_> {
    #[inline(always)]
    fn apply(&mut self, i: usize, j: usize, s: f64) -> f64 {
        let mut v = s + self.bias[j];
        if self.relu && v < 0.0 {
            v = 0.0;
        }
        if let Some(mask) = self.mask {
            let m = mask[i * self.n + j];
            v = if m == 0.0 { 0.0 } else { v * m };
        }
        v
    }
}

/// The output-layer MSE epilogue: bias add, then subtract the target —
/// producing `diff = (Σ + b) − y` directly, the quantity the training
/// loop's loss and delta computations both start from.
#[derive(Debug, Clone, Copy)]
pub struct BiasDiffEpilogue<'a> {
    bias: &'a [f64],
    targets: &'a [f64],
    n: usize,
}

impl<'a> BiasDiffEpilogue<'a> {
    /// Builds the epilogue for an `m×n` output layer: `bias` has length
    /// `n`, `targets` is the row-major `m×n` target batch.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != n`.
    pub fn new(bias: &'a [f64], targets: &'a [f64], n: usize) -> Self {
        assert_eq!(bias.len(), n, "bias length must match output columns");
        BiasDiffEpilogue { bias, targets, n }
    }
}

impl Epilogue for BiasDiffEpilogue<'_> {
    #[inline(always)]
    fn apply(&mut self, i: usize, j: usize, s: f64) -> f64 {
        (s + self.bias[j]) - self.targets[i * self.n + j]
    }
}

/// Applies `epi` to every element of a fully-accumulated `m×n` output, in
/// row-major order — the unfused reference the naive and tiled modes use
/// (per-element, so application order cannot change any result bit).
pub fn epilogue_pass<E: Epilogue>(c: &mut [f64], m: usize, n: usize, epi: &mut E) {
    if n == 0 {
        return;
    }
    for (i, crow) in c[..m * n].chunks_exact_mut(n).enumerate() {
        epi.apply_row(i, 0, crow);
    }
}

// ---------------------------------------------------------------------------
// The generic R×C register tile (R, C ≤ 4) all three families build on.
// ---------------------------------------------------------------------------

/// Writes a finished `R×C` accumulator tile into `c` at `(i, j)`. `store`
/// overwrites through the epilogue (the single-panel / final-result path);
/// otherwise panel partial sums accumulate and the epilogue is *not*
/// applied (multi-panel tiled callers run [`epilogue_pass`] afterwards).
#[inline(always)]
fn store_tile<const R: usize, const C: usize, E: Epilogue>(
    s: &[[f64; C]; R],
    c: &mut [f64],
    n: usize,
    i: usize,
    j: usize,
    store: bool,
    epi: &mut E,
) {
    for (ii, srow) in s.iter().enumerate() {
        let crow = &mut c[(i + ii) * n + j..(i + ii) * n + j + C];
        if store {
            crow.copy_from_slice(srow);
            epi.apply_row(i + ii, j, crow);
        } else {
            for (cv, &sv) in crow.iter_mut().zip(srow) {
                *cv += sv;
            }
        }
    }
}

/// Dispatches a remainder width (1..=3) to the matching const-width call.
/// `$tile` is invoked as `$tile!(W)` with the literal width.
macro_rules! remainder {
    ($rem:expr, $tile:ident) => {
        match $rem {
            1 => $tile!(1),
            2 => $tile!(2),
            3 => $tile!(3),
            _ => {}
        }
    };
}

// ---------------------------------------------------------------------------
// nt: C (m×n) = A (m×k) × B (n×k)ᵀ — reduction over columns of both operands.
// ---------------------------------------------------------------------------

/// Reference `C = A × Bᵀ`: each output is one strictly index-ordered dot
/// product of a row of `A` (`m×k`) with a row of `B` (`n×k`). Overwrites
/// every element of `c` (`m×n`).
pub fn nt_naive(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, k: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        let crow = &mut c[i * n..i * n + n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..j * k + k];
            let mut s = 0.0;
            for (x, y) in arow.iter().zip(brow) {
                s += x * y;
            }
            *cv = s;
        }
    }
}

/// Register-blocked `C = A × Bᵀ`; bit-identical to [`nt_naive`] (each
/// accumulator of an `R×C` output tile is a single strict-`k`-order
/// chain). Overwrites every element of `c`.
///
/// Large shapes first transpose `B` into a thread-local scratch and run
/// the `nn` micro-kernel over it: `nt`'s natural inner loop gathers from
/// four different `B` rows (which defeats vectorization), while the
/// transposed form makes the `j` dimension contiguous. Per output element
/// the contributions are still consumed in strictly ascending `k` order —
/// operand layout changes, the accumulation chain does not — so the fast
/// path stays bit-identical.
pub fn nt_blocked(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, k: usize) {
    if m >= 4 && n >= 4 && k >= 1 {
        with_transposed(b, n, k, |bt| {
            nn_panel(a, bt, c, m, k, n, 0, k, true, &mut NoEpilogue)
        });
    } else {
        nt_panel(a, b, c, m, n, k, 0, k, true, &mut NoEpilogue);
    }
}

/// Fused `C = A × Bᵀ` + per-element epilogue — the training-forward entry
/// point ([`crate::mlp`] routes every layer of the fused pipeline here).
///
/// Dispatches on the process-wide [`mode`]: **blocked** applies `epi` in
/// the micro-kernel store path, after each output element's strict-order
/// chain completes (no separate pass, no FP reassociation); **naive** and
/// **tiled** run the plain kernel followed by a row-major
/// [`epilogue_pass`]. Both routes compute the identical per-element
/// expression, so blocked stays bit-identical to naive end-to-end and the
/// CI kernel-equivalence smoke covers the fused pipeline unmodified.
pub fn nt_fused<E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    epi: &mut E,
) {
    nt_fused_bt(a, b, None, c, m, n, k, epi);
}

/// [`nt_fused`] with an optional caller-provided transposed copy of `B`
/// (`bt`, `k×n` row-major, bit-equal to `Bᵀ`). In blocked mode the kernel
/// runs directly over `bt`, skipping the per-call transpose into the
/// thread-local scratch — this is how the fused training step reuses the
/// persistent `Wᵀ` shadow its optimizer epilogue maintains. The naive and
/// tiled modes ignore `bt` and read `b`, so the mode-equivalence contract
/// is unchanged provided `bt` matches `Bᵀ` bit-for-bit (per-element
/// operand *values* are what the accumulation order is defined over, not
/// which buffer they stream from).
#[allow(clippy::too_many_arguments)]
pub fn nt_fused_bt<E: Epilogue>(
    a: &[f64],
    b: &[f64],
    bt: Option<&[f64]>,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    epi: &mut E,
) {
    match mode() {
        GemmMode::Blocked => match bt {
            Some(bt) => {
                debug_assert_eq!(bt.len(), n * k);
                nn_panel(a, bt, c, m, k, n, 0, k, true, epi);
            }
            None if m >= 4 && n >= 4 && k >= 1 => {
                with_transposed(b, n, k, |bt| nn_panel(a, bt, c, m, k, n, 0, k, true, epi));
            }
            None => nt_panel(a, b, c, m, n, k, 0, k, true, epi),
        },
        GemmMode::Tiled => {
            nt_tiled(a, b, c, m, n, k, K_PANEL);
            epilogue_pass(c, m, n, epi);
        }
        GemmMode::Naive => {
            nt_naive(a, b, c, m, n, k);
            epilogue_pass(c, m, n, epi);
        }
    }
}

/// Fused `C = Aᵀ × B` + per-element epilogue — the weight-gradient entry
/// point of the fused training step (the optimizer epilogue rides here:
/// each completed `dW` element's Adam divisions issue while the next
/// tile's multiply/add stream keeps the FP ports busy). Mode dispatch
/// mirrors [`nt_fused`]: blocked applies `epi` in the store path, naive
/// and tiled run the plain kernel plus a row-major [`epilogue_pass`].
pub fn tn_fused<E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    r: usize,
    m: usize,
    n: usize,
    epi: &mut E,
) {
    match mode() {
        GemmMode::Blocked => tn_panel(a, b, c, m, n, 0, r, true, epi),
        GemmMode::Tiled => {
            tn_tiled(a, b, c, r, m, n, K_PANEL);
            epilogue_pass(c, m, n, epi);
        }
        GemmMode::Naive => {
            tn_naive(a, b, c, r, m, n);
            epilogue_pass(c, m, n, epi);
        }
    }
}

/// Fused `C = A × B` + per-element epilogue — the backpropagated-delta
/// entry point of the fused training step (the ReLU/dropout backward pass
/// rides here). Mode dispatch mirrors [`nt_fused`].
pub fn nn_fused<E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    epi: &mut E,
) {
    match mode() {
        GemmMode::Blocked => nn_panel(a, b, c, m, k, n, 0, k, true, epi),
        GemmMode::Tiled => {
            nn_tiled(a, b, c, m, k, n, K_PANEL);
            epilogue_pass(c, m, n, epi);
        }
        GemmMode::Naive => {
            nn_naive(a, b, c, m, k, n);
            epilogue_pass(c, m, n, epi);
        }
    }
}

/// Cache-tiled `C = A × Bᵀ`: the `k` reduction runs in `k_panel`-wide
/// panels, each panel's register-blocked partial sums accumulated into
/// `c`. With more than one panel this **reorders FP addition** (a panel
/// boundary splits each dot chain); with `k <= k_panel` it is bit-identical
/// to [`nt_blocked`]. Overwrites every element of `c`.
pub fn nt_tiled(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, k: usize, k_panel: usize) {
    debug_assert!(k_panel > 0, "k_panel must be positive");
    if k == 0 {
        c[..m * n].fill(0.0);
        return;
    }
    if m >= 4 && n >= 4 {
        with_transposed(b, n, k, |bt| {
            let mut k0 = 0;
            while k0 < k {
                let kw = (k - k0).min(k_panel);
                nn_panel(a, bt, c, m, k, n, k0, kw, k0 == 0, &mut NoEpilogue);
                k0 += kw;
            }
        });
        return;
    }
    let mut k0 = 0;
    while k0 < k {
        let kw = (k - k0).min(k_panel);
        nt_panel(a, b, c, m, n, k, k0, kw, k0 == 0, &mut NoEpilogue);
        k0 += kw;
    }
}

thread_local! {
    /// Scratch for the `nt` fast path's transposed copy of `B`. Thread-local
    /// (not per-call) so steady-state training performs no heap allocation
    /// after the first minibatch, mirroring the batch engine's scratch
    /// pattern.
    static BT_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` over `B` (`rows×cols`, row-major) transposed into the
/// thread-local scratch (`cols×rows`, row-major).
fn with_transposed(b: &[f64], rows: usize, cols: usize, f: impl FnOnce(&[f64])) {
    BT_SCRATCH.with(|s| {
        let mut buf = s.borrow_mut();
        if buf.len() < rows * cols {
            buf.resize(rows * cols, 0.0);
        }
        let bt = &mut buf[..rows * cols];
        // Cache-blocked transpose: 32×32 element blocks keep both the
        // strided reads and the contiguous writes L1-resident (a naive
        // row-by-row scatter costs as much as the GEMM it feeds on the
        // paper's 100×100 layers).
        const TB: usize = 32;
        let mut t0 = 0;
        while t0 < cols {
            let te = (t0 + TB).min(cols);
            let mut j0 = 0;
            while j0 < rows {
                let je = (j0 + TB).min(rows);
                for t in t0..te {
                    let btrow = &mut bt[t * rows + j0..t * rows + je];
                    for (dst, src) in btrow.iter_mut().zip(j0..je) {
                        *dst = b[src * cols + t];
                    }
                }
                j0 = je;
            }
            t0 = te;
        }
        f(bt);
    });
}

/// One `R×C` tile of the `nt` kernel: both operand tiles are row-major
/// with `k`-contiguous rows, so the reduction streams `R + C` rows in
/// lockstep. Each of the `R·C` accumulators is one strict-`t`-order chain.
#[allow(clippy::too_many_arguments)] // private micro-kernel; the dims are the signature
#[inline(always)]
fn nt_tile<const R: usize, const C: usize, E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    n: usize,
    k: usize,
    i: usize,
    j: usize,
    k0: usize,
    kw: usize,
    store: bool,
    epi: &mut E,
) {
    let ar: [&[f64]; R] = std::array::from_fn(|rr| &a[(i + rr) * k + k0..(i + rr) * k + k0 + kw]);
    let br: [&[f64]; C] = std::array::from_fn(|cc| &b[(j + cc) * k + k0..(j + cc) * k + k0 + kw]);
    let mut s = [[0.0f64; C]; R];
    for t in 0..kw {
        let y: [f64; C] = std::array::from_fn(|cc| br[cc][t]);
        for (srow, arow) in s.iter_mut().zip(&ar) {
            let x = arow[t];
            for (sv, &yv) in srow.iter_mut().zip(&y) {
                *sv += x * yv;
            }
        }
    }
    store_tile(&s, c, n, i, j, store, epi);
}

/// One `R`-row band of the `nt` kernel: full-width 4-column tiles, then
/// one narrower remainder tile covering the trailing `n % 4` outputs
/// together (independent chains — never one dot product at a time).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn nt_band<const R: usize, E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    n: usize,
    k: usize,
    i: usize,
    k0: usize,
    kw: usize,
    store: bool,
    epi: &mut E,
) {
    let mut j = 0;
    while j + 8 <= n {
        nt_tile::<R, 8, E>(a, b, c, n, k, i, j, k0, kw, store, epi);
        j += 8;
    }
    if j + 4 <= n {
        nt_tile::<R, 4, E>(a, b, c, n, k, i, j, k0, kw, store, epi);
        j += 4;
    }
    macro_rules! tail {
        ($w:literal) => {
            nt_tile::<R, $w, E>(a, b, c, n, k, i, j, k0, kw, store, epi)
        };
    }
    remainder!(n - j, tail);
}

/// One reduction panel of the blocked `nt` kernel: columns `k0..k0+kw` of
/// both operands. `store` overwrites `c` through the epilogue (first and
/// only panel of the fused path), otherwise panel sums accumulate into it.
#[allow(clippy::too_many_arguments)]
fn nt_panel<E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    k0: usize,
    kw: usize,
    store: bool,
    epi: &mut E,
) {
    let mut i = 0;
    while i + 4 <= m {
        nt_band::<4, E>(a, b, c, n, k, i, k0, kw, store, epi);
        i += 4;
    }
    macro_rules! tail {
        ($r:literal) => {
            nt_band::<$r, E>(a, b, c, n, k, i, k0, kw, store, epi)
        };
    }
    remainder!(m - i, tail);
}

// ---------------------------------------------------------------------------
// tn: C (m×n) = A (r×m)ᵀ × B (r×n) — reduction over the shared row count.
// ---------------------------------------------------------------------------

/// Reference `C = Aᵀ × B`: `A` is `r×m`, `B` is `r×n`, and every output
/// element accumulates its `r` contributions strictly in ascending row
/// order (no sparsity shortcut — zero entries still multiply, so NaN/∞
/// propagate). Overwrites every element of `c` (`m×n`).
pub fn tn_naive(a: &[f64], b: &[f64], c: &mut [f64], r: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), r * m);
    debug_assert_eq!(b.len(), r * n);
    debug_assert_eq!(c.len(), m * n);
    c[..m * n].fill(0.0);
    for t in 0..r {
        let arow = &a[t * m..t * m + m];
        let brow = &b[t * n..t * n + n];
        for (i, &x) in arow.iter().enumerate() {
            let crow = &mut c[i * n..i * n + n];
            for (cv, &y) in crow.iter_mut().zip(brow) {
                *cv += x * y;
            }
        }
    }
}

/// Register-blocked `C = Aᵀ × B`; bit-identical to [`tn_naive`] (each
/// `R×C` output tile holds `R·C` strict-row-order accumulator chains).
/// Overwrites every element of `c`.
pub fn tn_blocked(a: &[f64], b: &[f64], c: &mut [f64], r: usize, m: usize, n: usize) {
    tn_panel(a, b, c, m, n, 0, r, true, &mut NoEpilogue);
}

/// Cache-tiled `C = Aᵀ × B` with `r_panel`-row reduction panels; reorders
/// FP addition once `r > r_panel` (bit-identical to [`tn_blocked`]
/// otherwise). Overwrites every element of `c`.
pub fn tn_tiled(a: &[f64], b: &[f64], c: &mut [f64], r: usize, m: usize, n: usize, r_panel: usize) {
    debug_assert!(r_panel > 0, "r_panel must be positive");
    if r == 0 {
        c[..m * n].fill(0.0);
        return;
    }
    let mut r0 = 0;
    while r0 < r {
        let rw = (r - r0).min(r_panel);
        tn_panel(a, b, c, m, n, r0, rw, r0 == 0, &mut NoEpilogue);
        r0 += rw;
    }
}

/// One `R×C` tile of the `tn` kernel: the reduction walks rows of both
/// operands (strides `m` and `n`), loading `R + C` contiguous elements per
/// step.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn tn_tile<const R: usize, const C: usize, E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    i: usize,
    j: usize,
    r0: usize,
    rw: usize,
    store: bool,
    epi: &mut E,
) {
    let mut s = [[0.0f64; C]; R];
    for t in r0..r0 + rw {
        let arow = &a[t * m + i..t * m + i + R];
        let brow = &b[t * n + j..t * n + j + C];
        for (srow, &x) in s.iter_mut().zip(arow) {
            for (sv, &y) in srow.iter_mut().zip(brow) {
                *sv += x * y;
            }
        }
    }
    store_tile(&s, c, n, i, j, store, epi);
}

/// One `R`-row band of the `tn` kernel (see [`nt_band`]).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn tn_band<const R: usize, E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    i: usize,
    r0: usize,
    rw: usize,
    store: bool,
    epi: &mut E,
) {
    let mut j = 0;
    while j + 8 <= n {
        tn_tile::<R, 8, E>(a, b, c, m, n, i, j, r0, rw, store, epi);
        j += 8;
    }
    if j + 4 <= n {
        tn_tile::<R, 4, E>(a, b, c, m, n, i, j, r0, rw, store, epi);
        j += 4;
    }
    macro_rules! tail {
        ($w:literal) => {
            tn_tile::<R, $w, E>(a, b, c, m, n, i, j, r0, rw, store, epi)
        };
    }
    remainder!(n - j, tail);
}

/// One reduction panel of the blocked `tn` kernel: rows `r0..r0+rw`.
#[allow(clippy::too_many_arguments)]
fn tn_panel<E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    r0: usize,
    rw: usize,
    store: bool,
    epi: &mut E,
) {
    let mut i = 0;
    while i + 4 <= m {
        tn_band::<4, E>(a, b, c, m, n, i, r0, rw, store, epi);
        i += 4;
    }
    macro_rules! tail {
        ($r:literal) => {
            tn_band::<$r, E>(a, b, c, m, n, i, r0, rw, store, epi)
        };
    }
    remainder!(m - i, tail);
}

// ---------------------------------------------------------------------------
// nn: C (m×n) = A (m×k) × B (k×n) — reduction over A's columns / B's rows.
// ---------------------------------------------------------------------------

/// Reference `C = A × B`: every output element accumulates its `k`
/// contributions strictly in ascending inner-index order (no sparsity
/// shortcut). Overwrites every element of `c` (`m×n`).
pub fn nn_naive(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c[..m * n].fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for (t, &x) in arow.iter().enumerate() {
            let brow = &b[t * n..t * n + n];
            let crow = &mut c[i * n..i * n + n];
            for (cv, &y) in crow.iter_mut().zip(brow) {
                *cv += x * y;
            }
        }
    }
}

/// Register-blocked `C = A × B`; bit-identical to [`nn_naive`] (each `R×C`
/// output tile holds `R·C` strict-`k`-order accumulator chains).
/// Overwrites every element of `c`.
pub fn nn_blocked(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    nn_panel(a, b, c, m, k, n, 0, k, true, &mut NoEpilogue);
}

/// Cache-tiled `C = A × B` with `k_panel`-wide reduction panels; reorders
/// FP addition once `k > k_panel` (bit-identical to [`nn_blocked`]
/// otherwise). Overwrites every element of `c`.
pub fn nn_tiled(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize, k_panel: usize) {
    debug_assert!(k_panel > 0, "k_panel must be positive");
    if k == 0 {
        c[..m * n].fill(0.0);
        return;
    }
    let mut k0 = 0;
    while k0 < k {
        let kw = (k - k0).min(k_panel);
        nn_panel(a, b, c, m, k, n, k0, kw, k0 == 0, &mut NoEpilogue);
        k0 += kw;
    }
}

/// One `R×C` tile of the `nn` kernel: `A` rows are `k`-contiguous, `B`
/// contributes `C` contiguous elements per reduction step.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn nn_tile<const R: usize, const C: usize, E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    k: usize,
    n: usize,
    i: usize,
    j: usize,
    k0: usize,
    kw: usize,
    store: bool,
    epi: &mut E,
) {
    let ar: [&[f64]; R] = std::array::from_fn(|rr| &a[(i + rr) * k + k0..(i + rr) * k + k0 + kw]);
    let mut s = [[0.0f64; C]; R];
    for t in 0..kw {
        let brow = &b[(k0 + t) * n + j..(k0 + t) * n + j + C];
        for (srow, arow) in s.iter_mut().zip(&ar) {
            let x = arow[t];
            for (sv, &y) in srow.iter_mut().zip(brow) {
                *sv += x * y;
            }
        }
    }
    store_tile(&s, c, n, i, j, store, epi);
}

/// One `R`-row band of the `nn` kernel (see [`nt_band`]).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn nn_band<const R: usize, E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    k: usize,
    n: usize,
    i: usize,
    k0: usize,
    kw: usize,
    store: bool,
    epi: &mut E,
) {
    let mut j = 0;
    while j + 8 <= n {
        nn_tile::<R, 8, E>(a, b, c, k, n, i, j, k0, kw, store, epi);
        j += 8;
    }
    if j + 4 <= n {
        nn_tile::<R, 4, E>(a, b, c, k, n, i, j, k0, kw, store, epi);
        j += 4;
    }
    macro_rules! tail {
        ($w:literal) => {
            nn_tile::<R, $w, E>(a, b, c, k, n, i, j, k0, kw, store, epi)
        };
    }
    remainder!(n - j, tail);
}

/// One reduction panel of the blocked `nn` kernel: inner indices
/// `k0..k0+kw`. This panel also backs the `nt` fast path (over a
/// transposed `B`) and therefore the fused forward-layer store.
#[allow(clippy::too_many_arguments)]
fn nn_panel<E: Epilogue>(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    k0: usize,
    kw: usize,
    store: bool,
    epi: &mut E,
) {
    let mut i = 0;
    while i + 4 <= m {
        nn_band::<4, E>(a, b, c, k, n, i, k0, kw, store, epi);
        i += 4;
    }
    macro_rules! tail {
        ($r:literal) => {
            nn_band::<$r, E>(a, b, c, k, n, i, k0, kw, store, epi)
        };
    }
    remainder!(m - i, tail);
}

// ---------------------------------------------------------------------------
// Mode dispatchers (what the Matrix product methods call).
// ---------------------------------------------------------------------------

pub(crate) fn nt(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, k: usize) {
    match mode() {
        GemmMode::Blocked => nt_blocked(a, b, c, m, n, k),
        GemmMode::Tiled => nt_tiled(a, b, c, m, n, k, K_PANEL),
        GemmMode::Naive => nt_naive(a, b, c, m, n, k),
    }
}

pub(crate) fn tn(a: &[f64], b: &[f64], c: &mut [f64], r: usize, m: usize, n: usize) {
    match mode() {
        GemmMode::Blocked => tn_blocked(a, b, c, r, m, n),
        GemmMode::Tiled => tn_tiled(a, b, c, r, m, n, K_PANEL),
        GemmMode::Naive => tn_naive(a, b, c, r, m, n),
    }
}

pub(crate) fn nn(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    match mode() {
        GemmMode::Blocked => nn_blocked(a, b, c, m, k, n),
        GemmMode::Tiled => nn_tiled(a, b, c, m, k, n, K_PANEL),
        GemmMode::Naive => nn_naive(a, b, c, m, k, n),
    }
}

// ---------------------------------------------------------------------------
// The batch engine's transposed layer kernel.
// ---------------------------------------------------------------------------

/// One dense layer over transposed activations: `x_t` is (in × N), `out_t`
/// becomes (out × N), both feature-major.
///
/// For each output unit `j`, the kernel runs a register block of up to 32
/// batch lanes: independent accumulators, each summing its own lane's
/// products strictly in `k` order — the independent lanes vectorize while
/// every lane's sum keeps the exact accumulation order of `Mlp::forward`.
/// Bias is added once per element after the full dot, then ReLU, matching
/// the per-example path. Remainder lanes step down through 16/8/4/2-wide
/// blocks before the final scalar lane, so even ragged batch widths keep
/// several chains in flight.
///
/// This kernel is deliberately **mode-independent**: every [`GemmMode`]
/// leaves batched inference bit-identical to the scalar forward pass, so
/// campaign digests never depend on the training-kernel configuration.
pub fn layer_forward_t(w: &Matrix, bias: &[f64], relu: bool, x_t: &Matrix, out_t: &mut Matrix) {
    let n = x_t.cols();
    debug_assert_eq!(x_t.rows(), w.cols());
    out_t.reshape(w.rows(), n);
    // Lane-block widths: enough independent 8-wide vector chains to hide FMA
    // latency on wide SIMD hosts, with narrower blocks mopping up.
    macro_rules! lane_block {
        ($width:literal, $i:ident, $wrow:ident, $xflat:ident, $orow:ident, $b:ident) => {
            while $i + $width <= n {
                let mut acc = [0.0f64; $width];
                for (&wk, xrow) in $wrow.iter().zip($xflat.chunks_exact(n)) {
                    let lanes = &xrow[$i..$i + $width];
                    for (a, &x) in acc.iter_mut().zip(lanes) {
                        *a += x * wk;
                    }
                }
                for (o, a) in $orow[$i..$i + $width].iter_mut().zip(acc) {
                    let v = a + $b;
                    *o = if relu && v < 0.0 { 0.0 } else { v };
                }
                $i += $width;
            }
        };
    }
    debug_assert_eq!(bias.len(), w.rows());
    let xflat = x_t.as_slice();
    for (j, &b) in bias.iter().enumerate() {
        let wrow = w.row(j);
        let orow = out_t.row_mut(j);
        let mut i = 0;
        lane_block!(32, i, wrow, xflat, orow, b);
        lane_block!(16, i, wrow, xflat, orow, b);
        lane_block!(8, i, wrow, xflat, orow, b);
        lane_block!(4, i, wrow, xflat, orow, b);
        lane_block!(2, i, wrow, xflat, orow, b);
        while i < n {
            let mut s = 0.0;
            for (&wk, xrow) in wrow.iter().zip(xflat.chunks_exact(n)) {
                s += xrow[i] * wk;
            }
            let v = s + b;
            orow[i] = if relu && v < 0.0 { 0.0 } else { v };
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_simkit::rng as simrng;
    use rand::Rng;
    use rand::SeedableRng;

    fn filled(len: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..len).map(|_| simrng::normal(rng, 0.0, 2.0)).collect()
    }

    /// Every (m, n, reduction) shape combination the paper's training loop
    /// hits, plus primes, degenerate zeros, and sizes straddling the tile
    /// boundaries.
    fn shapes() -> Vec<(usize, usize, usize)> {
        vec![
            (0, 0, 0),
            (0, 3, 2),
            (3, 0, 2),
            (3, 2, 0),
            (1, 1, 1),
            (4, 4, 4),
            (5, 7, 13),
            (16, 100, 5),
            (16, 1, 50),
            (9, 64, 3),
            (17, 23, 29),
            (32, 64, 64),
        ]
    }

    #[test]
    fn blocked_kernels_match_naive_to_the_bit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for (m, n, k) in shapes() {
            let a = filled(m * k, &mut rng);
            let b = filled(n * k, &mut rng);
            let mut want = vec![9e9; m * n];
            let mut got = vec![-9e9; m * n];
            nt_naive(&a, &b, &mut want, m, n, k);
            nt_blocked(&a, &b, &mut got, m, n, k);
            assert_bits(&want, &got, "nt", m, n, k);

            let a = filled(k * m, &mut rng);
            let b = filled(k * n, &mut rng);
            tn_naive(&a, &b, &mut want, k, m, n);
            tn_blocked(&a, &b, &mut got, k, m, n);
            assert_bits(&want, &got, "tn", m, n, k);

            let a = filled(m * k, &mut rng);
            let b = filled(k * n, &mut rng);
            nn_naive(&a, &b, &mut want, m, k, n);
            nn_blocked(&a, &b, &mut got, m, k, n);
            assert_bits(&want, &got, "nn", m, n, k);
        }
    }

    #[test]
    fn fused_epilogue_matches_kernel_plus_pass() {
        // Fused store-path application ≡ plain kernel + separate row-major
        // pass, bit-for-bit, on shapes exercising every remainder tile.
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        for (m, n, k) in shapes() {
            let a = filled(m * k, &mut rng);
            let b = filled(n * k, &mut rng);
            let bias = filled(n, &mut rng);
            let mask: Vec<f64> = (0..m * n)
                .map(|_| if rng.random::<f64>() < 0.8 { 1.25 } else { 0.0 })
                .collect();
            let mut epi = LayerEpilogue::new(&bias, true, Some(&mask), n);
            let mut want = vec![9e9; m * n];
            let mut got = vec![-9e9; m * n];
            nt_naive(&a, &b, &mut want, m, n, k);
            epilogue_pass(&mut want, m, n, &mut epi);
            nt_fused(&a, &b, &mut got, m, n, k, &mut epi);
            assert_bits(&want, &got, "nt fused layer", m, n, k);

            let targets = filled(m * n, &mut rng);
            let mut diff_epi = BiasDiffEpilogue::new(&bias, &targets, n);
            nt_naive(&a, &b, &mut want, m, n, k);
            epilogue_pass(&mut want, m, n, &mut diff_epi);
            nt_fused(&a, &b, &mut got, m, n, k, &mut diff_epi);
            assert_bits(&want, &got, "nt fused bias-diff", m, n, k);
        }
    }

    #[test]
    fn tiled_kernels_are_bit_identical_within_one_panel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (m, n, k) = (9, 6, 31);
        let a = filled(m * k, &mut rng);
        let b = filled(n * k, &mut rng);
        let mut want = vec![0.0; m * n];
        let mut got = vec![0.0; m * n];
        nt_blocked(&a, &b, &mut want, m, n, k);
        nt_tiled(&a, &b, &mut got, m, n, k, K_PANEL);
        assert_bits(&want, &got, "nt_tiled(one panel)", m, n, k);
    }

    #[test]
    fn tiled_kernels_reorder_but_stay_close_across_panels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let (m, n, k) = (7, 5, 103);
        let a = filled(m * k, &mut rng);
        let b = filled(n * k, &mut rng);
        let mut want = vec![0.0; m * n];
        let mut got = vec![0.0; m * n];
        nt_naive(&a, &b, &mut want, m, n, k);
        // A tiny panel forces many panel boundaries (the reordering case).
        nt_tiled(&a, &b, &mut got, m, n, k, 8);
        for (w, g) in want.iter().zip(&got) {
            let err = (w - g).abs() / w.abs().max(1.0);
            assert!(err < 1e-12, "tiled drifted: {w} vs {g}");
        }

        let a = filled(k * m, &mut rng);
        let b = filled(k * n, &mut rng);
        tn_naive(&a, &b, &mut want, k, m, n);
        tn_tiled(&a, &b, &mut got, k, m, n, 8);
        for (w, g) in want.iter().zip(&got) {
            let err = (w - g).abs() / w.abs().max(1.0);
            assert!(err < 1e-12, "tn tiled drifted: {w} vs {g}");
        }

        let a = filled(m * k, &mut rng);
        let b = filled(k * n, &mut rng);
        nn_naive(&a, &b, &mut want, m, k, n);
        nn_tiled(&a, &b, &mut got, m, k, n, 8);
        for (w, g) in want.iter().zip(&got) {
            let err = (w - g).abs() / w.abs().max(1.0);
            assert!(err < 1e-12, "nn tiled drifted: {w} vs {g}");
        }
    }

    #[test]
    fn kernels_overwrite_stale_output() {
        // k = 0 must still clear the output buffer in every implementation.
        for f in [nt_naive, nt_blocked] {
            let mut c = vec![7.0; 6];
            f(&[], &[], &mut c, 2, 3, 0);
            assert_eq!(c, vec![0.0; 6]);
        }
        let mut c = vec![7.0; 6];
        nt_tiled(&[], &[], &mut c, 2, 3, 0, K_PANEL);
        assert_eq!(c, vec![0.0; 6]);
        let mut c = vec![7.0; 6];
        tn_tiled(&[], &[], &mut c, 0, 2, 3, K_PANEL);
        assert_eq!(c, vec![0.0; 6]);
        let mut c = vec![7.0; 6];
        nn_tiled(&[], &[], &mut c, 2, 0, 3, K_PANEL);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn fused_zero_reduction_still_applies_epilogue() {
        // k = 0: every accumulator chain is the empty sum (+0.0) and the
        // epilogue still runs on it — matching naive + pass.
        let bias = vec![1.0, -2.0, 3.0];
        let mut epi = LayerEpilogue::new(&bias, true, None, 3);
        let mut c = vec![7.0; 6];
        nt_fused(&[], &[], &mut c, 2, 3, 0, &mut epi);
        assert_eq!(c, vec![1.0, 0.0, 3.0, 1.0, 0.0, 3.0]);
    }

    #[test]
    fn mode_reorders_fp_only_for_tiled() {
        assert!(!GemmMode::Blocked.reorders_fp());
        assert!(!GemmMode::Naive.reorders_fp());
        assert!(GemmMode::Tiled.reorders_fp());
    }

    fn assert_bits(want: &[f64], got: &[f64], kernel: &str, m: usize, n: usize, k: usize) {
        assert_eq!(want.len(), got.len());
        for (idx, (w, g)) in want.iter().zip(got).enumerate() {
            assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "{kernel} {m}x{n} (reduction {k}) diverged at flat index {idx}: {w} vs {g}"
            );
        }
    }
}
