//! Property-based pinning of the GEMM micro-kernels against the naive
//! reference.
//!
//! The register-blocked kernels (and the `nt` transpose fast path behind
//! them) claim **bit-identity** with the strict index-order naive loops on
//! every non-NaN output — finite values, signed zeros, and infinities
//! included — and identical NaN *placement* for non-finite inputs (which
//! is exactly what the old sparsity shortcut got wrong; NaN *payloads* are
//! the one thing IEEE-754 leaves implementation-defined). These properties
//! generate random shapes (zero rows/columns, primes, tile-boundary
//! stragglers) and hostile entry mixes and compare `to_bits()` across the
//! whole output.

use av_neural::gemm;
use av_neural::matrix::Matrix;
use proptest::prelude::*;

/// Dimension strategy biased toward the interesting edges: zero (empty
/// operand), one (scalar remainder loops), exact 4-multiples (pure tile
/// path), off-by-one stragglers, and primes.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(3usize),
        Just(4usize),
        Just(5usize),
        Just(8usize),
        Just(13usize),
        Just(16usize),
        Just(17usize),
        1usize..24,
    ]
}

/// Finite, well-scaled entries.
fn finite() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

/// Hostile entries: the values the old `a == 0.0` shortcut mishandled
/// (zeros meeting NaN/∞) plus signed zeros and ordinary magnitudes.
fn hostile() -> impl Strategy<Value = f64> {
    prop_oneof![
        -100.0..100.0f64,
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

/// Largest operand any generated shape can need (dims are < 24).
const POOL: usize = 24 * 24;

/// Output comparator: [`assert_bits`] or [`assert_ieee_equiv`].
type Comparator = fn(&[f64], &[f64], &str) -> Result<(), TestCaseError>;

fn assert_bits(want: &[f64], got: &[f64], what: &str) -> Result<(), TestCaseError> {
    for (idx, (w, g)) in want.iter().zip(got).enumerate() {
        prop_assert_eq!(
            w.to_bits(),
            g.to_bits(),
            "{} diverged at flat index {}: {} vs {}",
            what,
            idx,
            w,
            g
        );
    }
    Ok(())
}

/// IEEE-value equivalence: every non-NaN result (finite values, signed
/// zeros, infinities) must match bit-for-bit; NaN results must be NaN on
/// both sides. NaN *payloads* are the one thing IEEE-754 leaves
/// implementation-defined (and LLVM may commute add/mul operands, picking
/// the other operand's payload), so they are deliberately not compared.
fn assert_ieee_equiv(want: &[f64], got: &[f64], what: &str) -> Result<(), TestCaseError> {
    for (idx, (w, g)) in want.iter().zip(got).enumerate() {
        if w.is_nan() {
            prop_assert!(
                g.is_nan(),
                "{} diverged at flat index {}: NaN vs {}",
                what,
                idx,
                g
            );
        } else {
            prop_assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "{} diverged at flat index {}: {} vs {}",
                what,
                idx,
                w,
                g
            );
        }
    }
    Ok(())
}

/// Shared body: all three blocked kernels vs their naive references, plus
/// single-panel tiled vs blocked (bit-identical while one panel covers the
/// whole reduction). `cmp` is [`assert_bits`] for finite data and
/// [`assert_ieee_equiv`] when NaNs may appear.
fn check_families(
    m: usize,
    n: usize,
    k: usize,
    a_pool: &[f64],
    b_pool: &[f64],
    cmp: Comparator,
) -> Result<(), TestCaseError> {
    let (a, b) = (&a_pool[..m * k], &b_pool[..n * k]);
    let mut want = vec![7.5; m * n];
    let mut got = vec![-7.5; m * n];
    gemm::nt_naive(a, b, &mut want, m, n, k);
    gemm::nt_blocked(a, b, &mut got, m, n, k);
    cmp(&want, &got, "nt blocked")?;
    gemm::nt_tiled(a, b, &mut got, m, n, k, gemm::K_PANEL);
    cmp(&want, &got, "nt tiled (single panel)")?;

    let (a, b) = (&a_pool[..k * m], &b_pool[..k * n]);
    gemm::tn_naive(a, b, &mut want, k, m, n);
    gemm::tn_blocked(a, b, &mut got, k, m, n);
    cmp(&want, &got, "tn blocked")?;
    gemm::tn_tiled(a, b, &mut got, k, m, n, gemm::K_PANEL);
    cmp(&want, &got, "tn tiled (single panel)")?;

    let (a, b) = (&a_pool[..m * k], &b_pool[..k * n]);
    gemm::nn_naive(a, b, &mut want, m, k, n);
    gemm::nn_blocked(a, b, &mut got, m, k, n);
    cmp(&want, &got, "nn blocked")?;
    gemm::nn_tiled(a, b, &mut got, m, k, n, gemm::K_PANEL);
    cmp(&want, &got, "nn tiled (single panel)")?;
    Ok(())
}

/// A per-element-pure epilogue shaped like the production bias/mask ones
/// (column scale + per-element shift), used to pin the fused kernels
/// against `naive + epilogue_pass`. Relies on the trait's default
/// `apply_row`, so both per-element and row-granular call paths are
/// exercised through the same expressions.
struct AffineEpi<'a> {
    scale: &'a [f64],
    shift: &'a [f64],
    n: usize,
}

impl gemm::Epilogue for AffineEpi<'_> {
    fn apply(&mut self, i: usize, j: usize, s: f64) -> f64 {
        s * self.scale[j] + self.shift[i * self.n + j]
    }
}

/// Counts visits per element — pins the stateful-epilogue contract that
/// every fused kernel applies the epilogue exactly once per output.
struct CountEpi {
    counts: Vec<u32>,
    n: usize,
}

impl gemm::Epilogue for CountEpi {
    fn apply(&mut self, i: usize, j: usize, s: f64) -> f64 {
        self.counts[i * self.n + j] += 1;
        s
    }
}

/// Shared body for the fused-entry properties: every fused kernel (in the
/// process-wide default mode) must agree with `naive + epilogue_pass` on
/// every IEEE-specified bit, including `nt_fused_bt` fed an explicit
/// transposed operand (the forward pass's `Wᵀ`-shadow route).
fn check_fused(
    m: usize,
    n: usize,
    k: usize,
    a_pool: &[f64],
    b_pool: &[f64],
    e_pool: &[f64],
    cmp: Comparator,
) -> Result<(), TestCaseError> {
    let mut epi = AffineEpi {
        scale: &e_pool[..24],
        shift: e_pool,
        n,
    };
    let mut want = vec![7.5; m * n];
    let mut got = vec![-7.5; m * n];

    let (a, b) = (&a_pool[..m * k], &b_pool[..n * k]);
    gemm::nt_naive(a, b, &mut want, m, n, k);
    gemm::epilogue_pass(&mut want, m, n, &mut epi);
    gemm::nt_fused(a, b, &mut got, m, n, k, &mut epi);
    cmp(&want, &got, "nt fused")?;
    // The same product with the transposed operand precomputed (bt is k×n
    // row-major, bt[kk·n + j] = b[j·k + kk]) — the persistent-shadow path.
    let mut bt = vec![0.0; n * k];
    for j in 0..n {
        for kk in 0..k {
            bt[kk * n + j] = b[j * k + kk];
        }
    }
    got.fill(-7.5);
    gemm::nt_fused_bt(a, b, Some(&bt), &mut got, m, n, k, &mut epi);
    cmp(&want, &got, "nt fused (bt shadow)")?;

    let (a, b) = (&a_pool[..k * m], &b_pool[..k * n]);
    gemm::tn_naive(a, b, &mut want, k, m, n);
    gemm::epilogue_pass(&mut want, m, n, &mut epi);
    got.fill(-7.5);
    gemm::tn_fused(a, b, &mut got, k, m, n, &mut epi);
    cmp(&want, &got, "tn fused")?;

    let (a, b) = (&a_pool[..m * k], &b_pool[..k * n]);
    gemm::nn_naive(a, b, &mut want, m, k, n);
    gemm::epilogue_pass(&mut want, m, n, &mut epi);
    got.fill(-7.5);
    gemm::nn_fused(a, b, &mut got, m, k, n, &mut epi);
    cmp(&want, &got, "nn fused")?;
    Ok(())
}

proptest! {
    /// Blocked ≡ naive to the bit on finite data, any shape.
    #[test]
    fn blocked_matches_naive_bits_finite(
        m in dim(), n in dim(), k in dim(),
        a_pool in prop::collection::vec(finite(), POOL),
        b_pool in prop::collection::vec(finite(), POOL),
    ) {
        check_families(m, n, k, &a_pool, &b_pool, assert_bits)?;
    }

    /// With NaN, ±∞, and ±0.0 sprinkled through both operands — the inputs
    /// the old sparsity shortcut mishandled — blocked still agrees with
    /// naive on every IEEE-specified bit: non-NaN outputs are identical and
    /// NaNs appear in exactly the same places (payloads are the one thing
    /// IEEE leaves open).
    #[test]
    fn blocked_matches_naive_bits_hostile(
        m in dim(), n in dim(), k in dim(),
        a_pool in prop::collection::vec(hostile(), POOL),
        b_pool in prop::collection::vec(hostile(), POOL),
    ) {
        check_families(m, n, k, &a_pool, &b_pool, assert_ieee_equiv)?;
    }

    /// A zero in one operand meeting a non-finite partner in the other must
    /// produce NaN in every affected output (IEEE 0×∞ / 0×NaN), in all
    /// three families.
    #[test]
    fn zero_times_nonfinite_is_nan(
        m in 1usize..8, n in 1usize..8, k in 1usize..8,
        poison in prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
    ) {
        let a = vec![0.0; m * k];
        let b = vec![poison; n * k];
        let mut c = vec![0.0; m * n];
        gemm::nt_blocked(&a, &b, &mut c, m, n, k);
        prop_assert!(c.iter().all(|v| v.is_nan()), "nt laundered {} through 0.0", poison);
        let a = vec![0.0; k * m];
        let b = vec![poison; k * n];
        gemm::tn_blocked(&a, &b, &mut c, k, m, n);
        prop_assert!(c.iter().all(|v| v.is_nan()), "tn laundered {} through 0.0", poison);
        let a = vec![0.0; m * k];
        let b = vec![poison; k * n];
        gemm::nn_blocked(&a, &b, &mut c, m, k, n);
        prop_assert!(c.iter().all(|v| v.is_nan()), "nn laundered {} through 0.0", poison);
    }

    /// Multi-panel tiling reorders FP addition but stays within normal
    /// summation error of the reference on finite data.
    #[test]
    fn tiled_stays_close_across_panels(
        m in 1usize..12, n in 1usize..12, k in 9usize..24,
        a_pool in prop::collection::vec(finite(), POOL),
        b_pool in prop::collection::vec(finite(), POOL),
        panel in 1usize..8,
    ) {
        let (a, b) = (&a_pool[..m * k], &b_pool[..n * k]);
        let mut want = vec![0.0; m * n];
        let mut got = vec![0.0; m * n];
        gemm::nt_naive(a, b, &mut want, m, n, k);
        gemm::nt_tiled(a, b, &mut got, m, n, k, panel);
        for (w, g) in want.iter().zip(&got) {
            let err = (w - g).abs() / w.abs().max(1.0);
            prop_assert!(err < 1e-12, "nt tiled drifted: {} vs {}", w, g);
        }
    }

    /// The `Matrix` product methods (default mode: blocked) agree with the
    /// naive kernels on every IEEE-specified bit — the end-to-end route the
    /// training loop takes.
    #[test]
    fn matrix_products_match_naive_bits(
        m in 1usize..10, n in 1usize..10, k in 1usize..10,
        a_pool in prop::collection::vec(hostile(), POOL),
        b_pool in prop::collection::vec(hostile(), POOL),
    ) {
        // x (m×k) · wᵀ (n×k) — the forward product.
        let x = Matrix::from_vec(m, k, a_pool[..m * k].to_vec());
        let w = Matrix::from_vec(n, k, b_pool[..n * k].to_vec());
        let mut out = Matrix::zeros(0, 0);
        x.matmul_t_into(&w, &mut out);
        let mut want = vec![0.0; m * n];
        gemm::nt_naive(&a_pool[..m * k], &b_pool[..n * k], &mut want, m, n, k);
        assert_ieee_equiv(&want, out.as_slice(), "matmul_t_into")?;

        // dᵀ (r×m)ᵀ · x (r×n) — the weight-gradient product.
        let d = Matrix::from_vec(k, m, a_pool[..k * m].to_vec());
        let x2 = Matrix::from_vec(k, n, b_pool[..k * n].to_vec());
        d.t_matmul_into(&x2, &mut out);
        gemm::tn_naive(&a_pool[..k * m], &b_pool[..k * n], &mut want, k, m, n);
        assert_ieee_equiv(&want, out.as_slice(), "t_matmul_into")?;

        // d (m×k) · w (k×n) — the backpropagated-delta product.
        let d2 = Matrix::from_vec(m, k, a_pool[..m * k].to_vec());
        let w2 = Matrix::from_vec(k, n, b_pool[..k * n].to_vec());
        d2.matmul_into(&w2, &mut out);
        gemm::nn_naive(&a_pool[..m * k], &b_pool[..k * n], &mut want, m, k, n);
        assert_ieee_equiv(&want, out.as_slice(), "matmul_into")?;
    }

    /// Fused-epilogue entries ≡ naive + row-major `epilogue_pass` to the
    /// bit on finite data, any shape — the fused training step's
    /// equivalence contract.
    #[test]
    fn fused_matches_pass_bits_finite(
        m in dim(), n in dim(), k in dim(),
        a_pool in prop::collection::vec(finite(), POOL),
        b_pool in prop::collection::vec(finite(), POOL),
        e_pool in prop::collection::vec(finite(), POOL),
    ) {
        check_fused(m, n, k, &a_pool, &b_pool, &e_pool, assert_bits)?;
    }

    /// The same with NaN/±∞/±0.0 through operands *and* epilogue inputs:
    /// non-NaN outputs identical, NaN placement identical.
    #[test]
    fn fused_matches_pass_hostile(
        m in dim(), n in dim(), k in dim(),
        a_pool in prop::collection::vec(hostile(), POOL),
        b_pool in prop::collection::vec(hostile(), POOL),
        e_pool in prop::collection::vec(hostile(), POOL),
    ) {
        check_fused(m, n, k, &a_pool, &b_pool, &e_pool, assert_ieee_equiv)?;
    }

    /// Every fused entry applies a stateful epilogue exactly once per
    /// output element, whatever shape/path (tile interior, remainder
    /// bands, shadow operand) the dispatch lands on.
    #[test]
    fn fused_visits_each_element_once(
        m in dim(), n in dim(), k in dim(),
        a_pool in prop::collection::vec(finite(), POOL),
        b_pool in prop::collection::vec(finite(), POOL),
    ) {
        let mut c = vec![0.0; m * n];
        let mut epi = CountEpi { counts: vec![0; m * n], n };
        gemm::nt_fused(&a_pool[..m * k], &b_pool[..n * k], &mut c, m, n, k, &mut epi);
        prop_assert!(epi.counts.iter().all(|&v| v == 1), "nt fused visit counts: {:?}", epi.counts);

        let mut bt = vec![0.0; n * k];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b_pool[j * k + kk];
            }
        }
        epi.counts.fill(0);
        gemm::nt_fused_bt(&a_pool[..m * k], &b_pool[..n * k], Some(&bt), &mut c, m, n, k, &mut epi);
        prop_assert!(epi.counts.iter().all(|&v| v == 1), "nt fused bt visit counts: {:?}", epi.counts);

        epi.counts.fill(0);
        gemm::tn_fused(&a_pool[..k * m], &b_pool[..k * n], &mut c, k, m, n, &mut epi);
        prop_assert!(epi.counts.iter().all(|&v| v == 1), "tn fused visit counts: {:?}", epi.counts);

        epi.counts.fill(0);
        gemm::nn_fused(&a_pool[..m * k], &b_pool[..k * n], &mut c, m, k, n, &mut epi);
        prop_assert!(epi.counts.iter().all(|&v| v == 1), "nn fused visit counts: {:?}", epi.counts);
    }
}
