//! Property-based tests for the neural-network substrate.

use av_neural::matrix::Matrix;
use av_neural::mlp::Mlp;
use av_neural::optim::Adam;
use av_neural::train::{Dataset, Normalizer};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Hostile gradient entries: ordinary magnitudes plus signed zeros, NaN,
/// and both infinities — once any of these enters a moment pair it must
/// propagate identically on every update path.
fn hostile_grad() -> impl Strategy<Value = f64> {
    prop_oneof![
        -100.0..100.0f64,
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

/// IEEE-value equivalence on parameter vectors: non-NaN entries must match
/// bit-for-bit (signed zeros and infinities included), NaN placement must
/// agree (payloads are implementation-defined).
fn assert_params_ieee_equiv(want: &[f64], got: &[f64], what: &str) -> Result<(), TestCaseError> {
    for (idx, (w, g)) in want.iter().zip(got).enumerate() {
        if w.is_nan() {
            prop_assert!(g.is_nan(), "{} diverged at {}: NaN vs {}", what, idx, g);
        } else {
            prop_assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "{} diverged at {}: {} vs {}",
                what,
                idx,
                w,
                g
            );
        }
    }
    Ok(())
}

proptest! {
    /// (A·B)·C = A·(B·C) for the matmul implementation.
    #[test]
    fn matmul_is_associative(a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for r in 0..left.rows() {
            for j in 0..left.cols() {
                prop_assert!((left.get(r, j) - right.get(r, j)).abs() < 1e-6);
            }
        }
    }

    /// t_matmul(A, B) = Aᵀ·B computed through the plain path.
    #[test]
    fn t_matmul_matches_transpose(a in arb_matrix(4, 3), b in arb_matrix(4, 2)) {
        let mut at = Matrix::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        let expected = at.matmul(&b);
        let got = a.t_matmul(&b);
        for r in 0..3 {
            for c in 0..2 {
                prop_assert!((expected.get(r, c) - got.get(r, c)).abs() < 1e-9);
            }
        }
    }

    /// Forward passes are finite for any finite input.
    #[test]
    fn forward_is_finite(seed in any::<u64>(), input in prop::collection::vec(-100.0..100.0f64, 5)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[5, 16, 8, 1], 0.1, &mut rng);
        let out = net.forward(&input);
        prop_assert!(out[0].is_finite());
    }

    /// Adam drives any 1-D convex quadratic to its minimum.
    #[test]
    fn adam_minimizes_quadratics(target in -50.0..50.0f64, scale in 0.1..5.0f64) {
        let mut adam = Adam::new(1, 0.2);
        let mut x = 0.0f64;
        for _ in 0..3000 {
            let g = 2.0 * scale * (x - target);
            adam.step().update(&mut x, g);
        }
        prop_assert!((x - target).abs() < 0.1, "x {x} target {target}");
    }

    /// The interleaved single-pass Adam is batch- and order-invariant to
    /// the IEEE bit: per-element cursor updates, one `update_slice` pass,
    /// and out-of-order `update_slice_at` windows (second half updated
    /// first) must agree on every parameter after every step — including
    /// once NaN/±∞/±0.0 gradients have poisoned the moment state. This is
    /// the foundation the fused backward's in-kernel optimizer epilogue
    /// rests on.
    #[test]
    fn interleaved_adam_is_order_and_batch_invariant(
        n in 1usize..40,
        split_frac in 0.0..1.0f64,
        steps_grads in prop::collection::vec(prop::collection::vec(hostile_grad(), 40), 3),
    ) {
        let init: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let (mut pa, mut pb, mut pc) = (init.clone(), init.clone(), init);
        let mut a1 = Adam::new(n, 1e-3);
        let mut a2 = Adam::new(n, 1e-3);
        let mut a3 = Adam::new(n, 1e-3);
        let split = ((n as f64) * split_frac) as usize;
        for grads in &steps_grads {
            let grads = &grads[..n];
            // A: per-element cursor order.
            let mut step = a1.step();
            for (p, &g) in pa.iter_mut().zip(grads) {
                step.update(p, g);
            }
            // B: one interleaved single-pass slice update.
            a2.step().update_slice(&mut pb, grads);
            // C: windowed updates applied back-to-front.
            let mut step = a3.step();
            step.update_slice_at(split, &mut pc[split..], &grads[split..]);
            step.update_slice_at(0, &mut pc[..split], &grads[..split]);

            assert_params_ieee_equiv(&pa, &pb, "update_slice vs per-element")?;
            assert_params_ieee_equiv(&pa, &pc, "windowed out-of-order vs per-element")?;
        }
    }

    /// The normalizer z-scores its own training inputs to mean≈0, std≈1.
    #[test]
    fn normalizer_zscores_training_data(
        rows in prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 3), 8..40)
    ) {
        let data = Dataset::from_rows(rows.iter().cloned().map(|r| (r, vec![0.0])));
        let norm = Normalizer::fit(&data);
        let normalized: Vec<Vec<f64>> = data.inputs.iter().map(|x| norm.apply(x)).collect();
        let n = normalized.len() as f64;
        for dim in 0..3 {
            let mean: f64 = normalized.iter().map(|r| r[dim]).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "dim {dim} mean {mean}");
            let var: f64 = normalized.iter().map(|r| (r[dim] - mean).powi(2)).sum::<f64>() / n;
            // Constant features normalize to 0 variance; otherwise ≈1.
            prop_assert!(var < 1e-6 || (var - 1.0).abs() < 1e-6, "dim {dim} var {var}");
        }
    }

    /// Splitting preserves every example exactly once.
    #[test]
    fn split_is_a_partition(n in 2usize..60, frac in 0.1..0.9f64, seed in any::<u64>()) {
        let data = Dataset::from_rows((0..n).map(|i| (vec![i as f64], vec![0.0])));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (a, b) = data.split(frac, &mut rng);
        prop_assert_eq!(a.len() + b.len(), n);
        let mut all: Vec<i64> = a.inputs.iter().chain(b.inputs.iter()).map(|r| r[0] as i64).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as i64).collect::<Vec<_>>());
    }
}
