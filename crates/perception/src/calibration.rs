//! Detector noise calibration — the constants of Fig. 5.
//!
//! The paper characterizes YOLOv3 inside Apollo on LGSVL footage (§VI-A) and
//! fits:
//!
//! - continuous-misdetection streak lengths per class:
//!   `Exp(loc = 1, λ = 0.717)` for pedestrians, `Exp(loc = 1, λ = 0.327)`
//!   for vehicles (Fig. 5 a–b), with 99th percentiles 31.0 / 59.4 frames;
//! - normalized bounding-box-center errors per class and axis: Gaussians
//!   with the (µ, σ) listed in Fig. 5 (c–f).
//!
//! The simulated detector *injects* noise from these exact distributions, so
//! downstream characterization (the `fig5` experiment) recovers them, and
//! the attacker's "stay within ±1σ" stealth rule (§IV-C) has the same
//! meaning as in the paper.

use av_simkit::actor::ActorKind;
use serde::{Deserialize, Serialize};

/// Gaussian parameters for one normalized error axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// Mean of the normalized error.
    pub mean: f64,
    /// Standard deviation of the normalized error.
    pub std_dev: f64,
}

/// Shifted-exponential parameters for misdetection streak lengths (frames).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    /// Location (minimum streak length).
    pub loc: f64,
    /// Rate λ.
    pub lambda: f64,
    /// 99th percentile reported by the paper (frames) — the attacker's
    /// `K_max` bound for Disappear attacks (§IV-B).
    pub p99: f64,
}

/// Per-class detector noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassCalibration {
    /// Normalized bbox-center error along image x (units of bbox width).
    pub center_x: Gaussian,
    /// Normalized bbox-center error along image y (units of bbox height).
    pub center_y: Gaussian,
    /// Continuous misdetection streak length (frames).
    pub misdetect_streak: Exponential,
    /// Per-frame probability of starting a misdetection streak.
    pub misdetect_start: f64,
    /// 1σ relative size jitter of the detected box.
    pub size_jitter: f64,
}

/// Full detector calibration: one model per class plus detectability limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorCalibration {
    /// Noise model for vehicles (cars, trucks).
    pub vehicle: ClassCalibration,
    /// Noise model for pedestrians.
    pub pedestrian: ClassCalibration,
    /// Minimum bbox area (px²) the detector can resolve.
    pub min_box_area: f64,
}

impl DetectorCalibration {
    /// The calibration matching the paper's Fig. 5 fits.
    pub fn paper() -> Self {
        DetectorCalibration {
            vehicle: ClassCalibration {
                center_x: Gaussian {
                    mean: 0.023,
                    std_dev: 0.464,
                },
                center_y: Gaussian {
                    mean: 0.094,
                    std_dev: 0.586,
                },
                misdetect_streak: Exponential {
                    loc: 1.0,
                    lambda: 0.327,
                    p99: 59.4,
                },
                misdetect_start: 0.02,
                size_jitter: 0.03,
            },
            pedestrian: ClassCalibration {
                center_x: Gaussian {
                    mean: 0.254,
                    std_dev: 2.010,
                },
                center_y: Gaussian {
                    mean: 0.186,
                    std_dev: 0.409,
                },
                misdetect_streak: Exponential {
                    loc: 1.0,
                    lambda: 0.717,
                    p99: 31.0,
                },
                misdetect_start: 0.03,
                size_jitter: 0.04,
            },
            min_box_area: 150.0,
        }
    }

    /// A noise-free calibration (useful for deterministic pipeline tests).
    pub fn ideal() -> Self {
        let noiseless = ClassCalibration {
            center_x: Gaussian {
                mean: 0.0,
                std_dev: 0.0,
            },
            center_y: Gaussian {
                mean: 0.0,
                std_dev: 0.0,
            },
            misdetect_streak: Exponential {
                loc: 1.0,
                lambda: 1.0,
                p99: 1.0,
            },
            misdetect_start: 0.0,
            size_jitter: 0.0,
        };
        DetectorCalibration {
            vehicle: noiseless,
            pedestrian: noiseless,
            min_box_area: 0.0,
        }
    }

    /// The class model for an actor kind.
    pub fn for_kind(&self, kind: ActorKind) -> &ClassCalibration {
        if kind.is_vehicle() {
            &self.vehicle
        } else {
            &self.pedestrian
        }
    }
}

impl Default for DetectorCalibration {
    fn default() -> Self {
        DetectorCalibration::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_fig5() {
        let c = DetectorCalibration::paper();
        assert_eq!(c.vehicle.center_x.std_dev, 0.464);
        assert_eq!(c.pedestrian.center_x.std_dev, 2.010);
        assert_eq!(c.vehicle.misdetect_streak.lambda, 0.327);
        assert_eq!(c.pedestrian.misdetect_streak.lambda, 0.717);
        assert_eq!(c.pedestrian.misdetect_streak.p99, 31.0);
    }

    #[test]
    fn for_kind_dispatch() {
        let c = DetectorCalibration::paper();
        assert_eq!(c.for_kind(ActorKind::Car).center_x.std_dev, 0.464);
        assert_eq!(c.for_kind(ActorKind::Truck).center_x.std_dev, 0.464);
        assert_eq!(c.for_kind(ActorKind::Pedestrian).center_x.std_dev, 2.010);
    }

    #[test]
    fn ideal_is_noise_free() {
        let c = DetectorCalibration::ideal();
        assert_eq!(c.vehicle.center_x.std_dev, 0.0);
        assert_eq!(c.vehicle.misdetect_start, 0.0);
    }
}
