//! The assembled perception system (Fig. 1's "Perception System" box).

use crate::calibration::DetectorCalibration;
use crate::detector::Detector;
use crate::fusion::{CameraObservation, Fusion, FusionConfig};
use crate::tracker::{Track, Tracker, TrackerConfig};
use crate::types::WorldObject;
use av_sensing::camera::Camera;
use av_sensing::frame::CameraFrame;
use av_sensing::lidar::LidarScan;
use av_simkit::math::Vec2;
use av_telemetry::{Stage, Telemetry, TraceEvent};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the full perception stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PerceptionConfig {
    /// Camera intrinsics/mounting used for the ground transform.
    pub camera: Camera,
    /// Detector noise calibration.
    pub calibration: DetectorCalibration,
    /// Tracker configuration.
    pub tracker: TrackerConfig,
    /// Fusion configuration.
    pub fusion: FusionConfig,
}

/// The full camera(+LiDAR) perception pipeline.
///
/// Two instances run per simulation: the ADS's own (fed the possibly
/// tampered camera feed plus LiDAR) and the malware's replica (fed the clean
/// tapped feed, camera-only — §III-D phase 2 reconstructs `Wt` from one
/// camera).
#[derive(Debug, Clone)]
pub struct Perception {
    config: PerceptionConfig,
    detector: Detector,
    tracker: Tracker,
    fusion: Fusion,
    last_camera_t: Option<f64>,
    last_detections: Vec<crate::types::Detection>,
    /// Spare detection buffer: swapped with `last_detections` each frame so
    /// the published detections and the detect output share two long-lived
    /// allocations instead of cloning per frame.
    detections_scratch: Vec<crate::types::Detection>,
    observations: Vec<CameraObservation>,
    stale_frames: u64,
    telemetry: Telemetry,
}

impl Perception {
    /// Builds a pipeline from configuration.
    pub fn new(config: PerceptionConfig) -> Self {
        Perception {
            config,
            detector: Detector::new(config.calibration),
            tracker: Tracker::new(config.tracker, config.calibration),
            fusion: Fusion::new(config.fusion),
            last_camera_t: None,
            last_detections: Vec::new(),
            detections_scratch: Vec::new(),
            observations: Vec::new(),
            stale_frames: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PerceptionConfig {
        &self.config
    }

    /// Attaches a telemetry handle. Camera frames are timed as
    /// [`Stage::PerceptionCamera`] (emitting [`TraceEvent::DetectionsEmitted`]
    /// and [`TraceEvent::TrackUpdate`], or [`TraceEvent::StaleFrameRejected`]
    /// for coasted frames); LiDAR sweeps are timed as
    /// [`Stage::PerceptionLidar`]. The malware's replica pipeline keeps the
    /// default disabled handle so only the ADS's own perception is traced.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Processes one camera frame: detect → associate/track → back-project →
    /// fuse. `ego_position` is the ego's world position at capture time
    /// (from GPS/IMU).
    pub fn on_camera_frame<R: Rng + ?Sized>(
        &mut self,
        frame: &CameraFrame,
        ego_position: Vec2,
        rng: &mut R,
    ) {
        // Graceful degradation: a frozen or replayed feed re-delivers a frame
        // with a non-advancing timestamp. Updating on it would collapse the
        // tracker's dt (velocity estimates explode) for zero new information
        // — coast instead and let the staleness surface to the planner.
        if let Some(t0) = self.last_camera_t {
            if frame.t <= t0 + 1e-9 {
                self.stale_frames += 1;
                let seq = frame.seq;
                self.telemetry
                    .emit(frame.t, || TraceEvent::StaleFrameRejected {
                        frame_seq: seq,
                    });
                return;
            }
        }
        let _timer = self.telemetry.time(Stage::PerceptionCamera);
        let dt = self
            .last_camera_t
            .map_or(1.0 / av_simkit::units::CAMERA_HZ, |t0| {
                (frame.t - t0).max(1e-3)
            });
        self.last_camera_t = Some(frame.t);

        // Detect into the spare buffer, then publish it by swapping with
        // `last_detections` — the previous frame's buffer becomes the next
        // spare. Net effect of the original `detections.clone()` without the
        // per-frame allocation.
        let mut detections = std::mem::take(&mut self.detections_scratch);
        self.detector.detect_into(frame, rng, &mut detections);
        self.tracker.step(dt, &detections);
        if self.telemetry.is_enabled() {
            let (seq, count) = (frame.seq, detections.len() as u32);
            self.telemetry
                .emit(frame.t, || TraceEvent::DetectionsEmitted {
                    frame_seq: seq,
                    count,
                });
            let confirmed = self.tracker.confirmed().count() as u32;
            let total = self.tracker.tracks().len() as u32;
            self.telemetry
                .emit(frame.t, || TraceEvent::TrackUpdate { confirmed, total });
        }
        self.detections_scratch = std::mem::replace(&mut self.last_detections, detections);

        let Self {
            config,
            tracker,
            fusion,
            observations,
            ..
        } = self;
        observations.clear();
        observations.extend(tracker.confirmed().filter_map(|track| {
            let bbox = track.bbox();
            // Boxes clipped at the image border back-project with a
            // systematic lateral bias (the visible-part center is not
            // the object center); drop them and let LiDAR sustain the
            // object while it passes out of the field of view.
            if bbox.x0 <= 2.0 || bbox.x1 >= config.camera.width - 2.0 {
                return None;
            }
            // Apparent-size ranging with the known class height; the
            // near field (< 8 m) is dominated by clipping and left to
            // LiDAR.
            let class_height = av_simkit::actor::Size::for_kind(track.kind).height;
            config
                .camera
                .back_project_with_height(&bbox, class_height)
                .filter(|rel| rel.x >= 8.0)
                .map(|rel| CameraObservation {
                    track: track.id,
                    kind: track.kind,
                    position: ego_position + rel,
                    provenance: track.provenance,
                })
        }));
        fusion.on_camera(observations, frame.t);
    }

    /// Processes one LiDAR sweep.
    pub fn on_lidar(&mut self, scan: &LidarScan) {
        let _timer = self.telemetry.time(Stage::PerceptionLidar);
        self.fusion.on_lidar(scan);
    }

    /// The current fused world model `Wt`.
    pub fn world_model(&self) -> Vec<WorldObject> {
        self.fusion.world_model()
    }

    /// Capture time of the newest camera frame that actually updated the
    /// pipeline (`None` before the first frame).
    pub fn last_camera_t(&self) -> Option<f64> {
        self.last_camera_t
    }

    /// Seconds of camera silence as of `now`: how long the pipeline has been
    /// coasting without fresh camera information. `0` before the first frame
    /// (startup is not degradation).
    pub fn camera_staleness(&self, now: f64) -> f64 {
        self.last_camera_t.map_or(0.0, |t0| (now - t0).max(0.0))
    }

    /// Number of frames rejected as stale (frozen/replayed feed).
    pub fn stale_frames(&self) -> u64 {
        self.stale_frames
    }

    /// The raw detector output of the most recent camera frame — the
    /// observable an external IDS monitors.
    pub fn last_detections(&self) -> &[crate::types::Detection] {
        &self.last_detections
    }

    /// Live camera tracks (the malware reads these as its `Ŝt`).
    pub fn tracks(&self) -> &[Track] {
        self.tracker.tracks()
    }

    /// The tracker (exposed for the attack's association-cost evaluation).
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// Clears all pipeline state (between runs). Buffer capacities are
    /// retained so a reused pipeline stays allocation-free.
    pub fn reset(&mut self) {
        self.detector.reset();
        self.tracker.reset();
        self.fusion.reset();
        self.last_camera_t = None;
        self.last_detections.clear();
        self.detections_scratch.clear();
        self.observations.clear();
        self.stale_frames = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_sensing::frame::capture;
    use av_sensing::lidar::Lidar;
    use av_simkit::actor::{Actor, ActorId, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::road::Road;
    use av_simkit::world::World;
    use rand::SeedableRng;

    fn world() -> World {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(40.0, 0.0),
            6.0,
            Behavior::CruiseStraight { speed: 6.0 },
        ))
        .unwrap();
        w
    }

    fn ideal_config() -> PerceptionConfig {
        PerceptionConfig {
            calibration: DetectorCalibration::ideal(),
            ..PerceptionConfig::default()
        }
    }

    #[test]
    fn end_to_end_tracks_a_vehicle() {
        let mut w = world();
        let mut p = Perception::new(ideal_config());
        let lidar = Lidar::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let dt = 1.0 / 15.0;
        for seq in 0..60 {
            let frame = capture(&p.config.camera, &w, seq, false);
            p.on_camera_frame(&frame, w.ego().pose.position, &mut rng);
            if seq % 3 == 0 {
                p.on_lidar(&lidar.scan(&w, &mut rng));
            }
            w.step(dt, 0.0);
        }
        let wm = p.world_model();
        assert_eq!(wm.len(), 1);
        let obj = &wm[0];
        let truth = w.actor(ActorId(1)).unwrap();
        assert!(
            (obj.position.x - truth.pose.position.x).abs() < 3.0,
            "x: {} vs {}",
            obj.position.x,
            truth.pose.position.x
        );
        assert!(obj.position.y.abs() < 1.0);
        // Relative speed estimate: target does 6 m/s in world coordinates.
        assert!(
            (obj.velocity.x - 6.0).abs() < 2.5,
            "vx = {}",
            obj.velocity.x
        );
        assert_eq!(obj.provenance, Some(ActorId(1)));
    }

    #[test]
    fn noisy_pipeline_still_converges_near_truth() {
        let mut w = world();
        let mut p = Perception::new(PerceptionConfig::default());
        let lidar = Lidar::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let dt = 1.0 / 15.0;
        for seq in 0..90 {
            let frame = capture(&p.config.camera, &w, seq, false);
            p.on_camera_frame(&frame, w.ego().pose.position, &mut rng);
            if seq % 3 == 0 {
                p.on_lidar(&lidar.scan(&w, &mut rng));
            }
            w.step(dt, 0.0);
        }
        let wm = p.world_model();
        assert!(!wm.is_empty(), "object lost");
        let truth = w.actor(ActorId(1)).unwrap();
        let obj = wm
            .iter()
            .min_by(|a, b| {
                a.position
                    .distance(truth.pose.position)
                    .total_cmp(&b.position.distance(truth.pose.position))
            })
            .unwrap();
        // LiDAR refinement keeps the longitudinal error small despite the
        // (large, calibrated) camera ranging noise.
        assert!(
            (obj.position.x - truth.pose.position.x).abs() < 3.0,
            "x: {} vs {}",
            obj.position.x,
            truth.pose.position.x
        );
    }

    #[test]
    fn stale_frames_coast_instead_of_updating() {
        let mut w = world();
        let mut p = Perception::new(ideal_config());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let dt = 1.0 / 15.0;
        let mut last_fresh = None;
        for seq in 0..20 {
            let frame = capture(&p.config.camera, &w, seq, false);
            last_fresh = Some(frame.clone());
            p.on_camera_frame(&frame, w.ego().pose.position, &mut rng);
            w.step(dt, 0.0);
        }
        let tracks_before: Vec<_> = p.tracks().iter().map(|t| (t.id, t.bbox())).collect();
        let t_before = p.last_camera_t();
        // Replay the same (frozen) frame repeatedly: the pipeline must not
        // advance, and velocity estimates must not blow up.
        let frozen = last_fresh.unwrap();
        for _ in 0..10 {
            p.on_camera_frame(&frozen, w.ego().pose.position, &mut rng);
        }
        assert_eq!(p.stale_frames(), 10);
        assert_eq!(p.last_camera_t(), t_before);
        let tracks_after: Vec<_> = p.tracks().iter().map(|t| (t.id, t.bbox())).collect();
        assert_eq!(tracks_before, tracks_after, "coasted, state untouched");
        // Staleness is measured against the wall clock, not frame count.
        let now = t_before.unwrap() + 2.0;
        assert!((p.camera_staleness(now) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_world_model() {
        let mut w = world();
        let mut p = Perception::new(ideal_config());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // Enough frames to confirm the track and pass the fusion
        // registration gate.
        for seq in 0..12 {
            let frame = capture(&p.config.camera, &w, seq, false);
            p.on_camera_frame(&frame, w.ego().pose.position, &mut rng);
            w.step(1.0 / 15.0, 0.0);
        }
        assert!(!p.world_model().is_empty());
        p.reset();
        assert!(p.world_model().is_empty());
        assert!(p.tracks().is_empty());
    }
}
