//! Constant-velocity Kalman filter in image space ("F*" in Fig. 1).
//!
//! State `x = [cx, cy, vx, vy]`, measurement `z = [cx, cy]` (a detection's
//! box center). The filter assumes **zero-mean Gaussian measurement noise**
//! — exactly the assumption §III-B identifies as the vulnerability: an
//! attacker who biases measurements while staying inside ±1σ of the modeled
//! noise walks the state away without ever looking anomalous.

use serde::{Deserialize, Serialize};

type Mat4 = [[f64; 4]; 4];

fn mat4_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for (i, row) in a.iter().enumerate() {
        for j in 0..4 {
            out[i][j] = (0..4).map(|k| row[k] * b[k][j]).sum();
        }
    }
    out
}

fn mat4_transpose(a: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for (i, row) in a.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            out[j][i] = *v;
        }
    }
    out
}

/// Kalman filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KalmanConfig {
    /// 1σ of the white acceleration driving the process model (px/s²).
    pub process_accel: f64,
    /// 1σ measurement noise along image x (px).
    pub measurement_noise_x: f64,
    /// 1σ measurement noise along image y (px).
    pub measurement_noise_y: f64,
    /// Initial velocity variance ((px/s)²).
    pub initial_velocity_var: f64,
}

impl Default for KalmanConfig {
    fn default() -> Self {
        KalmanConfig {
            process_accel: 60.0,
            measurement_noise_x: 12.0,
            measurement_noise_y: 12.0,
            initial_velocity_var: 400.0,
        }
    }
}

/// Constant-velocity Kalman filter over an image-plane point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kalman {
    config: KalmanConfig,
    x: [f64; 4],
    p: Mat4,
}

impl Kalman {
    /// Initializes the filter at a measured position with zero velocity.
    pub fn new(config: KalmanConfig, cx: f64, cy: f64) -> Self {
        let r = config
            .measurement_noise_x
            .max(config.measurement_noise_y)
            .powi(2);
        let mut p = [[0.0; 4]; 4];
        p[0][0] = r;
        p[1][1] = r;
        p[2][2] = config.initial_velocity_var;
        p[3][3] = config.initial_velocity_var;
        Kalman {
            config,
            x: [cx, cy, 0.0, 0.0],
            p,
        }
    }

    /// Estimated position `(cx, cy)`.
    pub fn position(&self) -> (f64, f64) {
        (self.x[0], self.x[1])
    }

    /// Estimated velocity `(vx, vy)` in px/s.
    pub fn velocity(&self) -> (f64, f64) {
        (self.x[2], self.x[3])
    }

    /// Position variance `(var_x, var_y)` (px²).
    pub fn position_variance(&self) -> (f64, f64) {
        (self.p[0][0], self.p[1][1])
    }

    /// Predict step: advance the state `dt` seconds under constant velocity.
    pub fn predict(&mut self, dt: f64) {
        let f: Mat4 = [
            [1.0, 0.0, dt, 0.0],
            [0.0, 1.0, 0.0, dt],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        // x = F x
        let x = self.x;
        self.x = [x[0] + dt * x[2], x[1] + dt * x[3], x[2], x[3]];
        // P = F P Fᵀ + Q (piecewise-constant white acceleration model)
        let fp = mat4_mul(&f, &self.p);
        self.p = mat4_mul(&fp, &mat4_transpose(&f));
        let qa = self.config.process_accel.powi(2);
        let q_pos = 0.25 * dt.powi(4) * qa;
        let q_pv = 0.5 * dt.powi(3) * qa;
        let q_vel = dt.powi(2) * qa;
        for axis in 0..2 {
            self.p[axis][axis] += q_pos;
            self.p[axis][axis + 2] += q_pv;
            self.p[axis + 2][axis] += q_pv;
            self.p[axis + 2][axis + 2] += q_vel;
        }
    }

    /// Update step: fuse a position measurement `(zx, zy)`.
    pub fn update(&mut self, zx: f64, zy: f64) {
        let rx = self.config.measurement_noise_x.powi(2);
        let ry = self.config.measurement_noise_y.powi(2);
        // S = H P Hᵀ + R (2×2, H = [I2 0])
        let s = [
            [self.p[0][0] + rx, self.p[0][1]],
            [self.p[1][0], self.p[1][1] + ry],
        ];
        let det = s[0][0] * s[1][1] - s[0][1] * s[1][0];
        debug_assert!(det.abs() > 1e-12, "singular innovation covariance");
        let s_inv = [
            [s[1][1] / det, -s[0][1] / det],
            [-s[1][0] / det, s[0][0] / det],
        ];
        // K = P Hᵀ S⁻¹ (4×2)
        let mut k = [[0.0f64; 2]; 4];
        for (i, pr) in self.p.iter().enumerate() {
            for j in 0..2 {
                k[i][j] = pr[0] * s_inv[0][j] + pr[1] * s_inv[1][j];
            }
        }
        let y = [zx - self.x[0], zy - self.x[1]];
        for (xi, ki) in self.x.iter_mut().zip(&k) {
            *xi += ki[0] * y[0] + ki[1] * y[1];
        }
        // P = (I − K H) P
        let mut ikh = [[0.0f64; 4]; 4];
        for (i, row) in ikh.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                let kh = if j < 2 { k[i][j] } else { 0.0 };
                *v = f64::from(u8::from(i == j)) - kh;
            }
        }
        self.p = mat4_mul(&ikh, &self.p);
    }

    /// Mahalanobis-free innovation magnitude for a candidate measurement —
    /// how far `z` is from the predicted position, in pixels.
    pub fn innovation(&self, zx: f64, zy: f64) -> f64 {
        (zx - self.x[0]).hypot(zy - self.x[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_at(cx: f64, cy: f64) -> Kalman {
        Kalman::new(KalmanConfig::default(), cx, cy)
    }

    #[test]
    fn converges_to_static_target() {
        let mut kf = filter_at(100.0, 100.0);
        for _ in 0..50 {
            kf.predict(1.0 / 15.0);
            kf.update(120.0, 80.0);
        }
        let (cx, cy) = kf.position();
        assert!((cx - 120.0).abs() < 1.0, "cx {cx}");
        assert!((cy - 80.0).abs() < 1.0, "cy {cy}");
        let (vx, vy) = kf.velocity();
        assert!(vx.abs() < 5.0 && vy.abs() < 5.0);
    }

    #[test]
    fn tracks_constant_velocity() {
        let mut kf = filter_at(0.0, 0.0);
        let dt = 1.0 / 15.0;
        for i in 1..=100 {
            kf.predict(dt);
            kf.update(30.0 * dt * i as f64, 0.0); // 30 px/s along x
        }
        let (vx, _) = kf.velocity();
        assert!((vx - 30.0).abs() < 2.0, "vx {vx}");
    }

    #[test]
    fn prediction_extrapolates() {
        let mut kf = filter_at(0.0, 0.0);
        let dt = 1.0 / 15.0;
        for i in 1..=60 {
            kf.predict(dt);
            kf.update(60.0 * dt * i as f64, 0.0);
        }
        let (x_before, _) = kf.position();
        kf.predict(1.0);
        let (x_after, _) = kf.position();
        assert!((x_after - x_before - 60.0).abs() < 5.0);
    }

    #[test]
    fn uncertainty_grows_without_updates() {
        let mut kf = filter_at(0.0, 0.0);
        let (v0, _) = kf.position_variance();
        for _ in 0..20 {
            kf.predict(1.0 / 15.0);
        }
        let (v1, _) = kf.position_variance();
        assert!(v1 > v0);
    }

    #[test]
    fn update_shrinks_uncertainty() {
        let mut kf = filter_at(0.0, 0.0);
        kf.predict(1.0);
        let (before, _) = kf.position_variance();
        kf.update(0.0, 0.0);
        let (after, _) = kf.position_variance();
        assert!(after < before);
    }

    #[test]
    fn single_update_moves_state_partially() {
        // The Kalman gain is < 1: one biased measurement must not teleport
        // the state — this is why the attacker needs K' consecutive frames.
        let mut kf = filter_at(100.0, 100.0);
        kf.predict(1.0 / 15.0);
        kf.update(150.0, 100.0);
        let (cx, _) = kf.position();
        assert!(cx > 101.0 && cx < 149.0, "cx {cx}");
    }

    #[test]
    fn innovation_distance() {
        let kf = filter_at(10.0, 10.0);
        assert!((kf.innovation(13.0, 14.0) - 5.0).abs() < 1e-9);
    }
}
