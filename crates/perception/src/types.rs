//! Shared perception data types.

use crate::tracker::TrackId;
use av_sensing::bbox::BBox;
use av_simkit::actor::{ActorId, ActorKind};
use av_simkit::math::Vec2;
use serde::{Deserialize, Serialize};

/// One detector output: a classified bounding box measurement `oᵢₜ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Predicted object class.
    pub kind: ActorKind,
    /// Predicted bounding box in image coordinates.
    pub bbox: BBox,
    /// Detector confidence in `[0, 1]`.
    pub score: f64,
    /// Ground-truth provenance of this detection, carried **only for
    /// evaluation bookkeeping** (which actor generated the measurement).
    /// No pipeline logic reads this field — the tracker and fusion associate
    /// purely on geometry, as the real stack must.
    pub provenance: Option<ActorId>,
}

/// How a published world-model object is currently supported by sensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Support {
    /// Camera track with an associated LiDAR return (position from LiDAR).
    CameraAndLidar,
    /// Camera track only (position from the ground transform).
    CameraOnly,
    /// LiDAR-only object that passed the slow registration gate.
    LidarOnly,
}

/// One object in the fused world model `Wt` consumed by planning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldObject {
    /// Stable fused-object identifier.
    pub id: u64,
    /// Object class. LiDAR-only objects are reported as vehicles — the
    /// planner treats unclassified obstacles conservatively.
    pub kind: ActorKind,
    /// Estimated position in world coordinates (m).
    pub position: Vec2,
    /// Estimated velocity (m/s).
    pub velocity: Vec2,
    /// Estimated footprint (length, width) in meters.
    pub extent: (f64, f64),
    /// Current sensor support.
    pub support: Support,
    /// The camera track steering this object, when camera-supported.
    pub track: Option<TrackId>,
    /// Evaluation-only provenance (see [`Detection::provenance`]).
    pub provenance: Option<ActorId>,
}

impl WorldObject {
    /// Lateral interval `[y0, y1]` of the estimated footprint.
    pub fn lateral_extent(&self) -> (f64, f64) {
        let half = self.extent.1 / 2.0;
        (self.position.y - half, self.position.y + half)
    }

    /// Longitudinal interval `[x0, x1]` of the estimated footprint.
    pub fn longitudinal_extent(&self) -> (f64, f64) {
        let half = self.extent.0 / 2.0;
        (self.position.x - half, self.position.x + half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_object_extents() {
        let o = WorldObject {
            id: 1,
            kind: ActorKind::Car,
            position: Vec2::new(10.0, 1.0),
            velocity: Vec2::ZERO,
            extent: (4.0, 2.0),
            support: Support::CameraOnly,
            track: None,
            provenance: None,
        };
        assert_eq!(o.lateral_extent(), (0.0, 2.0));
        assert_eq!(o.longitudinal_extent(), (8.0, 12.0));
    }
}
