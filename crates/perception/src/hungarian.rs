//! Hungarian algorithm ("M" in Fig. 1): minimum-cost bipartite assignment.
//!
//! O(n²·m) potential-based implementation (Kuhn–Munkres with Dijkstra-style
//! row augmentation). Rectangular matrices are supported; forbidden pairs
//! are encoded as `f64::INFINITY` and never reported as assigned.

/// Sentinel used internally in place of `INFINITY` so arithmetic stays finite.
const FORBIDDEN: f64 = 1e30;

/// Solves the assignment problem for a `rows × cols` cost matrix.
///
/// Returns `assignment[row] = Some(col)` for every row matched to a column
/// with finite cost, `None` otherwise. Each column is used at most once. The
/// total cost of the returned assignment is minimal among all maximal
/// matchings over the finite-cost pairs.
///
/// # Panics
///
/// Panics if the rows are not all the same length.
pub fn solve(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(cost.iter().all(|r| r.len() == m), "ragged cost matrix");
    if m == 0 {
        return vec![None; n];
    }

    // The potential algorithm needs rows <= cols; transpose if necessary.
    if n > m {
        let transposed: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..n).map(|i| cost[i][j]).collect())
            .collect();
        let col_assign = solve(&transposed);
        let mut assignment = vec![None; n];
        for (j, a) in col_assign.into_iter().enumerate() {
            if let Some(i) = a {
                assignment[i] = Some(j);
            }
        }
        return assignment;
    }

    let sanitized = |i: usize, j: usize| {
        let c = cost[i][j];
        if c.is_finite() {
            c
        } else {
            FORBIDDEN
        }
    };

    // 1-indexed potentials; way[j] remembers the augmenting path.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row assigned to column j (1-indexed)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = sanitized(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; n];
    for j in 1..=m {
        let i = p[j];
        if i > 0 && cost[i - 1][j - 1].is_finite() && cost[i - 1][j - 1] < FORBIDDEN {
            assignment[i - 1] = Some(j - 1);
        }
    }
    assignment
}

/// Total cost of an assignment over a cost matrix (for tests/benches).
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|j| cost[i][j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_optimal() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = solve(&cost);
        assert_eq!(a, vec![Some(1), Some(0), Some(2)]);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
    }

    #[test]
    fn identity_diagonal() {
        let cost = vec![
            vec![0.0, 9.0, 9.0],
            vec![9.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ];
        assert_eq!(solve(&cost), vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn rectangular_more_cols() {
        let cost = vec![vec![5.0, 1.0, 8.0, 3.0], vec![4.0, 7.0, 2.0, 9.0]];
        let a = solve(&cost);
        assert_eq!(a, vec![Some(1), Some(2)]);
    }

    #[test]
    fn rectangular_more_rows() {
        let cost = vec![vec![5.0, 1.0], vec![4.0, 7.0], vec![0.5, 9.0]];
        let a = solve(&cost);
        // Row 1 must lose: rows 0 and 2 take the two columns.
        assert_eq!(a, vec![Some(1), None, Some(0)]);
    }

    #[test]
    fn forbidden_pairs_never_assigned() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, inf], vec![1.0, inf]];
        let a = solve(&cost);
        assert_eq!(a[0], None);
        assert_eq!(a[1], Some(0));
    }

    #[test]
    fn empty_inputs() {
        assert!(solve(&[]).is_empty());
        assert_eq!(solve(&[vec![], vec![]]), vec![None, None]);
    }

    #[test]
    fn columns_unique() {
        let cost = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]];
        let a = solve(&cost);
        let assigned: Vec<usize> = a.iter().flatten().copied().collect();
        assert_eq!(assigned.len(), 2);
        assert_ne!(assigned[0], assigned[1]);
    }

    #[test]
    fn greedy_is_suboptimal_hungarian_is_not() {
        // Greedy (row-by-row min) picks (0,0)=1 then (1,1)=10 → 11.
        // Optimal is (0,1)=2 + (1,0)=3 → 5.
        let cost = vec![vec![1.0, 2.0], vec![3.0, 10.0]];
        let a = solve(&cost);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
    }
}
