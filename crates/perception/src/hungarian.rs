//! Hungarian algorithm ("M" in Fig. 1): minimum-cost bipartite assignment.
//!
//! O(n²·m) potential-based implementation (Kuhn–Munkres with Dijkstra-style
//! row augmentation). Rectangular matrices are supported; forbidden pairs
//! are encoded as `f64::INFINITY` and never reported as assigned.
//!
//! The solver is allocation-free in steady state: all working storage
//! (flat cost matrix, potentials, path arrays, the transposed mirror for
//! `rows > cols` inputs) lives in a reusable [`HungarianScratch`]. The
//! 15 Hz tracker owns one scratch and reuses it every frame; the
//! [`solve`] convenience wrapper allocates a fresh scratch per call and is
//! intended for tests and one-shot callers.

/// Sentinel used internally in place of `INFINITY` so arithmetic stays
/// finite (the classic big-M encoding: forbidden edges cost `M`, so the
/// minimum-total solution uses as few of them as possible and they are
/// stripped from the reported assignment afterwards).
///
/// The magnitude is a deliberate compromise. `M` must dominate any finite
/// alternating-path cost so a forbidden edge is only ever taken when
/// unavoidable — but f64 has only ~15.9 significant digits, so an `M` that
/// is *too* large erases the finite terms riding on top of it: at the old
/// sentinel of `1e30`, `1e30 + 2.85 == 1e30 + 6.02` exactly, and whenever a
/// contested column forced an augmenting path through a forbidden edge the
/// tie broke arbitrarily, silently keeping a suboptimal finite matching.
/// At `1e9` the unit in the last place is ≈ 2.4e-7, so finite cost
/// differences down to the micro scale survive sentinel arithmetic intact.
/// Callers must keep finite costs ≪ `FORBIDDEN` (association costs are
/// O(1); anything a caller passes at or above the sentinel is treated as
/// forbidden by the final strip).
const FORBIDDEN: f64 = 1e9;

/// Reusable working storage for the assignment solver.
///
/// Holds the flat row-major cost matrix plus every internal array the
/// potential algorithm needs (potentials `u`/`v`, column assignment `p`,
/// augmenting-path memory `way`, Dijkstra state `minv`/`used`, and the
/// transposed mirror used when `rows > cols`). After the first few frames
/// all buffers reach steady-state capacity and [`HungarianScratch::solve`]
/// performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct HungarianScratch {
    rows: usize,
    cols: usize,
    cost: Vec<f64>,
    /// Column-major mirror of `cost`, used when `rows > cols`.
    tcost: Vec<f64>,
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
    /// Per-row flag: does the row contain at least one finite cost?
    row_feasible: Vec<bool>,
    /// Assignment of the (possibly transposed) solved matrix.
    inner: Vec<Option<usize>>,
    assignment: Vec<Option<usize>>,
}

impl HungarianScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new `rows × cols` problem and returns the row-major cost
    /// buffer to fill. Every cell is pre-set to `INFINITY` (forbidden), so
    /// callers only need to write the admissible pairs.
    pub fn begin(&mut self, rows: usize, cols: usize) -> &mut [f64] {
        self.rows = rows;
        self.cols = cols;
        self.cost.clear();
        self.cost.resize(rows * cols, f64::INFINITY);
        &mut self.cost
    }

    /// Solves the problem prepared by [`HungarianScratch::begin`] and
    /// returns `assignment[row] = Some(col)` for every row matched to a
    /// column with finite cost (see [`solve`] for the full contract).
    pub fn solve(&mut self) -> &[Option<usize>] {
        let (n, m) = (self.rows, self.cols);
        self.assignment.clear();
        self.assignment.resize(n, None);
        if n == 0 || m == 0 {
            return &self.assignment;
        }
        // The potential algorithm needs rows <= cols; solve the transposed
        // mirror if necessary and map the column assignment back.
        if n > m {
            self.tcost.clear();
            self.tcost.resize(n * m, 0.0);
            for i in 0..n {
                for j in 0..m {
                    self.tcost[j * n + i] = self.cost[i * m + j];
                }
            }
            solve_rectangular(
                &self.tcost,
                m,
                n,
                &mut self.u,
                &mut self.v,
                &mut self.p,
                &mut self.way,
                &mut self.minv,
                &mut self.used,
                &mut self.row_feasible,
                &mut self.inner,
            );
            for (j, a) in self.inner.iter().enumerate() {
                if let Some(i) = *a {
                    self.assignment[i] = Some(j);
                }
            }
        } else {
            solve_rectangular(
                &self.cost,
                n,
                m,
                &mut self.u,
                &mut self.v,
                &mut self.p,
                &mut self.way,
                &mut self.minv,
                &mut self.used,
                &mut self.row_feasible,
                &mut self.assignment,
            );
        }
        &self.assignment
    }

    /// The assignment computed by the most recent [`HungarianScratch::solve`].
    pub fn assignment(&self) -> &[Option<usize>] {
        &self.assignment
    }
}

/// Core solver over a flat row-major `n × m` matrix with `n <= m`.
///
/// Forbidden (`INFINITY`) pairs participate as big-M edges (see
/// [`FORBIDDEN`]): minimizing the padded total minimizes the number of
/// forbidden edges first and the finite cost second, which is exactly the
/// maximum-cardinality minimum-cost matching over the finite pairs once
/// forbidden edges are stripped from the output. Rows without a single
/// finite entry are additionally excluded from augmentation up front — they
/// could only ever claim a column through a sentinel edge, so skipping them
/// keeps the potentials finite-scale for the rows that matter. Both
/// properties are pinned against exhaustive enumeration by the property
/// suite in `tests/hungarian_props.rs`.
#[allow(clippy::too_many_arguments)]
fn solve_rectangular(
    cost: &[f64],
    n: usize,
    m: usize,
    u: &mut Vec<f64>,
    v: &mut Vec<f64>,
    p: &mut Vec<usize>,
    way: &mut Vec<usize>,
    minv: &mut Vec<f64>,
    used: &mut Vec<bool>,
    row_feasible: &mut Vec<bool>,
    out: &mut Vec<Option<usize>>,
) {
    debug_assert!(n <= m);
    let sanitized = |i: usize, j: usize| {
        let c = cost[i * m + j];
        if c.is_finite() {
            c
        } else {
            FORBIDDEN
        }
    };

    row_feasible.clear();
    row_feasible.extend((0..n).map(|i| cost[i * m..(i + 1) * m].iter().any(|c| c.is_finite())));

    // 1-indexed potentials; way[j] remembers the augmenting path.
    u.clear();
    u.resize(n + 1, 0.0);
    v.clear();
    v.resize(m + 1, 0.0);
    p.clear();
    p.resize(m + 1, 0); // p[j] = row assigned to column j (1-indexed)
    way.clear();
    way.resize(m + 1, 0);

    for i in 1..=n {
        if !row_feasible[i - 1] {
            continue;
        }
        p[0] = i;
        let mut j0 = 0usize;
        minv.clear();
        minv.resize(m + 1, f64::INFINITY);
        used.clear();
        used.resize(m + 1, false);
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = sanitized(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    out.clear();
    out.resize(n, None);
    for j in 1..=m {
        let i = p[j];
        if i > 0 {
            let c = cost[(i - 1) * m + (j - 1)];
            if c.is_finite() && c < FORBIDDEN {
                out[i - 1] = Some(j - 1);
            }
        }
    }
}

/// Solves the assignment problem for a `rows × cols` cost matrix.
///
/// Returns `assignment[row] = Some(col)` for every row matched to a column
/// with finite cost, `None` otherwise. A row with no finite cost at all is
/// never reported as assigned. Each column is used at most once. The
/// returned matching has maximum cardinality over the finite-cost pairs
/// and, among those, minimum total cost (finite costs must stay well below
/// the internal big-M sentinel of `1e9`; see `FORBIDDEN` in this module).
///
/// Allocates a fresh [`HungarianScratch`] per call; hot paths should own a
/// scratch and call [`HungarianScratch::solve`] instead.
///
/// # Panics
///
/// Panics if the rows are not all the same length.
pub fn solve(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(cost.iter().all(|r| r.len() == m), "ragged cost matrix");
    let mut scratch = HungarianScratch::new();
    let buf = scratch.begin(n, m);
    for (i, row) in cost.iter().enumerate() {
        buf[i * m..(i + 1) * m].copy_from_slice(row);
    }
    scratch.solve().to_vec()
}

/// Total cost of an assignment over a cost matrix (for tests/benches).
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|j| cost[i][j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_optimal() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = solve(&cost);
        assert_eq!(a, vec![Some(1), Some(0), Some(2)]);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
    }

    #[test]
    fn identity_diagonal() {
        let cost = vec![
            vec![0.0, 9.0, 9.0],
            vec![9.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ];
        assert_eq!(solve(&cost), vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn rectangular_more_cols() {
        let cost = vec![vec![5.0, 1.0, 8.0, 3.0], vec![4.0, 7.0, 2.0, 9.0]];
        let a = solve(&cost);
        assert_eq!(a, vec![Some(1), Some(2)]);
    }

    #[test]
    fn rectangular_more_rows() {
        let cost = vec![vec![5.0, 1.0], vec![4.0, 7.0], vec![0.5, 9.0]];
        let a = solve(&cost);
        // Row 1 must lose: rows 0 and 2 take the two columns.
        assert_eq!(a, vec![Some(1), None, Some(0)]);
    }

    #[test]
    fn forbidden_pairs_never_assigned() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, inf], vec![1.0, inf]];
        let a = solve(&cost);
        assert_eq!(a[0], None);
        assert_eq!(a[1], Some(0));
    }

    #[test]
    fn all_infinite_row_does_not_degrade_finite_rows() {
        // The forbidden row must neither take a column nor poison the
        // potentials: row 1 still gets its cheapest column.
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, inf], vec![1.0, 2.0]];
        let a = solve(&cost);
        assert_eq!(a, vec![None, Some(0)]);
    }

    #[test]
    fn all_infinite_row_unassigned_in_transposed_branch() {
        // rows > cols exercises the transposed solve; the all-forbidden
        // row stays unassigned and both columns go to the finite rows.
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, inf], vec![1.0, 5.0], vec![4.0, 2.0]];
        let a = solve(&cost);
        assert_eq!(a, vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn all_infinite_matrix_assigns_nothing() {
        let inf = f64::INFINITY;
        for (n, m) in [(2, 3), (3, 2), (3, 3)] {
            let cost = vec![vec![inf; m]; n];
            assert_eq!(solve(&cost), vec![None; n], "{n}x{m}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(solve(&[]).is_empty());
        assert_eq!(solve(&[vec![], vec![]]), vec![None, None]);
    }

    #[test]
    fn columns_unique() {
        let cost = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]];
        let a = solve(&cost);
        let assigned: Vec<usize> = a.iter().flatten().copied().collect();
        assert_eq!(assigned.len(), 2);
        assert_ne!(assigned[0], assigned[1]);
    }

    #[test]
    fn greedy_is_suboptimal_hungarian_is_not() {
        // Greedy (row-by-row min) picks (0,0)=1 then (1,1)=10 → 11.
        // Optimal is (0,1)=2 + (1,0)=3 → 5.
        let cost = vec![vec![1.0, 2.0], vec![3.0, 10.0]];
        let a = solve(&cost);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_solves() {
        // One scratch reused across differently-shaped problems must give
        // the same answers as the allocating wrapper.
        let inf = f64::INFINITY;
        let problems: Vec<Vec<Vec<f64>>> = vec![
            vec![
                vec![4.0, 1.0, 3.0],
                vec![2.0, 0.0, 5.0],
                vec![3.0, 2.0, 2.0],
            ],
            vec![vec![5.0, 1.0], vec![4.0, 7.0], vec![0.5, 9.0]],
            vec![vec![inf, inf], vec![1.0, inf]],
            vec![vec![1.0]],
            vec![vec![inf; 4]; 2],
        ];
        let mut scratch = HungarianScratch::new();
        for cost in &problems {
            let m = cost[0].len();
            let buf = scratch.begin(cost.len(), m);
            for (i, row) in cost.iter().enumerate() {
                buf[i * m..(i + 1) * m].copy_from_slice(row);
            }
            assert_eq!(scratch.solve(), solve(cost).as_slice());
        }
    }

    #[test]
    fn begin_prefills_forbidden() {
        // Cells never written by the caller stay forbidden.
        let mut scratch = HungarianScratch::new();
        let buf = scratch.begin(2, 2);
        buf[0] = 1.0; // row 0 ↔ col 0 only
        assert_eq!(scratch.solve(), &[Some(0), None]);
    }
}
