//! Simulated object detector ("D" in Fig. 1): a YOLOv3 stand-in with
//! calibrated noise.
//!
//! For every visible ground-truth box the detector either (a) stays inside a
//! *misdetection streak* — a run of consecutive frames in which the object is
//! not detected, with streak lengths drawn from the paper's per-class
//! exponential fits — or (b) emits a detection whose center is displaced by
//! Gaussian noise normalized to the box size, exactly the Fig. 5 (c–f)
//! model. The detector never sees actor identities except to keep its
//! per-object streak state and to stamp evaluation provenance.

use crate::calibration::DetectorCalibration;
use crate::types::Detection;
use av_sensing::bbox::BBox;
use av_sensing::frame::CameraFrame;
use av_simkit::actor::ActorId;
use av_simkit::rng;
use rand::Rng;
use std::collections::HashMap;

/// Stochastic detector with per-object misdetection streak state.
#[derive(Debug, Clone)]
pub struct Detector {
    calibration: DetectorCalibration,
    /// Remaining missed frames per object currently in a streak.
    streaks: HashMap<ActorId, u32>,
}

impl Detector {
    /// Creates a detector with the given calibration.
    pub fn new(calibration: DetectorCalibration) -> Self {
        Detector {
            calibration,
            streaks: HashMap::new(),
        }
    }

    /// The active calibration.
    pub fn calibration(&self) -> &DetectorCalibration {
        &self.calibration
    }

    /// Runs the detector on one camera frame.
    ///
    /// Suppressed truth boxes (the attacker's Disappear perturbation) and
    /// boxes occluded beyond the visibility limit produce no detection.
    pub fn detect<R: Rng + ?Sized>(&mut self, frame: &CameraFrame, rng_: &mut R) -> Vec<Detection> {
        let mut out = Vec::with_capacity(frame.truth.len());
        self.detect_into(frame, rng_, &mut out);
        out
    }

    /// Like [`Detector::detect`] but appends into a caller-owned buffer
    /// (cleared first), so the 15 Hz loop reuses one allocation. RNG draw
    /// order is identical to `detect`.
    pub fn detect_into<R: Rng + ?Sized>(
        &mut self,
        frame: &CameraFrame,
        rng_: &mut R,
        out: &mut Vec<Detection>,
    ) {
        out.clear();
        for tb in frame.visible() {
            if tb.bbox.area() < self.calibration.min_box_area {
                continue;
            }
            // Streak state machine: consume an active streak first.
            if let Some(remaining) = self.streaks.get_mut(&tb.actor) {
                *remaining -= 1;
                if *remaining == 0 {
                    self.streaks.remove(&tb.actor);
                }
                continue;
            }
            let class = self.calibration.for_kind(tb.kind);
            if rng::bernoulli(rng_, class.misdetect_start) {
                let len = rng::exponential(
                    rng_,
                    class.misdetect_streak.loc,
                    class.misdetect_streak.lambda,
                )
                .round()
                .max(1.0) as u32;
                if len > 1 {
                    self.streaks.insert(tb.actor, len - 1);
                }
                continue;
            }
            // Detected: displace the center by size-normalized Gaussian noise
            // and jitter the size slightly.
            let w = tb.bbox.width();
            let h = tb.bbox.height();
            let dx = rng::normal(rng_, class.center_x.mean, class.center_x.std_dev) * w;
            let dy = rng::normal(rng_, class.center_y.mean, class.center_y.std_dev) * h;
            let sw = w * (1.0 + rng::normal(rng_, 0.0, class.size_jitter));
            let sh = h * (1.0 + rng::normal(rng_, 0.0, class.size_jitter));
            let (cx, cy) = tb.bbox.center();
            let bbox = BBox::from_center(cx + dx, cy + dy, sw.max(1.0), sh.max(1.0));
            out.push(Detection {
                kind: tb.kind,
                bbox,
                score: rng_.random_range(0.6..0.99),
                provenance: Some(tb.actor),
            });
        }
    }

    /// Clears all streak state (e.g., between runs).
    pub fn reset(&mut self) {
        self.streaks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::DetectorCalibration;
    use av_sensing::camera::Camera;
    use av_sensing::frame::capture;
    use av_simkit::actor::{Actor, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::math::Vec2;
    use av_simkit::road::Road;
    use av_simkit::world::World;
    use rand::SeedableRng;

    fn world() -> World {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(30.0, 0.0),
            5.0,
            Behavior::CruiseStraight { speed: 5.0 },
        ))
        .unwrap();
        w
    }

    #[test]
    fn ideal_detector_reproduces_truth() {
        let mut det = Detector::new(DetectorCalibration::ideal());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let frame = capture(&Camera::default(), &world(), 0, false);
        let dets = det.detect(&frame, &mut rng);
        assert_eq!(dets.len(), 1);
        let truth = frame.truth_for(ActorId(1)).unwrap().bbox;
        assert!(dets[0].bbox.iou(&truth) > 0.99);
        assert_eq!(dets[0].provenance, Some(ActorId(1)));
    }

    #[test]
    fn suppressed_truth_produces_nothing() {
        let mut det = Detector::new(DetectorCalibration::ideal());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut frame = capture(&Camera::default(), &world(), 0, false);
        frame.truth_for_mut(ActorId(1)).unwrap().suppressed = true;
        assert!(det.detect(&frame, &mut rng).is_empty());
    }

    #[test]
    fn noise_has_calibrated_spread() {
        let mut det = Detector::new(DetectorCalibration::paper());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let frame = capture(&Camera::default(), &world(), 0, false);
        let truth = frame.truth_for(ActorId(1)).unwrap().bbox;
        let mut errs = Vec::new();
        for _ in 0..5000 {
            for d in det.detect(&frame, &mut rng) {
                let (cx, _) = d.bbox.center();
                let (tx, _) = truth.center();
                errs.push((cx - tx) / truth.width());
            }
        }
        let n = errs.len() as f64;
        let mean = errs.iter().sum::<f64>() / n;
        let sd = (errs.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / n).sqrt();
        assert!((mean - 0.023).abs() < 0.03, "mean {mean}");
        assert!((sd - 0.464).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn misdetection_streaks_have_exponential_lengths() {
        let mut det = Detector::new(DetectorCalibration::paper());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let frame = capture(&Camera::default(), &world(), 0, false);
        let mut streaks = Vec::new();
        let mut current = 0u32;
        for _ in 0..60_000 {
            let seen = !det.detect(&frame, &mut rng).is_empty();
            if seen {
                if current > 0 {
                    streaks.push(current);
                    current = 0;
                }
            } else {
                current += 1;
            }
        }
        assert!(streaks.len() > 300, "streaks: {}", streaks.len());
        let mean = streaks.iter().map(|&s| f64::from(s)).sum::<f64>() / streaks.len() as f64;
        // Exp(loc=1, λ=0.327) has mean 1 + 1/0.327 ≈ 4.06.
        assert!((mean - 4.06).abs() < 0.6, "mean streak {mean}");
        assert!(streaks.iter().all(|&s| s >= 1));
    }

    #[test]
    fn tiny_boxes_are_not_detected() {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        // A pedestrian near the camera's maximum range projects very small.
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Pedestrian,
            Vec2::new(145.0, 0.0),
            0.0,
            Behavior::Parked,
        ))
        .unwrap();
        let mut det = Detector::new(DetectorCalibration::paper());
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let frame = capture(&Camera::default(), &w, 0, false);
        // The projected box area must be under the detectability threshold.
        if let Some(tb) = frame.truth_for(ActorId(1)) {
            assert!(tb.bbox.area() < 150.0, "area {}", tb.bbox.area());
        }
        assert!(det.detect(&frame, &mut rng).is_empty());
    }

    #[test]
    fn reset_clears_streaks() {
        let mut det = Detector::new(DetectorCalibration::paper());
        det.streaks.insert(ActorId(1), 10);
        det.reset();
        assert!(det.streaks.is_empty());
    }
}
