//! # av-perception — Apollo-style perception stack
//!
//! The tracking-by-detection pipeline of Fig. 1 in the paper, rebuilt over
//! the simulated sensors:
//!
//! ```text
//! camera frame ──► detector ("D") ──► Hungarian matching ("M")
//!                                        │
//!                      Kalman filters ("F*", one per track)
//!                                        │
//!                      ground transform ("T") ──► sensor fusion ──► world model Wt
//!                                                      ▲
//!                                              LiDAR scans
//! ```
//!
//! - [`detector`]: a stochastic stand-in for YOLOv3 whose noise is
//!   **calibrated to the paper's Fig. 5 measurements** — Gaussian bounding
//!   box center error and exponentially distributed continuous-misdetection
//!   streaks, per class ([`calibration`]).
//! - [`hungarian`]: full O(n³) minimum-cost assignment.
//! - [`kalman`]: constant-velocity Kalman filter in image space — the
//!   component whose zero-mean-Gaussian noise assumption the attack exploits
//!   (§III-B "the critical vulnerable component ... is a Kalman filter").
//! - [`tracker`]: multi-object tracker with track lifecycle management.
//! - [`fusion`]: camera–LiDAR fusion with camera classification authority and
//!   slow LiDAR-only (re-)registration, reproducing the asymmetry that makes
//!   pedestrians easier to attack than vehicles (§VI-C).
//! - [`pipeline`]: [`pipeline::Perception`] glues it all together and is the
//!   exact module instantiated twice per run: once inside the ADS, once
//!   inside the malware (which reconstructs the world from the tapped camera
//!   feed alone, §III-D phase 2).

#![warn(missing_docs)]

pub mod calibration;
pub mod detector;
pub mod fusion;
pub mod hungarian;
pub mod kalman;
pub mod pipeline;
pub mod tracker;
pub mod types;

pub use calibration::{ClassCalibration, DetectorCalibration};
pub use detector::Detector;
pub use fusion::{Fusion, FusionConfig};
pub use pipeline::{Perception, PerceptionConfig};
pub use tracker::{Track, TrackId, TrackState, Tracker, TrackerConfig};
pub use types::{Detection, WorldObject};
