//! Multi-object tracker: Hungarian association + per-track Kalman filters.
//!
//! Implements the tracking-by-detection loop of §II-B: each detection is
//! associated with an existing tracker via minimum-cost bipartite matching
//! over an IoU/center-distance cost ("M"), and each track maintains its
//! state with a constant-velocity Kalman filter ("F*"). Track lifecycle
//! follows the usual tentative → confirmed → coasted → deleted scheme.

use crate::calibration::DetectorCalibration;
use crate::hungarian::HungarianScratch;
use crate::kalman::{Kalman, KalmanConfig};
use crate::types::Detection;
use av_sensing::bbox::BBox;
use av_simkit::actor::{ActorId, ActorKind};
use serde::{Deserialize, Serialize};

/// Stable track identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TrackId(pub u64);

/// Track lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackState {
    /// Newly created; not yet reported to fusion.
    Tentative,
    /// Confirmed by enough hits; reported to fusion.
    Confirmed,
    /// Confirmed track currently missing detections (KF coasting).
    Coasting,
}

/// One tracked object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Track {
    /// Track identifier.
    pub id: TrackId,
    /// Object class (fixed at creation from the first detection).
    pub kind: ActorKind,
    /// Lifecycle state.
    pub state: TrackState,
    /// Total matched detections.
    pub hits: u32,
    /// Consecutive missed frames.
    pub misses: u32,
    /// Exponentially smoothed box width (px).
    pub width: f64,
    /// Exponentially smoothed box height (px).
    pub height: f64,
    /// Evaluation-only: provenance of the last matched detection.
    pub provenance: Option<ActorId>,
    kf: Kalman,
}

impl Track {
    /// Current estimated bounding box (KF position + smoothed size).
    pub fn bbox(&self) -> BBox {
        let (cx, cy) = self.kf.position();
        BBox::from_center(cx, cy, self.width, self.height)
    }

    /// Estimated image-plane velocity (px/s).
    pub fn velocity(&self) -> (f64, f64) {
        self.kf.velocity()
    }

    /// Whether the track is reported to fusion.
    pub fn is_confirmed(&self) -> bool {
        matches!(self.state, TrackState::Confirmed | TrackState::Coasting)
    }
}

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Hits required to confirm a track.
    pub confirm_hits: u32,
    /// Consecutive misses before a track is deleted.
    pub max_misses: u32,
    /// Association gate: maximum center distance as a multiple of the
    /// track-box diagonal.
    pub gate_diagonals: f64,
    /// Maximum admissible association cost λ — the threshold the paper's
    /// Eq. (4) constrains the attacker against (`M ≤ λ`).
    pub lambda: f64,
    /// Exponential smoothing factor for box size (0 = frozen, 1 = raw).
    pub size_alpha: f64,
    /// Kalman process/update configuration (measurement noise is rescaled
    /// per class and box size each update).
    pub kalman: KalmanConfig,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            confirm_hits: 3,
            max_misses: 5,
            gate_diagonals: 4.0,
            lambda: 1.8,
            size_alpha: 0.3,
            kalman: KalmanConfig::default(),
        }
    }
}

/// Association cost between a track's predicted box and a detection box.
///
/// `1 − IoU` when the boxes overlap; otherwise `1 + d/gate` where `d` is the
/// center distance and `gate` the admissible radius. `INFINITY` encodes an
/// inadmissible pair (outside the gate or class mismatch). This function is
/// `pub` because the trajectory hijacker evaluates the identical cost when
/// solving Eq. (4).
pub fn association_cost(
    track_bbox: &BBox,
    track_kind: ActorKind,
    det_bbox: &BBox,
    det_kind: ActorKind,
    config: &TrackerConfig,
) -> f64 {
    if track_kind.is_vehicle() != det_kind.is_vehicle() {
        return f64::INFINITY;
    }
    let gate = config.gate_diagonals * track_bbox.width().hypot(track_bbox.height()).max(1.0);
    let dist = track_bbox.center_distance(det_bbox);
    if dist > gate {
        return f64::INFINITY;
    }
    let iou = track_bbox.iou(det_bbox);
    let cost = if iou > 0.0 {
        1.0 - iou
    } else {
        1.0 + dist / gate
    };
    if cost > config.lambda {
        f64::INFINITY
    } else {
        cost
    }
}

/// Multi-object tracker.
#[derive(Debug, Clone)]
pub struct Tracker {
    config: TrackerConfig,
    calibration: DetectorCalibration,
    tracks: Vec<Track>,
    next_id: u64,
    scratch: HungarianScratch,
    det_used: Vec<bool>,
}

impl Tracker {
    /// Creates a tracker; `calibration` provides the per-class measurement
    /// noise that sizes each track's Kalman `R`.
    pub fn new(config: TrackerConfig, calibration: DetectorCalibration) -> Self {
        Tracker {
            config,
            calibration,
            tracks: Vec::new(),
            next_id: 0,
            scratch: HungarianScratch::new(),
            det_used: Vec::new(),
        }
    }

    /// The tracker configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// All live tracks.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Confirmed (fusion-visible) tracks.
    pub fn confirmed(&self) -> impl Iterator<Item = &Track> {
        self.tracks.iter().filter(|t| t.is_confirmed())
    }

    /// Advances the tracker one camera frame: predicts all tracks by `dt`,
    /// associates `detections`, updates matched tracks, ages unmatched ones,
    /// and spawns tentative tracks for unmatched detections.
    pub fn step(&mut self, dt: f64, detections: &[Detection]) {
        // Destructure for disjoint field borrows: the cost fill reads
        // `tracks` while writing into `scratch`, and the update loop below
        // mutates `tracks` while `assignment` still borrows `scratch`.
        let Self {
            config,
            tracks,
            scratch,
            det_used,
            ..
        } = self;

        for track in tracks.iter_mut() {
            track.kf.predict(dt);
        }

        // Cost matrix (reused flat buffer) and optimal assignment.
        let m = detections.len();
        let cost = scratch.begin(tracks.len(), m);
        for (ti, t) in tracks.iter().enumerate() {
            let tb = t.bbox();
            for (di, d) in detections.iter().enumerate() {
                cost[ti * m + di] = association_cost(&tb, t.kind, &d.bbox, d.kind, config);
            }
        }
        let assignment = scratch.solve();

        det_used.clear();
        det_used.resize(detections.len(), false);
        for (ti, a) in assignment.iter().enumerate() {
            let track = &mut tracks[ti];
            match a {
                Some(di) => {
                    det_used[*di] = true;
                    let det = &detections[*di];
                    let (cx, cy) = det.bbox.center();
                    track.kf.update(cx, cy);
                    let alpha = config.size_alpha;
                    track.width += alpha * (det.bbox.width() - track.width);
                    track.height += alpha * (det.bbox.height() - track.height);
                    track.hits += 1;
                    track.misses = 0;
                    track.provenance = det.provenance;
                    track.state = if track.hits >= config.confirm_hits {
                        TrackState::Confirmed
                    } else {
                        TrackState::Tentative
                    };
                }
                None => {
                    track.misses += 1;
                    if track.state == TrackState::Confirmed {
                        track.state = TrackState::Coasting;
                    }
                }
            }
        }
        self.tracks.retain(|t| t.misses <= self.config.max_misses);

        for (di, det) in detections.iter().enumerate() {
            if self.det_used[di] {
                continue;
            }
            let (cx, cy) = det.bbox.center();
            let class = self.calibration.for_kind(det.kind);
            let mut kcfg = self.config.kalman;
            kcfg.measurement_noise_x =
                (class.center_x.std_dev * det.bbox.width()).max(kcfg.measurement_noise_x);
            kcfg.measurement_noise_y =
                (class.center_y.std_dev * det.bbox.height()).max(kcfg.measurement_noise_y);
            self.tracks.push(Track {
                id: TrackId(self.next_id),
                kind: det.kind,
                state: TrackState::Tentative,
                hits: 1,
                misses: 0,
                width: det.bbox.width(),
                height: det.bbox.height(),
                provenance: det.provenance,
                kf: Kalman::new(kcfg, cx, cy),
            });
            self.next_id += 1;
        }
    }

    /// Removes all tracks and restarts the id sequence (between runs), so a
    /// reused tracker behaves exactly like a freshly constructed one.
    pub fn reset(&mut self) {
        self.tracks.clear();
        self.next_id = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1.0 / 15.0;

    fn det(cx: f64, cy: f64, w: f64, h: f64, kind: ActorKind) -> Detection {
        Detection {
            kind,
            bbox: BBox::from_center(cx, cy, w, h),
            score: 0.9,
            provenance: Some(ActorId(42)),
        }
    }

    fn tracker() -> Tracker {
        Tracker::new(TrackerConfig::default(), DetectorCalibration::ideal())
    }

    #[test]
    fn track_confirms_after_three_hits() {
        let mut t = tracker();
        for i in 0..3 {
            t.step(DT, &[det(100.0, 100.0, 50.0, 40.0, ActorKind::Car)]);
            let tr = &t.tracks()[0];
            if i < 2 {
                assert_eq!(tr.state, TrackState::Tentative);
            } else {
                assert_eq!(tr.state, TrackState::Confirmed);
            }
        }
        assert_eq!(t.confirmed().count(), 1);
    }

    #[test]
    fn track_deleted_after_max_misses() {
        let mut t = tracker();
        for _ in 0..3 {
            t.step(DT, &[det(100.0, 100.0, 50.0, 40.0, ActorKind::Car)]);
        }
        for _ in 0..6 {
            t.step(DT, &[]);
        }
        assert!(t.tracks().is_empty());
    }

    #[test]
    fn coasting_track_predicts_forward() {
        let mut t = tracker();
        // Establish a moving track (100 → 148 px over 4 frames at 180 px/s).
        for i in 0..12 {
            let x = 100.0 + 12.0 * i as f64;
            t.step(DT, &[det(x, 100.0, 50.0, 40.0, ActorKind::Car)]);
        }
        let x_before = t.tracks()[0].bbox().center().0;
        t.step(DT, &[]); // miss
        let tr = &t.tracks()[0];
        assert_eq!(tr.state, TrackState::Coasting);
        assert!(
            tr.bbox().center().0 > x_before,
            "keeps moving while coasting"
        );
    }

    #[test]
    fn two_objects_keep_identities() {
        let mut t = tracker();
        for i in 0..10 {
            let dx = 5.0 * i as f64;
            t.step(
                DT,
                &[
                    det(100.0 + dx, 100.0, 40.0, 30.0, ActorKind::Car),
                    det(500.0 - dx, 100.0, 40.0, 30.0, ActorKind::Car),
                ],
            );
        }
        assert_eq!(t.tracks().len(), 2);
        let ids: Vec<TrackId> = t.tracks().iter().map(|tr| tr.id).collect();
        assert_eq!(ids, vec![TrackId(0), TrackId(1)]);
        // The two tracks straddle the meeting point but never swapped.
        let xs: Vec<f64> = t.tracks().iter().map(|tr| tr.bbox().center().0).collect();
        assert!(xs[0] < xs[1]);
    }

    #[test]
    fn class_mismatch_is_inadmissible() {
        let cfg = TrackerConfig::default();
        let b = BBox::from_center(0.0, 0.0, 10.0, 10.0);
        let c = association_cost(&b, ActorKind::Car, &b, ActorKind::Pedestrian, &cfg);
        assert!(c.is_infinite());
        let ok = association_cost(&b, ActorKind::Car, &b, ActorKind::Truck, &cfg);
        assert!(ok < 0.01, "vehicle classes are compatible");
    }

    #[test]
    fn gate_rejects_distant_detections() {
        let cfg = TrackerConfig::default();
        let track = BBox::from_center(0.0, 0.0, 10.0, 10.0);
        let near = BBox::from_center(30.0, 0.0, 10.0, 10.0);
        let far = BBox::from_center(100.0, 0.0, 10.0, 10.0);
        assert!(association_cost(&track, ActorKind::Car, &near, ActorKind::Car, &cfg).is_finite());
        assert!(association_cost(&track, ActorKind::Car, &far, ActorKind::Car, &cfg).is_infinite());
    }

    #[test]
    fn zero_iou_costs_more_than_any_overlap() {
        let cfg = TrackerConfig::default();
        let track = BBox::from_center(0.0, 0.0, 10.0, 10.0);
        let overlapping = BBox::from_center(9.0, 0.0, 10.0, 10.0);
        let disjoint = BBox::from_center(15.0, 0.0, 10.0, 10.0);
        let c1 = association_cost(&track, ActorKind::Car, &overlapping, ActorKind::Car, &cfg);
        let c2 = association_cost(&track, ActorKind::Car, &disjoint, ActorKind::Car, &cfg);
        assert!(c1 < 1.0 && c2 > 1.0 && c2 < cfg.lambda);
    }

    #[test]
    fn provenance_tracks_last_match() {
        let mut t = tracker();
        t.step(DT, &[det(100.0, 100.0, 50.0, 40.0, ActorKind::Car)]);
        assert_eq!(t.tracks()[0].provenance, Some(ActorId(42)));
    }

    #[test]
    fn reset_clears_tracks() {
        let mut t = tracker();
        t.step(DT, &[det(100.0, 100.0, 50.0, 40.0, ActorKind::Car)]);
        t.reset();
        assert!(t.tracks().is_empty());
    }
}
