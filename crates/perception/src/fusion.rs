//! Camera–LiDAR sensor fusion producing the world model `Wt`.
//!
//! Fusion follows Apollo-5.0-style *camera primacy for camera-born objects*:
//!
//! 1. **Camera tracks are authoritative.** Every confirmed camera track is
//!    published immediately; its trajectory in the world model follows the
//!    camera (classification and lateral motion come from the camera
//!    pipeline). An associated LiDAR return refines the *longitudinal*
//!    position — LiDAR ranging is far better than mono-camera ranging.
//! 2. **LiDAR sustains but cannot steer.** If the camera track dies, a
//!    matching LiDAR return keeps the object published for a short sustain
//!    window, after which the object is dropped as stale.
//! 3. **LiDAR-only evidence registers slowly.** Returns that match no
//!    published object accumulate as candidates and are only published after
//!    `lidar_register` *consecutive* scans. This is the registration delay
//!    the paper observes (§VI-C): it is why attacks against vehicles must
//!    hold the perturbation for tens of frames while pedestrian attacks —
//!    no LiDAR corroboration at range — need only a handful.
//!
//! The published objects carry an alpha–beta-filtered velocity estimate used
//! by planning (closing speed) and by the malware's scenario matcher.

use crate::tracker::TrackId;
use crate::types::{Support, WorldObject};
use av_sensing::lidar::LidarScan;
use av_simkit::actor::{ActorId, ActorKind, Size};
use av_simkit::math::Vec2;
use serde::{Deserialize, Serialize};

/// One camera-pipeline observation handed to fusion: a confirmed track
/// back-projected to the ground plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraObservation {
    /// The camera track this observation comes from.
    pub track: TrackId,
    /// Track class.
    pub kind: ActorKind,
    /// Ground-plane position in world coordinates (m).
    pub position: Vec2,
    /// Evaluation-only provenance.
    pub provenance: Option<ActorId>,
}

/// Fusion configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Camera–LiDAR association gate (m).
    pub assoc_gate: f64,
    /// LiDAR scans a camera-born object survives after losing its track.
    pub lidar_sustain: u32,
    /// Consecutive LiDAR scans required to publish a LiDAR-only object.
    pub lidar_register: u32,
    /// Camera frames an object survives with neither camera nor LiDAR.
    pub orphan_grace: u32,
    /// Consecutive camera updates a *new* camera-born object needs before
    /// it is published (fusion must re-establish a track that reappears
    /// after a gap — this is what keeps the EV blind for a moment after an
    /// attack window closes).
    pub camera_register: u32,
    /// Alpha gain of the position/velocity filter.
    pub alpha: f64,
    /// Beta gain of the position/velocity filter.
    pub beta: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            assoc_gate: 2.5,
            lidar_sustain: 2,
            lidar_register: 40,
            orphan_grace: 3,
            camera_register: 8,
            alpha: 0.4,
            beta: 0.09,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    id: u64,
    kind: ActorKind,
    /// Consecutive camera updates so far (for the registration gate).
    camera_confirms: u32,
    /// Once published, an entry stays published while it lives.
    established: bool,
    track: Option<TrackId>,
    position: Vec2,
    velocity: Vec2,
    extent: (f64, f64),
    last_update_t: f64,
    /// LiDAR scans since the camera track vanished (sustain counter).
    scans_without_camera: u32,
    /// Camera frames with neither sensor matching.
    orphan_frames: u32,
    /// Consecutive LiDAR scans without a matching return.
    lidar_misses: u32,
    lidar_supported: bool,
    provenance: Option<ActorId>,
}

/// One alpha–beta filter step along a single axis.
fn ab_update(pos: &mut f64, vel: &mut f64, z: f64, dt: f64, alpha: f64, beta: f64) {
    let predicted = *pos + *vel * dt;
    let residual = z - predicted;
    *pos = predicted + alpha * residual;
    *vel += (beta / dt) * residual;
}

impl Entry {
    /// Fuses a camera position measurement. While LiDAR supports the entry,
    /// the camera's (noisy, mono-ranging) longitudinal component is nearly
    /// ignored — LiDAR owns the range, the camera owns the lateral motion.
    fn camera_update(&mut self, z: Vec2, t: f64, alpha: f64, beta: f64) {
        // Clamp dt: co-timed sensor callbacks must not explode the beta/dt
        // velocity gain.
        let dt = (t - self.last_update_t).max(1.0 / av_simkit::units::SIM_HZ);
        if self.lidar_supported {
            // LiDAR owns the range entirely; just coast x between scans.
            self.position.x += self.velocity.x * dt;
        } else {
            ab_update(
                &mut self.position.x,
                &mut self.velocity.x,
                z.x,
                dt,
                alpha,
                beta,
            );
        }
        ab_update(
            &mut self.position.y,
            &mut self.velocity.y,
            z.y,
            dt,
            alpha,
            beta,
        );
        self.last_update_t = t;
    }

    /// Fuses a full LiDAR position measurement (sustain mode).
    fn lidar_update(&mut self, z: Vec2, t: f64, alpha: f64, beta: f64) {
        let dt = (t - self.last_update_t).max(0.05);
        ab_update(
            &mut self.position.x,
            &mut self.velocity.x,
            z.x,
            dt,
            alpha,
            beta,
        );
        ab_update(
            &mut self.position.y,
            &mut self.velocity.y,
            z.y,
            dt,
            alpha,
            beta,
        );
        self.last_update_t = t;
    }

    /// Fuses a LiDAR range refinement (camera still steering).
    fn lidar_refine_x(&mut self, zx: f64, t: f64) {
        // Velocity gain is normalized by the nominal scan period, not the
        // (possibly ~0) wall-clock gap to the co-timed camera update.
        let nominal = 1.0 / av_simkit::units::LIDAR_HZ;
        self.position += self.velocity * ((t - self.last_update_t).max(0.0));
        let residual = zx - self.position.x;
        self.position.x += 0.7 * residual;
        self.velocity.x += (0.35 / nominal) * residual;
        self.last_update_t = t;
    }

    fn coast_to(&mut self, t: f64) {
        let dt = (t - self.last_update_t).max(0.0);
        self.position += self.velocity * dt;
        self.last_update_t = t;
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    position: Vec2,
    velocity: Vec2,
    extent: (f64, f64),
    count: u32,
    matched_this_scan: bool,
    last_t: f64,
}

/// Camera–LiDAR fusion state machine.
#[derive(Debug, Clone)]
pub struct Fusion {
    config: FusionConfig,
    entries: Vec<Entry>,
    candidates: Vec<Candidate>,
    next_id: u64,
    /// Reused per-call match flags (camera observations / LiDAR returns).
    matched: Vec<bool>,
}

impl Fusion {
    /// Creates an empty fusion stage.
    pub fn new(config: FusionConfig) -> Self {
        Fusion {
            config,
            entries: Vec::new(),
            candidates: Vec::new(),
            next_id: 0,
            matched: Vec::new(),
        }
    }

    /// The fusion configuration.
    pub fn config(&self) -> &FusionConfig {
        &self.config
    }

    /// Ingests the camera pipeline's confirmed tracks at time `t`.
    pub fn on_camera(&mut self, observations: &[CameraObservation], t: f64) {
        let mut claimed = std::mem::take(&mut self.matched);
        claimed.clear();
        claimed.resize(observations.len(), false);

        // Update entries that already follow a camera track.
        for entry in &mut self.entries {
            let Some(track) = entry.track else { continue };
            if let Some((i, obs)) = observations
                .iter()
                .enumerate()
                .find(|(_, o)| o.track == track)
            {
                claimed[i] = true;
                entry.camera_update(obs.position, t, self.config.alpha, self.config.beta);
                entry.kind = obs.kind;
                entry.provenance = obs.provenance;
                entry.scans_without_camera = 0;
                entry.orphan_frames = 0;
                entry.camera_confirms += 1;
                if entry.camera_confirms >= self.config.camera_register {
                    entry.established = true;
                }
            } else {
                entry.track = None; // track died; LiDAR sustain takes over
            }
        }

        // Remaining observations: adopt the nearest track-less entry within
        // the gate (a re-born track for the same physical object), else
        // publish a fresh object (camera authority).
        for (i, obs) in observations.iter().enumerate() {
            if claimed[i] {
                continue;
            }
            let adopt = self
                .entries
                .iter_mut()
                .filter(|e| e.track.is_none())
                .map(|e| {
                    let d = e.position.distance(obs.position);
                    (e, d)
                })
                .filter(|(_, d)| *d <= self.config.assoc_gate)
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match adopt {
                Some((entry, _)) => {
                    entry.track = Some(obs.track);
                    entry.kind = obs.kind;
                    entry.camera_update(obs.position, t, self.config.alpha, self.config.beta);
                    entry.provenance = obs.provenance;
                    entry.scans_without_camera = 0;
                    entry.orphan_frames = 0;
                    entry.camera_confirms += 1;
                }
                None => {
                    let size = Size::for_kind(obs.kind);
                    self.entries.push(Entry {
                        id: self.next_id,
                        kind: obs.kind,
                        camera_confirms: 1,
                        established: self.config.camera_register <= 1,
                        track: Some(obs.track),
                        position: obs.position,
                        velocity: Vec2::ZERO,
                        extent: (size.length, size.width),
                        last_update_t: t,
                        scans_without_camera: 0,
                        orphan_frames: 0,
                        lidar_misses: 0,
                        lidar_supported: false,
                        provenance: obs.provenance,
                    });
                    self.next_id += 1;
                }
            }
        }

        // Entries with no sensor support at all age out quickly.
        for entry in &mut self.entries {
            if entry.track.is_none() && !entry.lidar_supported {
                entry.orphan_frames += 1;
            }
        }
        let grace = self.config.orphan_grace;
        self.entries
            .retain(|e| e.track.is_some() || e.lidar_supported || e.orphan_frames <= grace);
        self.matched = claimed;
    }

    /// Ingests a LiDAR scan.
    pub fn on_lidar(&mut self, scan: &LidarScan) {
        let t = scan.t;
        let gate = self.config.assoc_gate;
        let mut used = std::mem::take(&mut self.matched);
        used.clear();
        used.resize(scan.objects.len(), false);

        for entry in &mut self.entries {
            let nearest = scan
                .objects
                .iter()
                .enumerate()
                .filter(|(i, _)| !used[*i])
                .map(|(i, o)| (i, o, entry.position.distance(o.position)))
                .filter(|(_, _, d)| *d <= gate)
                .min_by(|a, b| a.2.total_cmp(&b.2));
            match nearest {
                Some((i, obj, _)) => {
                    used[i] = true;
                    entry.lidar_misses = 0;
                    entry.lidar_supported = true;
                    entry.extent = obj.extent;
                    entry.orphan_frames = 0;
                    if entry.track.is_some() {
                        // Camera steers; LiDAR refines the longitudinal range.
                        entry.lidar_refine_x(obj.position.x, t);
                    } else {
                        // Sustain mode: LiDAR holds the object in place.
                        entry.lidar_update(obj.position, t, self.config.alpha, self.config.beta);
                        entry.scans_without_camera += 1;
                    }
                }
                None => {
                    entry.lidar_supported = false;
                    entry.lidar_misses += 1;
                    if entry.track.is_none() {
                        entry.coast_to(t);
                        entry.scans_without_camera += 1;
                    }
                }
            }
        }
        // Camera-born entries that lost their track survive on LiDAR only
        // briefly; LiDAR-born entries live as long as LiDAR keeps seeing
        // them (they already waited out the slow registration gate).
        let sustain = self.config.lidar_sustain;
        self.entries.retain(|e| {
            if e.track.is_some() {
                true
            } else if e.camera_confirms == 0 {
                e.lidar_misses <= 3
            } else {
                e.scans_without_camera <= sustain
            }
        });

        // Unexplained returns feed the slow LiDAR-only registration path.
        for candidate in &mut self.candidates {
            candidate.matched_this_scan = false;
        }
        for (i, obj) in scan.objects.iter().enumerate() {
            if used[i] {
                continue;
            }
            let matched = self
                .candidates
                .iter_mut()
                .filter(|c| !c.matched_this_scan)
                .map(|c| {
                    let dt = (t - c.last_t).max(1e-3);
                    let d = (c.position + c.velocity * dt).distance(obj.position);
                    (c, d)
                })
                .filter(|(_, d)| *d <= gate)
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match matched {
                Some((c, _)) => {
                    let dt = (t - c.last_t).max(1e-3);
                    let v = (obj.position - c.position) / dt;
                    c.velocity = c.velocity.lerp(v, 0.5);
                    c.position = obj.position;
                    c.extent = obj.extent;
                    c.count += 1;
                    c.matched_this_scan = true;
                    c.last_t = t;
                }
                None => self.candidates.push(Candidate {
                    position: obj.position,
                    velocity: Vec2::ZERO,
                    extent: obj.extent,
                    count: 1,
                    matched_this_scan: true,
                    last_t: t,
                }),
            }
        }
        // Candidates must be *consecutive*: drop any that skipped this scan.
        self.candidates.retain(|c| c.matched_this_scan);

        // Promote candidates that survived the registration delay.
        let register = self.config.lidar_register;
        let mut promoted = Vec::new();
        self.candidates.retain(|c| {
            if c.count >= register {
                promoted.push(c.clone());
                false
            } else {
                true
            }
        });
        for c in promoted {
            self.entries.push(Entry {
                id: self.next_id,
                // LiDAR cannot classify; unknown obstacles are treated as
                // vehicles by planning (conservative).
                kind: ActorKind::Car,
                camera_confirms: 0,
                established: true, // already waited out the LiDAR gate
                track: None,
                position: c.position,
                velocity: c.velocity,
                extent: c.extent,
                last_update_t: t,
                scans_without_camera: 0,
                orphan_frames: 0,
                lidar_misses: 0,
                lidar_supported: true,
                provenance: None,
            });
            self.next_id += 1;
        }
        self.matched = used;
    }

    /// The current world model.
    pub fn world_model(&self) -> Vec<WorldObject> {
        self.entries
            .iter()
            .filter(|e| e.established)
            .map(|e| WorldObject {
                id: e.id,
                kind: e.kind,
                position: e.position,
                velocity: e.velocity,
                extent: e.extent,
                support: match (e.track.is_some(), e.lidar_supported) {
                    (true, true) => Support::CameraAndLidar,
                    (true, false) => Support::CameraOnly,
                    (false, _) => Support::LidarOnly,
                },
                track: e.track,
                provenance: e.provenance,
            })
            .collect()
    }

    /// Clears all state and restarts the id sequence (between runs), so a
    /// reused fusion stage behaves exactly like a freshly constructed one.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.candidates.clear();
        self.next_id = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_sensing::lidar::LidarObject;

    fn obs(track: u64, x: f64, y: f64, kind: ActorKind) -> CameraObservation {
        CameraObservation {
            track: TrackId(track),
            kind,
            position: Vec2::new(x, y),
            provenance: Some(ActorId(1)),
        }
    }

    /// Feeds `o` for enough camera frames to pass the registration gate,
    /// ending at time `t0`.
    fn establish(f: &mut Fusion, o: CameraObservation, t0: f64) {
        let n = f.config.camera_register;
        for i in 0..n {
            let t = t0 - f64::from(n - 1 - i) / 15.0;
            f.on_camera(&[o], t);
        }
    }

    fn scan(t: f64, positions: &[(f64, f64)]) -> LidarScan {
        LidarScan {
            t,
            objects: positions
                .iter()
                .map(|&(x, y)| LidarObject {
                    position: Vec2::new(x, y),
                    extent: (4.6, 1.9),
                })
                .collect(),
        }
    }

    #[test]
    fn camera_track_publishes_after_registration_gate() {
        let mut f = Fusion::new(FusionConfig::default());
        let o = obs(0, 30.0, 0.0, ActorKind::Car);
        let n = f.config.camera_register;
        for i in 0..n {
            assert!(f.world_model().is_empty(), "unpublished before the gate");
            f.on_camera(&[o], f64::from(i) / 15.0);
        }
        let wm = f.world_model();
        assert_eq!(wm.len(), 1);
        assert_eq!(wm[0].support, Support::CameraOnly);
        assert_eq!(wm[0].kind, ActorKind::Car);
    }

    #[test]
    fn lidar_refines_longitudinal_only() {
        let mut f = Fusion::new(FusionConfig::default());
        establish(&mut f, obs(0, 31.5, 0.4, ActorKind::Car), 0.0);
        f.on_lidar(&scan(0.05, &[(30.0, 0.0)]));
        let wm = f.world_model();
        assert_eq!(wm[0].support, Support::CameraAndLidar);
        assert!(
            (wm[0].position.x - 30.0).abs() < 0.5,
            "LiDAR range used: {}",
            wm[0].position.x
        );
        assert!((wm[0].position.y - 0.4).abs() < 1e-9, "camera lateral kept");
    }

    #[test]
    fn diverged_camera_keeps_steering_object() {
        // A Move_Out attack walks the camera track laterally; the published
        // object must follow the camera even once LiDAR stops matching.
        let mut f = Fusion::new(FusionConfig::default());
        let mut t = 0.0;
        for i in 0..30 {
            let y = 0.15 * f64::from(i); // drift to 4.35 m
            f.on_camera(&[obs(0, 30.0, y, ActorKind::Car)], t);
            if i % 3 == 2 {
                f.on_lidar(&scan(t + 0.01, &[(30.0, 0.0)]));
            }
            t += 1.0 / 15.0;
        }
        let wm = f.world_model();
        let steered = wm.iter().find(|o| o.support != Support::LidarOnly).unwrap();
        assert!(
            steered.position.y > 2.5,
            "object followed camera: y = {}",
            steered.position.y
        );
    }

    #[test]
    fn lidar_only_registration_is_slow() {
        let cfg = FusionConfig::default();
        let mut f = Fusion::new(cfg);
        let mut t = 0.0;
        for i in 0..cfg.lidar_register {
            f.on_lidar(&scan(t, &[(40.0, 0.0)]));
            t += 0.1;
            if i < cfg.lidar_register - 1 {
                assert!(
                    f.world_model().is_empty(),
                    "published too early at scan {i}"
                );
            }
        }
        let wm = f.world_model();
        assert_eq!(wm.len(), 1);
        assert_eq!(wm[0].support, Support::LidarOnly);
        assert_eq!(
            wm[0].kind,
            ActorKind::Car,
            "unknown obstacles reported as vehicles"
        );
    }

    #[test]
    fn candidate_requires_consecutive_scans() {
        let cfg = FusionConfig::default();
        let mut f = Fusion::new(cfg);
        for i in 0..200u32 {
            // A return that appears only every other scan never registers.
            let objs: &[(f64, f64)] = if i % 2 == 0 { &[(40.0, 0.0)] } else { &[] };
            f.on_lidar(&scan(f64::from(i) * 0.1, objs));
        }
        assert!(f.world_model().is_empty());
    }

    #[test]
    fn lidar_sustains_then_drops_after_camera_death() {
        let cfg = FusionConfig::default();
        let mut f = Fusion::new(cfg);
        establish(&mut f, obs(0, 30.0, 0.0, ActorKind::Car), 0.0);
        // Camera vanishes (Disappear attack); LiDAR keeps returning.
        let mut t = 0.1;
        f.on_camera(&[], t);
        for i in 0..cfg.lidar_sustain {
            f.on_lidar(&scan(t, &[(30.0, 0.0)]));
            t += 0.1;
            assert_eq!(f.world_model().len(), 1, "sustained at scan {i}");
        }
        f.on_lidar(&scan(t, &[(30.0, 0.0)]));
        assert!(f.world_model().is_empty(), "dropped after sustain window");
    }

    #[test]
    fn camera_only_object_drops_quickly_without_camera() {
        let cfg = FusionConfig::default();
        let mut f = Fusion::new(cfg);
        establish(&mut f, obs(0, 40.0, 0.0, ActorKind::Pedestrian), 0.0);
        let mut t = 1.0 / 15.0;
        for _ in 0..cfg.orphan_grace {
            f.on_camera(&[], t);
            assert_eq!(f.world_model().len(), 1);
            t += 1.0 / 15.0;
        }
        f.on_camera(&[], t);
        assert!(f.world_model().is_empty());
    }

    #[test]
    fn reborn_track_adopts_existing_entry() {
        let mut f = Fusion::new(FusionConfig::default());
        establish(&mut f, obs(0, 30.0, 0.0, ActorKind::Car), 0.0);
        let id0 = f.world_model()[0].id;
        // Track 0 dies, track 7 appears at the same place one frame later:
        // the established entry is adopted, no re-registration delay.
        f.on_camera(&[obs(7, 30.3, 0.0, ActorKind::Car)], 1.0 / 15.0);
        let wm = f.world_model();
        assert_eq!(wm.len(), 1, "no duplicate object");
        assert_eq!(wm[0].id, id0, "same fused identity");
    }

    #[test]
    fn velocity_estimate_converges() {
        let mut f = Fusion::new(FusionConfig::default());
        let dt = 1.0 / 15.0;
        for i in 0..60 {
            let t = dt * f64::from(i);
            f.on_camera(&[obs(0, 30.0 + 5.0 * t, 0.0, ActorKind::Car)], t);
        }
        let v = f.world_model()[0].velocity;
        assert!((v.x - 5.0).abs() < 1.0, "vx = {}", v.x);
    }
}
