//! Property-based tests for the perception stack.

use av_perception::hungarian::{assignment_cost, solve};
use av_perception::kalman::{Kalman, KalmanConfig};
use proptest::prelude::*;

/// Brute-force optimal assignment for small matrices.
fn brute_force(cost: &[Vec<f64>]) -> f64 {
    let m = cost.first().map_or(0, Vec::len);
    let cols: Vec<usize> = (0..m).collect();
    let mut best = f64::INFINITY;
    // Permutations of column subsets of size min(n, m).
    fn recurse(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
        let n = cost.len();
        if row == n {
            *best = best.min(acc);
            return;
        }
        // Option: leave this row unassigned only if more rows than columns.
        let m = used.len();
        let assigned = used.iter().filter(|&&u| u).count();
        if n - row > m - assigned {
            recurse(cost, row + 1, used, acc, best);
        }
        for j in 0..m {
            if !used[j] && cost[row][j].is_finite() {
                used[j] = true;
                recurse(cost, row + 1, used, acc + cost[row][j], best);
                used[j] = false;
            }
        }
        // Rows may also stay unassigned when every remaining pair is
        // forbidden; cover that by always allowing skip for finite search.
        if cost[row].iter().all(|c| !c.is_finite()) {
            recurse(cost, row + 1, used, acc, best);
        }
    }
    let mut used = vec![false; cols.len()];
    recurse(cost, 0, &mut used, 0.0, &mut best);
    best
}

fn arb_cost(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..100.0f64, m), n)
}

proptest! {
    /// The Hungarian solver matches brute force on every small instance.
    #[test]
    fn hungarian_is_optimal(cost in arb_cost(4, 4)) {
        let assignment = solve(&cost);
        let total = assignment_cost(&cost, &assignment);
        let best = brute_force(&cost);
        prop_assert!((total - best).abs() < 1e-6, "hungarian {total} vs brute {best}");
    }

    #[test]
    fn hungarian_is_optimal_rectangular(cost in arb_cost(3, 5)) {
        let assignment = solve(&cost);
        // Every row must be matched when columns are plentiful and finite.
        prop_assert!(assignment.iter().all(Option::is_some));
        let total = assignment_cost(&cost, &assignment);
        let best = brute_force(&cost);
        prop_assert!((total - best).abs() < 1e-6);
    }

    /// No column is ever assigned twice.
    #[test]
    fn hungarian_assignment_is_injective(cost in arb_cost(6, 4)) {
        let assignment = solve(&cost);
        let mut seen = std::collections::HashSet::new();
        for a in assignment.into_iter().flatten() {
            prop_assert!(seen.insert(a), "column {a} assigned twice");
        }
    }

    /// The Kalman filter converges to any constant-velocity trajectory.
    #[test]
    fn kalman_tracks_any_constant_velocity(
        x0 in -500.0..500.0f64, y0 in -500.0..500.0f64,
        vx in -120.0..120.0f64, vy in -120.0..120.0f64,
    ) {
        let mut kf = Kalman::new(KalmanConfig::default(), x0, y0);
        let dt = 1.0 / 15.0;
        for i in 1..=120 {
            kf.predict(dt);
            let t = dt * f64::from(i);
            kf.update(x0 + vx * t, y0 + vy * t);
        }
        let (ex, ey) = kf.velocity();
        prop_assert!((ex - vx).abs() < 0.05 * vx.abs().max(20.0), "vx {ex} vs {vx}");
        prop_assert!((ey - vy).abs() < 0.05 * vy.abs().max(20.0), "vy {ey} vs {vy}");
    }

    /// Updates never inflate positional uncertainty.
    #[test]
    fn kalman_update_reduces_variance(z in -100.0..100.0f64) {
        let mut kf = Kalman::new(KalmanConfig::default(), 0.0, 0.0);
        kf.predict(0.5);
        let (before, _) = kf.position_variance();
        kf.update(z, 0.0);
        let (after, _) = kf.position_variance();
        prop_assert!(after <= before + 1e-9);
    }
}
