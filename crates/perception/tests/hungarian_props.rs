//! Brute-force cross-check of the Hungarian solver.
//!
//! For every matrix up to 4×4 (with random `INFINITY` entries), exhaustive
//! enumeration of all partial assignments over the finite pairs gives the
//! ground truth: the solver must return a valid matching of maximum
//! cardinality and, at that cardinality, minimum total cost. This pins the
//! solver's contract — in particular that `FORBIDDEN`-sentinel arithmetic
//! never assigns an infeasible pair and never degrades the finite matching.

use av_perception::hungarian::{assignment_cost, solve, HungarianScratch};
use proptest::prelude::*;

/// Exhaustively enumerates every partial assignment over the finite-cost
/// pairs and returns `(max cardinality, min cost at that cardinality)`.
fn brute_force(cost: &[Vec<f64>]) -> (usize, f64) {
    fn rec(
        cost: &[Vec<f64>],
        row: usize,
        used: &mut [bool],
        card: usize,
        sum: f64,
        best: &mut (usize, f64),
    ) {
        if row == cost.len() {
            if card > best.0 || (card == best.0 && sum < best.1) {
                *best = (card, sum);
            }
            return;
        }
        // Leave this row unassigned…
        rec(cost, row + 1, used, card, sum, best);
        // …or assign it any free finite column.
        for j in 0..used.len() {
            if !used[j] && cost[row][j].is_finite() {
                used[j] = true;
                rec(cost, row + 1, used, card + 1, sum + cost[row][j], best);
                used[j] = false;
            }
        }
    }
    let m = cost.first().map_or(0, Vec::len);
    let mut best = (0usize, f64::INFINITY);
    let mut used = vec![false; m];
    rec(cost, 0, &mut used, 0, 0.0, &mut best);
    if best.0 == 0 {
        best.1 = 0.0;
    }
    best
}

/// Builds an `n × m` matrix from a flat pool of (cost, tag) draws; a tag in
/// `{0, 1}` (1-in-3 chance each per cell) marks the cell `INFINITY`.
fn matrix(n: usize, m: usize, pool: &[(f64, u8)]) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..m)
                .map(|j| {
                    let (c, tag) = pool[i * m + j];
                    if tag % 3 == 0 {
                        f64::INFINITY
                    } else {
                        c
                    }
                })
                .collect()
        })
        .collect()
}

/// Asserts the full solver contract for one matrix against brute force.
fn check(cost: &[Vec<f64>]) -> Result<(), TestCaseError> {
    let assignment = solve(cost);
    prop_assert_eq!(assignment.len(), cost.len());

    // Validity: assigned pairs are finite, columns used at most once.
    let mut cols: Vec<usize> = assignment.iter().flatten().copied().collect();
    for (i, a) in assignment.iter().enumerate() {
        if let Some(j) = a {
            prop_assert!(
                cost[i][*j].is_finite(),
                "row {} assigned infeasible column {}",
                i,
                j
            );
        }
    }
    cols.sort_unstable();
    cols.dedup();
    let cardinality = assignment.iter().flatten().count();
    prop_assert_eq!(cols.len(), cardinality, "column used twice");

    // Optimality: maximum cardinality, then minimum cost, vs. brute force.
    let (best_card, best_cost) = brute_force(cost);
    prop_assert_eq!(cardinality, best_card, "not maximum cardinality");
    // Tolerance: the solver's sentinel arithmetic (FORBIDDEN = 1e9) can
    // round path comparisons at the ~1e-7 scale, so a near-tie may resolve
    // either way; anything coarser is a real bug.
    let total = assignment_cost(cost, &assignment);
    prop_assert!(
        (total - best_cost).abs() <= 1e-6 * best_cost.abs().max(1.0),
        "suboptimal: got {}, brute force {}",
        total,
        best_cost
    );

    // Scratch API equivalence with the allocating wrapper.
    let mut scratch = HungarianScratch::new();
    if let Some(m) = cost.first().map(Vec::len) {
        let buf = scratch.begin(cost.len(), m);
        for (i, row) in cost.iter().enumerate() {
            buf[i * m..(i + 1) * m].copy_from_slice(row);
        }
        prop_assert_eq!(scratch.solve(), assignment.as_slice());
    }
    Ok(())
}

proptest! {
    #[test]
    fn solver_matches_exhaustive_enumeration(
        n in 1usize..=4,
        m in 1usize..=4,
        pool in prop::collection::vec((0.0..10.0f64, any::<u8>()), 16..=16)
    ) {
        check(&matrix(n, m, &pool))?;
    }

    /// Dense-infinity regime: most cells forbidden, so all-`INFINITY` rows
    /// and forced-unassigned rows occur constantly in both the direct and
    /// the transposed (rows > cols) branches.
    #[test]
    fn solver_matches_enumeration_under_dense_infinities(
        n in 1usize..=4,
        m in 1usize..=4,
        pool in prop::collection::vec((0.0..10.0f64, any::<bool>()), 16..=16)
    ) {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..m).map(|j| {
                let (c, fin) = pool[i * m + j];
                if fin { c } else { f64::INFINITY }
            }).collect())
            .collect();
        check(&cost)?;
    }
}

/// Deterministic wide sweep beyond proptest's per-test case budget: every
/// shape up to 4×4 under three infinity densities, seeded reproducibly.
#[test]
fn seeded_sweep_matches_enumeration() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x00A5_5167);
    for n in 1..=4usize {
        for m in 1..=4usize {
            for &inf_p in &[0.0, 0.3, 0.8] {
                for _ in 0..60 {
                    let cost: Vec<Vec<f64>> = (0..n)
                        .map(|_| {
                            (0..m)
                                .map(|_| {
                                    if rng.random_range(0.0..1.0) < inf_p {
                                        f64::INFINITY
                                    } else {
                                        rng.random_range(0.0..10.0)
                                    }
                                })
                                .collect()
                        })
                        .collect();
                    check(&cost).unwrap_or_else(|e| {
                        panic!("{n}x{m} inf_p={inf_p}: {e:?}\nmatrix: {cost:?}")
                    });
                }
            }
        }
    }
}
