//! End-to-end tests of the evaluation service over the real paper DAG:
//! two concurrent identical `table2` requests must coalesce onto one
//! training job per artifact key (the dedup counters prove it), and each
//! request's reassembled stdout must be byte-identical to a one-shot
//! execution of the same subgraph — the contract CI's daemon smoke relies
//! on.

use av_experiments::campaign::DispatchMode;
use av_experiments::jobs::PaperEvalService;
use av_experiments::suite::Args;
use av_suite::serve::{serve_lines, EvalService, ServeOptions, ServeReport};
use av_suite::{execute, EvalEvent, EvalRequest, EvalResponse, ExecOptions};
use std::collections::HashMap;
use std::io::{Cursor, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("suite-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn quick_args(store_dir: &Path) -> Args {
    Args {
        runs: 2,
        quick: true,
        seed: 2020,
        cache_dir: Some(store_dir.to_path_buf()),
        no_cache: false,
        dispatch: DispatchMode::WorkStealing,
    }
}

fn table2_request(id: &str) -> EvalRequest {
    EvalRequest {
        id: id.into(),
        only: vec!["table2".into()],
        runs: 2,
        quick: true,
        seed: 2020,
        ..EvalRequest::default()
    }
}

/// A capture buffer usable as the serve output.
#[derive(Clone, Default)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Capture {
    fn events(&self) -> Vec<EvalEvent> {
        let bytes = self.0.lock().expect("capture lock");
        String::from_utf8_lossy(&bytes)
            .lines()
            .filter_map(EvalEvent::parse)
            .collect()
    }
}

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("capture lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Reassembles one request's report stdout from its streamed chunks, in
/// the terminal response's `stdout_jobs` order.
fn stdout_of(events: &[EvalEvent], request: &str) -> String {
    let mut chunks: HashMap<&str, &str> = HashMap::new();
    let mut order: Option<&[String]> = None;
    for event in events.iter().filter(|e| e.request() == request) {
        match event {
            EvalEvent::StdoutChunk { job, stdout, .. } => {
                chunks.insert(job, stdout);
            }
            EvalEvent::Response(EvalResponse::Done { stdout_jobs, .. }) => {
                order = Some(stdout_jobs);
            }
            _ => {}
        }
    }
    order
        .expect("terminal done response")
        .iter()
        .filter_map(|id| chunks.get(id.as_str()).copied())
        .collect()
}

#[test]
fn concurrent_identical_requests_train_each_oracle_once() {
    let dir = scratch("dedup");
    let args = quick_args(&dir.join("store"));
    let service = PaperEvalService::new(args.clone(), Arc::new(args.artifact_store()));

    // Two identical quick table2 requests, admitted together on the
    // default two request slots — they execute concurrently against one
    // shared store.
    let capture = Capture::default();
    let input = format!(
        "{}\n{}\n",
        table2_request("a").to_json(),
        table2_request("b").to_json()
    );
    let report = serve_lines(
        Cursor::new(input),
        Box::new(capture.clone()),
        &service,
        &ServeOptions::default(),
    );
    assert_eq!(
        report,
        ServeReport {
            requests: 2,
            errors: 0
        }
    );

    // The dedup proof: the table2 subgraph has 6 dataset + 6 oracle
    // artifact keys, and exactly one computation ran per key — the second
    // request coalesced onto (or read the stored result of) the first's
    // work instead of training its own oracles.
    let (led, coalesced) = service.dedup_counters();
    assert_eq!(led, 12, "one computation per 〈scenario, vector〉 key");
    assert!(coalesced >= 1, "concurrent requests coalesced in flight");

    // Each request still got the complete report, byte-identical to a
    // one-shot execution of the same subgraph (on its own cold store, so
    // this also pins warm ≡ cold).
    let events = capture.events();
    for id in ["a", "b"] {
        assert!(
            events.iter().any(|e| matches!(
                e,
                EvalEvent::Response(EvalResponse::Done { request, .. }) if request == id
            )),
            "request {id} completed"
        );
    }
    let reference_args = quick_args(&dir.join("reference-store"));
    let reference_service = PaperEvalService::new(
        reference_args.clone(),
        Arc::new(reference_args.artifact_store()),
    );
    let dag = reference_service
        .dag_for(&table2_request("ref"))
        .expect("table2 subgraph");
    let reference = execute(&dag, &ExecOptions::new().workers(2)).expect("one-shot run");
    let expected: String = reference
        .jobs
        .iter()
        .filter(|j| j.emits_stdout)
        .map(|j| j.stdout.as_str())
        .collect();
    assert!(!expected.is_empty(), "table2 produced a report");
    assert_eq!(stdout_of(&events, "a"), expected, "request a stdout");
    assert_eq!(stdout_of(&events, "b"), expected, "request b stdout");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn real_service_answers_hostile_and_unknown_requests_with_typed_errors() {
    let dir = scratch("hostile");
    let args = quick_args(&dir.join("store"));
    let service = PaperEvalService::new(args.clone(), Arc::new(args.artifact_store()));

    let capture = Capture::default();
    let unknown = EvalRequest {
        only: vec!["fig99".into()],
        ..table2_request("bogus")
    };
    let input = format!(
        "not json at all\n{{\"runs\":\"NaN\"}}\n{}\n",
        unknown.to_json()
    );
    let report = serve_lines(
        Cursor::new(input),
        Box::new(capture.clone()),
        &service,
        &ServeOptions::default(),
    );
    // The unknown-job request was admitted (then failed validation); the
    // two malformed lines never reached a slot.
    assert_eq!(
        report,
        ServeReport {
            requests: 1,
            errors: 3
        }
    );
    let events = capture.events();
    let errors: Vec<&EvalEvent> = events
        .iter()
        .filter(|e| matches!(e, EvalEvent::Response(EvalResponse::Error { .. })))
        .collect();
    assert_eq!(errors.len(), 3, "every bad input answered: {events:?}");
    assert!(
        events.iter().any(|e| matches!(
            e,
            EvalEvent::Response(EvalResponse::Error { request, message, .. })
                if request == "bogus" && message.contains("fig99")
        )),
        "unknown job error names the offender"
    );
    // Nothing executed, so the store never trained anything.
    assert_eq!(service.dedup_counters(), (0, 0));

    let _ = std::fs::remove_dir_all(&dir);
}
