//! Differential-equivalence suite for the lockstep batch engine.
//!
//! The batch engine (`av_experiments::batch`) promises that
//! `RunRecord::digest()` is **bit-identical** to the sequential engine for
//! every scenario, seed, fault plan, attacker, and batch size. This suite
//! pins that contract end to end:
//!
//! - the DS-1..DS-5 golden digests (the same committed fixtures the
//!   sequential golden-trace suite pins) reproduced at batch sizes 1, 7,
//!   and 64;
//! - fault-injected runs (sensor-side drops rewriting the RNG-visible
//!   world) and malware runs (kinematic, NN-oracle, random-timing, and
//!   baseline attackers) batch-equivalent at every batch size;
//! - ragged batches: lanes with different scenario durations retire at
//!   different ticks without perturbing the survivors' RNG streams.

use av_experiments::batch::LanePool;
use av_experiments::prelude::*;
use av_experiments::train_sh::train_oracle_on;
use av_faults::{FaultKind, FaultPlan, FaultSpec};
use av_neural::train::Dataset;
use av_scenarios::{ds, mutate, MutateConfig, ScenarioSpec};
use av_simkit::rng::run_rng;
use std::sync::Arc;

/// The committed golden fixtures (kept in sync with `golden_traces.rs`): if
/// the batch engine reproduces these, it reproduces the exact sequential
/// trajectories down to the last ULP.
const GOLDEN: [(ScenarioId, u64, &str); 5] = [
    (ScenarioId::Ds1, 7, "88fd3971a1e3db6f"),
    (ScenarioId::Ds2, 7, "8ac9cef96c26d7c6"),
    (ScenarioId::Ds3, 7, "a7da8c6ce2fbf298"),
    (ScenarioId::Ds4, 7, "a3119dae4c2710e6"),
    (ScenarioId::Ds5, 7, "cfdbc2735d4a6661"),
];

const BATCH_SIZES: [usize; 3] = [1, 7, 64];

fn session(
    scenario: ScenarioId,
    seed: u64,
    attacker: AttackerSpec,
    faults: FaultPlan,
) -> SimSession {
    SimSession::builder(scenario)
        .seed(seed)
        .attacker(attacker)
        .faults(faults)
        .build()
}

/// Runs every session through the sequential engine.
fn sequential(sessions: &[SimSession]) -> Vec<RunOutcome> {
    let mut worker = SessionWorker::new();
    sessions.iter().map(|s| s.run_with(&mut worker)).collect()
}

/// Runs the sessions through the batch engine in blocks of `batch_size`,
/// reusing one lane pool across blocks exactly like a campaign worker.
fn batched(sessions: &[SimSession], batch_size: usize) -> Vec<RunOutcome> {
    let mut pool = LanePool::new();
    let tele = Telemetry::disabled();
    sessions
        .chunks(batch_size)
        .flat_map(|chunk| pool.run_batch(chunk, &tele))
        .collect()
}

/// Field-by-field equivalence of a batch outcome against its sequential
/// twin. The digest covers the full time series bit-exactly; the remaining
/// asserts catch divergence in the outcome summary itself.
fn assert_outcomes_equivalent(seq: &[RunOutcome], bat: &[RunOutcome], label: &str) {
    assert_eq!(seq.len(), bat.len(), "{label}: run count");
    for (a, b) in seq.iter().zip(bat) {
        let ctx = format!("{label}: {:?} seed {}", a.scenario, a.seed);
        assert_eq!(a.record.digest(), b.record.digest(), "{ctx}: digest");
        assert_eq!(a.seed, b.seed, "{ctx}: seed order");
        assert_eq!(
            a.sim_seconds.to_bits(),
            b.sim_seconds.to_bits(),
            "{ctx}: end time"
        );
        assert_eq!(a.collided, b.collided, "{ctx}: collided");
        assert_eq!(a.accident, b.accident, "{ctx}: accident");
        assert_eq!(a.eb_any, b.eb_any, "{ctx}: eb_any");
        assert_eq!(
            a.eb_after_attack, b.eb_after_attack,
            "{ctx}: eb_after_attack"
        );
        assert_eq!(
            a.attack.launched_at, b.attack.launched_at,
            "{ctx}: launch time"
        );
        assert_eq!(a.attack.k, b.attack.k, "{ctx}: planned K");
        assert_eq!(
            a.attack.frames_perturbed, b.attack.frames_perturbed,
            "{ctx}: frames perturbed"
        );
        assert_eq!(
            a.min_delta_post_attack.map(f64::to_bits),
            b.min_delta_post_attack.map(f64::to_bits),
            "{ctx}: min delta"
        );
        assert_eq!(a.k_prime_ads, b.k_prime_ads, "{ctx}: K'");
        assert_eq!(a.faults, b.faults, "{ctx}: fault stats");
        assert_eq!(a.stale_frames, b.stale_frames, "{ctx}: stale frames");
        assert_eq!(a.ids_alarms.len(), b.ids_alarms.len(), "{ctx}: alarm count");
    }
}

/// A small NN oracle trained on a synthetic dataset, shared across sessions
/// so the batch engine's Arc-identity grouping sees one GEMM group.
fn synthetic_nn_oracle() -> OracleSpec {
    let data = Dataset::from_rows((0..64).map(|i| {
        let delta = 5.0 + f64::from(i % 16) * 2.0;
        let k = f64::from(i % 8) * 10.0;
        (vec![delta, -3.0, 0.5, -0.1, k], vec![delta - 0.1 * k])
    }));
    OracleSpec::Nn(Arc::clone(
        &train_oracle_on(&data)
            .expect("synthetic dataset trains")
            .oracle,
    ))
}

#[test]
fn golden_digests_identical_at_every_batch_size() {
    // Seed-major interleave: each size-7 block mixes scenarios, so every
    // batch is ragged in actor count AND duration (DS-3 is 20 s, DS-1 45 s).
    let mut sessions = Vec::new();
    for seed in [7, 8, 9] {
        for (scenario, _, _) in GOLDEN {
            sessions.push(session(
                scenario,
                seed,
                AttackerSpec::None,
                FaultPlan::none(),
            ));
        }
    }
    let seq = sequential(&sessions);
    // The sequential engine still matches the committed fixtures…
    for (scenario, seed, expected) in GOLDEN {
        let out = seq
            .iter()
            .find(|o| o.scenario == scenario && o.seed == seed)
            .expect("seed 7 present");
        assert_eq!(
            out.record.digest(),
            expected,
            "{scenario:?} seed {seed}: sequential trace drifted from fixture"
        );
    }
    // …and the batch engine reproduces it bit-for-bit at every batch size.
    for batch_size in BATCH_SIZES {
        let bat = batched(&sessions, batch_size);
        assert_outcomes_equivalent(&seq, &bat, &format!("golden, batch {batch_size}"));
    }
}

#[test]
fn faulted_runs_are_batch_equivalent() {
    let plan = FaultPlan::single(FaultSpec::always(FaultKind::CameraFrameDrop {
        probability: 0.3,
    }));
    let mut sessions = Vec::new();
    for scenario in [ScenarioId::Ds1, ScenarioId::Ds2] {
        for seed in [5, 6, 7] {
            sessions.push(session(scenario, seed, AttackerSpec::None, plan.clone()));
        }
    }
    let seq = sequential(&sessions);
    assert!(
        seq.iter().any(|o| o.faults.camera_frames_dropped > 0),
        "the fault plan must actually fire"
    );
    for batch_size in BATCH_SIZES {
        let bat = batched(&sessions, batch_size);
        assert_outcomes_equivalent(&seq, &bat, &format!("faulted, batch {batch_size}"));
    }
}

#[test]
fn malware_runs_are_batch_equivalent() {
    let nn = synthetic_nn_oracle();
    let mut sessions = Vec::new();
    // Kinematic-oracle RoboTack (scalar oracle path in the barrier).
    for seed in [11, 12, 13] {
        sessions.push(session(
            ScenarioId::Ds1,
            seed,
            AttackerSpec::RoboTack {
                vector: Some(AttackVector::MoveOut),
                oracle: OracleSpec::Kinematic,
            },
            FaultPlan::none(),
        ));
    }
    // NN-oracle RoboTack sharing ONE oracle (batched GEMM path); several
    // lanes defer on the same camera tick, so k-search rounds batch rows.
    for seed in [11, 12, 13, 14] {
        sessions.push(session(
            ScenarioId::Ds1,
            seed,
            AttackerSpec::RoboTack {
                vector: Some(AttackVector::Disappear),
                oracle: nn.clone(),
            },
            FaultPlan::none(),
        ));
    }
    // Random-timing RoboTack (draws launch parameters from the run RNG at
    // build time — any stream perturbation shows up instantly)…
    sessions.push(session(
        ScenarioId::Ds2,
        5,
        AttackerSpec::RoboTackNoSh {
            vector: Some(AttackVector::MoveIn),
        },
        FaultPlan::none(),
    ));
    // …and the Baseline-Random attacker.
    sessions.push(session(
        ScenarioId::Ds1,
        3,
        AttackerSpec::Random,
        FaultPlan::none(),
    ));

    let seq = sequential(&sessions);
    assert!(
        seq.iter().any(|o| o.attack.launched_at.is_some()),
        "at least one attack must launch for the test to mean anything"
    );
    for batch_size in BATCH_SIZES {
        let bat = batched(&sessions, batch_size);
        assert_outcomes_equivalent(&seq, &bat, &format!("malware, batch {batch_size}"));
    }
}

#[test]
fn generated_scenarios_are_batch_equivalent() {
    // The same population the boundary search explores: each DS root
    // pushed through a few seeded mutation steps, then run as a
    // spec-carrying session (ScenarioId::Gen + out-of-band spec).
    let mut rng = run_rng(0xB47C, 0x7E57);
    let cfg = MutateConfig::default();
    let mut sessions = Vec::new();
    for root in ds::all() {
        let mut spec = root;
        for _ in 0..3 {
            spec = mutate(&spec, &mut rng, &cfg);
        }
        assert!(spec.validate().is_ok(), "mutant stays spec-valid");
        let spec: Arc<ScenarioSpec> = Arc::new(spec);
        for seed in [7, 8] {
            sessions.push(
                SimSession::builder(spec.scenario_id())
                    .spec(spec.clone())
                    .seed(seed)
                    .attacker(AttackerSpec::RoboTack {
                        vector: Some(AttackVector::MoveOut),
                        oracle: OracleSpec::Kinematic,
                    })
                    .build(),
            );
        }
    }

    let seq = sequential(&sessions);
    assert!(
        seq.iter().any(|o| o.attack.launched_at.is_some()),
        "at least one attack must launch on a generated world"
    );
    for batch_size in BATCH_SIZES {
        let bat = batched(&sessions, batch_size);
        assert_outcomes_equivalent(&seq, &bat, &format!("generated, batch {batch_size}"));
    }
}

#[test]
fn ragged_batches_retire_lanes_without_perturbing_survivors() {
    // One batch holding every scenario: DS-3 (20 s) retires first, then
    // DS-4 (25 s), DS-2 (30 s), and finally DS-1/DS-5 (45 s) — the
    // surviving lanes keep stepping after each retirement wave.
    let sessions: Vec<SimSession> = GOLDEN
        .iter()
        .map(|&(scenario, _, _)| session(scenario, 21, AttackerSpec::None, FaultPlan::none()))
        .collect();
    let seq = sequential(&sessions);
    let mut end_ticks: Vec<u64> = seq.iter().map(|o| o.sim_seconds.to_bits()).collect();
    end_ticks.sort_unstable();
    end_ticks.dedup();
    assert!(
        end_ticks.len() >= 3,
        "the batch must actually be ragged (got {} distinct end times)",
        end_ticks.len()
    );
    // All five lanes in one lockstep batch.
    let bat = batched(&sessions, sessions.len());
    assert_outcomes_equivalent(&seq, &bat, "ragged full batch");
}
