//! End-to-end tests of the `av-suite` orchestrator over the real paper DAG:
//! worker-count determinism, kill/resume from a truncated manifest, and
//! bin ≡ job stdout equivalence (the contract CI's suite smoke relies on).

use av_experiments::jobs::{self, paper_dag};
use av_experiments::oracle_cache::OracleCache;
use av_experiments::suite::Args;
use av_suite::{execute, ArtifactStore, ExecOptions, RunReport};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("suite-orch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn quick_args() -> Args {
    Args {
        runs: 2,
        quick: true,
        seed: 2020,
        cache_dir: None,
        no_cache: false,
        dispatch: av_experiments::campaign::DispatchMode::WorkStealing,
    }
}

fn suite_stdout(report: &RunReport) -> String {
    report
        .jobs
        .iter()
        .filter(|j| j.emits_stdout)
        .map(|j| j.stdout.as_str())
        .collect()
}

fn artifact_digests(report: &RunReport) -> Vec<(String, Vec<(String, u64)>)> {
    report
        .jobs
        .iter()
        .map(|j| (j.id.clone(), j.artifacts.clone()))
        .collect()
}

/// Runs the full paper DAG cold (own store + manifest) at `workers`.
fn run_cold(dir: &Path, workers: usize) -> RunReport {
    let args = quick_args();
    let store = Arc::new(ArtifactStore::at(dir.join(format!("store-{workers}"))));
    let dag = paper_dag(&args, &store).expect("valid DAG");
    execute(
        &dag,
        &ExecOptions::new()
            .workers(workers)
            .manifest(dir.join(format!("manifest-{workers}.jsonl")))
            .config_key(args.config_key()),
    )
    .expect("suite run")
}

#[test]
fn full_dag_is_deterministic_across_worker_counts() {
    let dir = scratch("workers");

    let reference = run_cold(&dir, 1);
    assert_eq!(
        reference.jobs.len(),
        23,
        "6 datasets + 6 oracles + 8 reports + 3 searches"
    );
    assert_eq!(reference.jobs_run(), 23);
    let ref_stdout = suite_stdout(&reference);
    assert!(ref_stdout.contains("Fig. 6"), "reports made it to stdout");
    let ref_digests = artifact_digests(&reference);
    // Every dataset and oracle job pinned an artifact digest.
    for (id, artifacts) in &ref_digests {
        if id.starts_with("dataset:") || id.starts_with("oracle:") {
            assert_eq!(artifacts.len(), 1, "{id} records its digest");
        }
    }

    for workers in [4, 8] {
        let report = run_cold(&dir, workers);
        assert_eq!(
            suite_stdout(&report),
            ref_stdout,
            "stdout is worker-count invariant (workers={workers})"
        );
        assert_eq!(
            artifact_digests(&report),
            ref_digests,
            "artifact digests are worker-count invariant (workers={workers})"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_run_resumes_from_truncated_manifest() {
    let dir = scratch("resume");
    let args = quick_args();
    let store = Arc::new(ArtifactStore::at(dir.join("store")));
    let manifest = dir.join("manifest.jsonl");
    let opts = ExecOptions::new()
        .workers(2)
        .manifest(manifest.clone())
        .config_key(args.config_key());

    let dag = paper_dag(&args, &store).expect("valid DAG");
    let first = execute(&dag, &opts).expect("first run");
    assert_eq!(first.jobs_run(), 23);

    // Simulate a kill mid-run: keep the header and the first 8 completed
    // entries, then half of the 9th — exactly what a process death between
    // flushes leaves behind.
    let contents = std::fs::read_to_string(&manifest).expect("manifest");
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 24, "header + one entry per job");
    let half = lines[9];
    std::fs::write(
        &manifest,
        format!("{}\n{}", lines[..9].join("\n"), &half[..half.len() / 2]),
    )
    .expect("truncate");

    let dag = paper_dag(&args, &store).expect("valid DAG");
    let second = execute(&dag, &opts).expect("resumed run");
    assert_eq!(second.jobs_skipped(), 8, "recovered entries are skipped");
    assert_eq!(
        second.jobs_run(),
        15,
        "the garbled entry and the rest rerun"
    );
    assert_eq!(
        suite_stdout(&second),
        suite_stdout(&first),
        "resumed stdout is byte-identical"
    );
    assert_eq!(
        artifact_digests(&second),
        artifact_digests(&first),
        "resumed artifact digests are unchanged"
    );

    // Third run: everything recovered, nothing executed.
    let dag = paper_dag(&args, &store).expect("valid DAG");
    let third = execute(&dag, &opts).expect("warm rerun");
    assert_eq!(third.jobs_run(), 0);
    assert_eq!(third.jobs_skipped(), 23);
    assert_eq!(suite_stdout(&third), suite_stdout(&first));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig5_bin_stdout_equals_job_output() {
    let args = quick_args();
    let expected = jobs::fig5(&args);
    let out = Command::new(env!("CARGO_BIN_EXE_fig5"))
        .args(["--quick", "--runs", "2", "--seed", "2020"])
        .output()
        .expect("fig5 bin runs");
    assert!(out.status.success(), "fig5 exit status: {:?}", out.status);
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "standalone fig5 stdout ≡ jobs::fig5"
    );
}

#[test]
fn table2_bin_stdout_equals_job_output_via_shared_store() {
    let dir = scratch("table2-golden");
    let args = Args {
        cache_dir: Some(dir.join("store")),
        ..quick_args()
    };

    // Cold library run trains and stores the oracles; the binary then
    // reads the same store, so both produce the same oracles — and must
    // produce the same bytes.
    let cache = OracleCache::over(Arc::new(args.artifact_store()));
    let expected = jobs::table2(&args, &cache);

    let out = Command::new(env!("CARGO_BIN_EXE_table2"))
        .args(["--quick", "--runs", "2", "--seed", "2020", "--cache-dir"])
        .arg(dir.join("store"))
        .output()
        .expect("table2 bin runs");
    assert!(out.status.success(), "table2 exit status: {:?}", out.status);
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "standalone table2 stdout ≡ jobs::table2"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suite_bin_replays_and_skips_on_second_invocation() {
    let dir = scratch("suite-bin");
    let manifest = dir.join("manifest.jsonl");
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_suite"))
            .args(["--quick", "--runs", "2", "--seed", "2020", "--only", "fig5"])
            .arg("--cache-dir")
            .arg(dir.join("store"))
            .arg("--manifest")
            .arg(&manifest)
            .output()
            .expect("suite bin runs")
    };

    let first = run();
    assert!(first.status.success(), "first run: {:?}", first.status);
    let second = run();
    assert!(second.status.success(), "second run: {:?}", second.status);

    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
        "replayed stdout is byte-identical"
    );
    let summary = String::from_utf8_lossy(&second.stderr);
    assert!(
        summary.contains("jobs_run=0 jobs_skipped=1"),
        "second invocation skipped everything:\n{summary}"
    );

    // And the orchestrated fig5 stdout equals the standalone binary's.
    let standalone = Command::new(env!("CARGO_BIN_EXE_fig5"))
        .args(["--quick", "--runs", "2", "--seed", "2020"])
        .output()
        .expect("fig5 bin runs");
    assert_eq!(first.stdout, standalone.stdout);

    let _ = std::fs::remove_dir_all(&dir);
}
