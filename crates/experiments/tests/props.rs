//! Property-based tests for the statistics toolkit and campaign dispatch.

use av_experiments::campaign::{
    run_campaign_dispatch, run_campaign_with_threads, Campaign, DispatchMode,
};
use av_experiments::oracle_cache::OracleCache;
use av_experiments::prelude::*;
use av_experiments::stats::{
    fit_exponential, fit_normal, histogram, mean, median, percentile, std_dev, BoxSummary,
};
use av_experiments::train_sh::train_oracle_on;
use av_neural::train::Dataset;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, 2..200)
}

fn dispatch_campaign() -> Campaign {
    Campaign::new("prop-dispatch", ScenarioId::Ds1, AttackerSpec::None, 5, 40)
}

/// All three dispatch modes, parameterized by a drawn batch size (ignored
/// by the non-batched modes).
fn dispatch_mode(selector: u8, batch_size: usize) -> DispatchMode {
    match selector % 3 {
        0 => DispatchMode::WorkStealing,
        1 => DispatchMode::StaticChunks,
        _ => DispatchMode::Batched { batch_size },
    }
}

/// Deterministic telemetry counters with the engine-level `batch_*` events
/// removed: their counts depend on the batch size by design (documented on
/// the `TraceEvent::BatchStepped` / `BatchOracleInference` variants), while
/// everything else must be invariant across threads and dispatch modes.
fn invariant_counts(metrics: &MetricsSnapshot) -> Vec<(&'static str, u64)> {
    metrics
        .deterministic_counts()
        .into_iter()
        .filter(|(name, _)| !name.starts_with("batch_"))
        .collect()
}

/// (launched, EB, crashes, invariant telemetry counts) — the summary every
/// dispatch mode must reproduce.
type MetricsBaseline = (usize, usize, usize, Vec<(&'static str, u64)>);

/// Sequential (1-thread) campaign summary + merged telemetry baseline,
/// computed once for all cases.
fn metrics_baseline() -> &'static MetricsBaseline {
    static BASELINE: OnceLock<MetricsBaseline> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let result = run_campaign_with_threads(&dispatch_campaign().with_metrics(), 1)
            .expect("one thread is valid");
        let metrics = result.metrics.as_ref().expect("metrics collected");
        (
            result.n_launched(),
            result.eb().0,
            result.crashes().0,
            invariant_counts(metrics),
        )
    })
}

/// Sequential (1-thread) per-run digests, computed once for all cases.
fn sequential_digests() -> &'static [String] {
    static BASELINE: OnceLock<Vec<String>> = OnceLock::new();
    BASELINE.get_or_init(|| {
        run_campaign_with_threads(&dispatch_campaign(), 1)
            .expect("one thread is valid")
            .outcomes
            .iter()
            .map(|o| o.record.digest())
            .collect()
    })
}

/// A scratch cache directory unique to this test binary.
fn hostile_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oracle-cache-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp cache dir");
    dir
}

/// A valid snapshot's on-disk bytes under key 0, encoded once for all cases.
fn valid_snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let data = Dataset::from_rows((0..64).map(|i| {
            let delta = 5.0 + f64::from(i % 16) * 2.0;
            let k = f64::from(i % 8) * 10.0;
            (vec![delta, -3.0, 0.5, -0.1, k], vec![delta - 0.1 * k])
        }));
        let oracle = train_oracle_on(&data).expect("synthetic dataset trains");
        let dir = hostile_cache_dir("encode");
        let cache = OracleCache::at(&dir);
        cache.store(0, &oracle);
        let bytes = std::fs::read(dir.join(format!("{:016x}.oracle", 0))).expect("stored bytes");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

proptest! {
    #[test]
    fn percentile_is_bounded_and_monotone(xs in samples(), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p1 = percentile(&xs, q1);
        prop_assert!(p1 >= lo - 1e-9 && p1 <= hi + 1e-9);
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(percentile(&xs, qa) <= percentile(&xs, qb) + 1e-9);
    }

    #[test]
    fn box_summary_is_ordered(xs in samples()) {
        let b = BoxSummary::of(&xs);
        prop_assert!(b.min <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.q3 <= b.max + 1e-9);
        prop_assert_eq!(b.n, xs.len());
    }

    #[test]
    fn mean_is_translation_equivariant(xs in samples(), shift in -100.0..100.0f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((mean(&shifted) - mean(&xs) - shift).abs() < 1e-6);
        // Std-dev is translation invariant.
        prop_assert!((std_dev(&shifted) - std_dev(&xs)).abs() < 1e-6);
    }

    #[test]
    fn median_minimizes_l1_locally(xs in samples()) {
        let m = median(&xs);
        let l1 = |c: f64| xs.iter().map(|x| (x - c).abs()).sum::<f64>();
        prop_assert!(l1(m) <= l1(m + 1.0) + 1e-6);
        prop_assert!(l1(m) <= l1(m - 1.0) + 1e-6);
    }

    #[test]
    fn exponential_fit_location_is_the_minimum(xs in prop::collection::vec(0.0..100.0f64, 3..100)) {
        let fit = fit_exponential(&xs).expect("enough data");
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((fit.loc - lo).abs() < 1e-12);
        prop_assert!(fit.lambda > 0.0);
    }

    #[test]
    fn normal_fit_matches_moments(xs in samples()) {
        let fit = fit_normal(&xs).expect("enough data");
        prop_assert!((fit.mean - mean(&xs)).abs() < 1e-9);
        prop_assert!((fit.std_dev - std_dev(&xs)).abs() < 1e-9);
    }

    #[test]
    fn histogram_conserves_count(xs in samples(), width in 0.5..50.0f64) {
        let h = histogram(&xs, width, 4096);
        let total: usize = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, xs.len());
    }

    #[test]
    fn work_stealing_digests_are_thread_count_invariant(threads in 1usize..33, selector in any::<u8>(), batch_size in 1usize..9) {
        let mode = dispatch_mode(selector, batch_size);
        let result = run_campaign_dispatch(&dispatch_campaign(), threads, mode)
            .expect("nonzero thread count");
        let digests: Vec<String> = result.outcomes.iter().map(|o| o.record.digest()).collect();
        prop_assert_eq!(&digests[..], sequential_digests(), "threads={} mode={:?}", threads, mode);
    }

    #[test]
    fn campaign_summary_and_metrics_are_dispatch_invariant(threads in 1usize..33, selector in any::<u8>(), batch_size in 1usize..9) {
        let mode = dispatch_mode(selector, batch_size);
        let result = run_campaign_dispatch(&dispatch_campaign().with_metrics(), threads, mode)
            .expect("nonzero thread count");
        let metrics = result.metrics.as_ref().expect("metrics collected");
        let (n_launched, eb, crashes, counts) = metrics_baseline();
        prop_assert_eq!(result.n_launched(), *n_launched, "threads={} mode={:?}", threads, mode);
        prop_assert_eq!(result.eb().0, *eb, "threads={} mode={:?}", threads, mode);
        prop_assert_eq!(result.crashes().0, *crashes, "threads={} mode={:?}", threads, mode);
        prop_assert_eq!(
            &invariant_counts(metrics),
            counts,
            "merged telemetry drifted: threads={} mode={:?}", threads, mode
        );
    }

    #[test]
    fn arbitrary_snapshot_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600), key in any::<u64>()) {
        let dir = hostile_cache_dir("arbitrary");
        let path = dir.join(format!("{key:016x}.oracle"));
        std::fs::write(&path, &bytes).expect("write hostile snapshot");
        let cache = OracleCache::at(&dir);
        // Random bytes must be a silent miss — never a panic or an oracle.
        prop_assert!(cache.lookup(key).is_none());
        prop_assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_valid_snapshots_never_panic(pos in any::<usize>(), xor in 1..=255u8, cut in any::<usize>(), truncate in any::<bool>()) {
        let valid = valid_snapshot_bytes();
        let mutated = if truncate {
            valid[..cut % valid.len()].to_vec()
        } else {
            let mut v = valid.to_vec();
            let i = pos % v.len();
            v[i] ^= xor;
            v
        };
        let dir = hostile_cache_dir("corrupt");
        let path = dir.join(format!("{:016x}.oracle", 0));
        std::fs::write(&path, &mutated).expect("write corrupted snapshot");
        let cache = OracleCache::at(&dir);
        // A flipped byte lands in the parameter payload more often than not,
        // where any f64 bit pattern is structurally valid — the guarantee
        // under corruption is "never panic", not "always detect".
        let _ = cache.lookup(0);
        let _ = std::fs::remove_file(&path);
    }
}
