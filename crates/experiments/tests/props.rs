//! Property-based tests for the statistics toolkit.

use av_experiments::stats::{
    fit_exponential, fit_normal, histogram, mean, median, percentile, std_dev, BoxSummary,
};
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, 2..200)
}

proptest! {
    #[test]
    fn percentile_is_bounded_and_monotone(xs in samples(), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p1 = percentile(&xs, q1);
        prop_assert!(p1 >= lo - 1e-9 && p1 <= hi + 1e-9);
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(percentile(&xs, qa) <= percentile(&xs, qb) + 1e-9);
    }

    #[test]
    fn box_summary_is_ordered(xs in samples()) {
        let b = BoxSummary::of(&xs);
        prop_assert!(b.min <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.q3 <= b.max + 1e-9);
        prop_assert_eq!(b.n, xs.len());
    }

    #[test]
    fn mean_is_translation_equivariant(xs in samples(), shift in -100.0..100.0f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((mean(&shifted) - mean(&xs) - shift).abs() < 1e-6);
        // Std-dev is translation invariant.
        prop_assert!((std_dev(&shifted) - std_dev(&xs)).abs() < 1e-6);
    }

    #[test]
    fn median_minimizes_l1_locally(xs in samples()) {
        let m = median(&xs);
        let l1 = |c: f64| xs.iter().map(|x| (x - c).abs()).sum::<f64>();
        prop_assert!(l1(m) <= l1(m + 1.0) + 1e-6);
        prop_assert!(l1(m) <= l1(m - 1.0) + 1e-6);
    }

    #[test]
    fn exponential_fit_location_is_the_minimum(xs in prop::collection::vec(0.0..100.0f64, 3..100)) {
        let fit = fit_exponential(&xs).expect("enough data");
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((fit.loc - lo).abs() < 1e-12);
        prop_assert!(fit.lambda > 0.0);
    }

    #[test]
    fn normal_fit_matches_moments(xs in samples()) {
        let fit = fit_normal(&xs).expect("enough data");
        prop_assert!((fit.mean - mean(&xs)).abs() < 1e-9);
        prop_assert!((fit.std_dev - std_dev(&xs)).abs() < 1e-9);
    }

    #[test]
    fn histogram_conserves_count(xs in samples(), width in 0.5..50.0f64) {
        let h = histogram(&xs, width, 4096);
        let total: usize = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, xs.len());
    }
}
