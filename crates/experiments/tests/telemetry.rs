//! Observability-layer integration tests: the event stream must be a pure,
//! deterministic *observation* of a run — reproducible from the seed,
//! schema-stable on the wire, and with campaign metrics independent of how
//! many worker threads collected them.

use av_experiments::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` target the test can read back after the sink is consumed by
/// the telemetry handle.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf-8 JSONL")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The deterministic DS-2 attacked configuration the integration suite pins
/// (timed Move_Out on the crossing pedestrian, no oracle training needed).
fn attacked_ds2(telemetry: Telemetry) -> RunOutcome {
    SimSession::builder(ScenarioId::Ds2)
        .seed(0)
        .attacker(AttackerSpec::AtDelta {
            vector: Some(AttackVector::MoveOut),
            delta_inject: 24.0,
            k: 60,
        })
        .telemetry(telemetry)
        .build()
        .run()
}

#[test]
fn event_stream_is_reproducible_from_the_seed() {
    let capture = |_| {
        let sink = SharedSink::new(RingBufferSink::new(100_000));
        let outcome = attacked_ds2(Telemetry::with_sink(sink.clone()));
        let records: Vec<TraceRecord> = sink.lock().records().iter().cloned().collect();
        (outcome.record.digest(), records)
    };
    let (digest_a, stream_a) = capture(());
    let (digest_b, stream_b) = capture(());
    assert_eq!(digest_a, digest_b, "run itself reproducible");
    assert_eq!(stream_a.len(), stream_b.len(), "same number of events");
    // Bit-identical streams: seq, sim-time, and full payload. Events carry
    // no wall-clock quantities, so equality is exact.
    assert_eq!(stream_a, stream_b, "event streams diverged across replays");
}

#[test]
fn jsonl_stream_is_schema_stable_and_covers_the_pipeline() {
    let buf = SharedBuf::default();
    let telemetry = Telemetry::with_sink(JsonlSink::new(buf.clone()));
    let outcome = attacked_ds2(telemetry);
    assert!(outcome.attack.launched_at.is_some(), "attack launched");

    let contents = buf.contents();
    let lines: Vec<&str> = contents.lines().collect();
    assert!(
        lines.len() > 1_000,
        "full run traced: {} lines",
        lines.len()
    );

    // Schema: every line is one flat JSON object beginning with the stable
    // header fields in order, and seq is gap-free from zero.
    for (i, line) in lines.iter().enumerate() {
        let expect = format!("{{\"seq\":{i},\"t\":");
        assert!(
            line.starts_with(&expect),
            "line {i} lost the schema header: {line}"
        );
        assert!(
            line.ends_with('}') && line.contains("\"type\":\""),
            "{line}"
        );
    }

    // Coverage: one DS-2 attacked run reports from every pipeline layer —
    // scheduler, sensors, perception, tracker, attacker — plus the run
    // lifecycle brackets. (The Move_Out attack *hides* the hazard, so the
    // planner stays in cruise; planner-side events are pinned below on the
    // DS-3 Move_In run, which forces the emergency stop.)
    for kind in [
        "run_started",
        "scheduler_task",
        "sensor_sample",
        "detections_emitted",
        "track_update",
        "attack_triggered",
        "attack_phase_changed",
        "run_finished",
    ] {
        let tag = format!("\"type\":\"{kind}\"");
        assert!(
            lines.iter().any(|l| l.contains(&tag)),
            "no {kind} event in the stream"
        );
    }
    assert!(lines[0].contains("\"type\":\"run_started\""));
    assert!(lines.last().unwrap().contains("\"type\":\"run_finished\""));
}

#[test]
fn planner_events_trace_the_forced_emergency_stop() {
    // DS-3 Move_In: a phantom car is pushed into the lane, so the planner
    // must walk cruise → … → emergency_brake and engage the AEB — all of it
    // visible in the event stream.
    let sink = SharedSink::new(RingBufferSink::new(100_000));
    let outcome = SimSession::builder(ScenarioId::Ds3)
        .seed(0)
        .attacker(AttackerSpec::AtDelta {
            vector: Some(AttackVector::MoveIn),
            delta_inject: 8.0,
            k: 40,
        })
        .telemetry(Telemetry::with_sink(sink.clone()))
        .build()
        .run();
    assert!(outcome.eb_after_attack, "forced emergency braking");

    let records: Vec<TraceRecord> = sink.lock().records().iter().cloned().collect();
    let mode_changes: Vec<(&str, &str)> = records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::PlannerModeChanged { from, to } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert!(!mode_changes.is_empty(), "planner mode transitions traced");
    assert!(
        mode_changes.iter().any(|&(_, to)| to == "emergency_brake"),
        "emergency_brake entered: {mode_changes:?}"
    );
    assert!(
        records
            .iter()
            .any(|r| r.event.kind() == EventKind::AebEngaged),
        "aeb_engaged event present"
    );
}

#[test]
fn campaign_metrics_are_thread_count_invariant() {
    let counts_with = |threads| {
        let campaign =
            Campaign::new("invariance", ScenarioId::Ds1, AttackerSpec::None, 6, 400).with_metrics();
        let result = run_campaign_with_threads(&campaign, threads).expect("threads >= 1");
        let snapshot = result.metrics.expect("with_metrics collects a registry");
        snapshot.deterministic_counts()
    };
    let one = counts_with(1);
    assert!(
        one.iter().any(|&(_, n)| n > 0),
        "metrics-only campaign counted events"
    );
    // Merging per-worker registries is associative and commutative, so the
    // deterministic projection (event counts + stage call counts, never
    // durations) must not depend on how the runs were sharded.
    assert_eq!(one, counts_with(2), "1-thread vs 2-thread counts");
    assert_eq!(one, counts_with(3), "1-thread vs 3-thread counts");
}

#[test]
fn zero_threads_is_rejected_not_clamped() {
    let campaign = Campaign::new("zero", ScenarioId::Ds1, AttackerSpec::None, 1, 0);
    let err = run_campaign_with_threads(&campaign, 0).expect_err("zero threads is an error");
    assert_eq!(err, CampaignError::ZeroThreads);
    assert!(err.to_string().contains("at least one"), "{err}");
}
