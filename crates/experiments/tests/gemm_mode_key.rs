//! The oracle cache key must fold in a reordering GEMM mode.
//!
//! This lives in its own integration-test binary (its own process) because
//! it flips the process-wide [`av_neural::gemm`] mode; sharing a binary
//! with tests that run GEMMs would race their numerics.

use av_experiments::oracle_cache::cache_key;
use av_experiments::train_sh::SweepConfig;
use av_neural::gemm::{set_mode, GemmMode};
use av_simkit::scenario::ScenarioId;
use robotack::vector::AttackVector;

#[test]
fn reordering_mode_gets_its_own_addresses() {
    let sweep = SweepConfig::default();
    let key = |mode| {
        set_mode(mode);
        cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &sweep)
    };
    let blocked = key(GemmMode::Blocked);
    let naive = key(GemmMode::Naive);
    let tiled = key(GemmMode::Tiled);
    set_mode(GemmMode::Blocked);
    // Blocked and naive are bit-identical by construction, so they *must*
    // share artifact addresses — that equivalence is what CI's kernel
    // smoke job diffs byte-for-byte.
    assert_eq!(blocked, naive, "bit-identical modes must share addresses");
    // Tiled reorders FP accumulation: last-ulp-different oracles may not
    // alias the default family's artifacts.
    assert_ne!(blocked, tiled, "reordering mode must be keyed separately");
}
