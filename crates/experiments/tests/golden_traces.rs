//! Golden-trace regression suite: fixed-seed golden runs of every scenario
//! digest to committed fixtures, so any behavioral drift anywhere in the
//! stack (world, sensors, perception, planner, scheduler, RNG) fails loudly
//! here rather than silently shifting the paper's numbers.
//!
//! The digest ([`av_simkit::recorder::RunRecord::digest`]) folds every
//! sample field bit-exactly (`f64::to_bits`) plus the event sequence, so a
//! fixture mismatch means the trajectory changed down to the last ULP. If a
//! change is *intentional* (e.g. a planner retune), regenerate the constants
//! with:
//!
//! ```text
//! cargo test -p av-experiments --test golden_traces -- --nocapture print_digests --ignored
//! ```

use av_experiments::prelude::*;
use av_faults::{FaultKind, FaultPlan, FaultSpec};

/// 〈scenario, seed, expected digest〉 for every driving scenario.
const GOLDEN: [(ScenarioId, u64, &str); 5] = [
    (ScenarioId::Ds1, 7, "88fd3971a1e3db6f"),
    (ScenarioId::Ds2, 7, "8ac9cef96c26d7c6"),
    (ScenarioId::Ds3, 7, "a7da8c6ce2fbf298"),
    (ScenarioId::Ds4, 7, "a3119dae4c2710e6"),
    (ScenarioId::Ds5, 7, "cfdbc2735d4a6661"),
];

fn golden_run(scenario: ScenarioId, seed: u64) -> String {
    SimSession::builder(scenario)
        .seed(seed)
        .build()
        .run()
        .record
        .digest()
}

#[test]
#[ignore = "helper: prints current digests for fixture regeneration"]
fn print_digests() {
    for (scenario, seed, _) in GOLDEN {
        println!(
            "    (ScenarioId::{scenario:?}, {seed}, \"{}\"),",
            golden_run(scenario, seed)
        );
    }
}

#[test]
fn golden_traces_match_committed_fixtures() {
    for (scenario, seed, expected) in GOLDEN {
        let digest = golden_run(scenario, seed);
        assert_eq!(
            digest, expected,
            "{scenario:?} seed {seed}: trace drifted from fixture — if intentional, \
             regenerate with the ignored print_digests test"
        );
    }
}

#[test]
fn empty_fault_plan_is_bit_identical_to_baseline() {
    for (scenario, seed, _) in GOLDEN {
        let base = golden_run(scenario, seed);
        let with_empty_plan = SimSession::builder(scenario)
            .seed(seed)
            .faults(FaultPlan::none())
            .build()
            .run()
            .record
            .digest();
        assert_eq!(
            base, with_empty_plan,
            "{scenario:?}: empty plan must be transparent"
        );
    }
}

#[test]
fn never_active_fault_window_is_bit_identical_to_baseline() {
    // A plan whose window opens long after the run ends must also be
    // bit-transparent: out-of-window specs draw no randomness, and the
    // injector's RNG stream is separate from the run's in any case.
    let plan = FaultPlan::none()
        .with(FaultSpec::windowed(
            FaultKind::CameraFrameDrop { probability: 1.0 },
            1e6,
            2e6,
        ))
        .with(FaultSpec::windowed(
            FaultKind::LidarDropout { probability: 1.0 },
            1e6,
            2e6,
        ))
        .with(FaultSpec::windowed(
            FaultKind::GpsBias {
                bias: 5.0,
                drift_per_s: 1.0,
            },
            1e6,
            2e6,
        ));
    for (scenario, seed, _) in GOLDEN {
        let base = golden_run(scenario, seed);
        let gated = SimSession::builder(scenario)
            .seed(seed)
            .faults(plan.clone())
            .build()
            .run();
        assert_eq!(
            base,
            gated.record.digest(),
            "{scenario:?}: gated plan must be transparent"
        );
        assert_eq!(
            gated.faults.total(),
            0,
            "{scenario:?}: nothing may have fired"
        );
    }
}

#[test]
fn active_faults_change_the_trace() {
    // Sanity check on the digest itself: a plan that actually fires must not
    // collide with the golden fixture.
    let plan = FaultPlan::single(FaultSpec::always(FaultKind::CameraFrameDrop {
        probability: 0.3,
    }));
    let base = golden_run(ScenarioId::Ds1, 7);
    let faulted = SimSession::builder(ScenarioId::Ds1)
        .seed(7)
        .faults(plan)
        .build()
        .run();
    assert_ne!(base, faulted.record.digest());
    assert!(faulted.faults.camera_frames_dropped > 0);
}

#[test]
fn null_sink_telemetry_is_bit_identical_to_fixtures() {
    // The observability layer must be a pure observer: running the exact
    // golden configurations with an attached (but discarding) sink and a
    // metrics registry may not move a single bit of the trace.
    for (scenario, seed, expected) in GOLDEN {
        let outcome = SimSession::builder(scenario)
            .seed(seed)
            .telemetry(Telemetry::with_sink(NullSink))
            .build()
            .run();
        assert_eq!(
            outcome.record.digest(),
            expected,
            "{scenario:?} seed {seed}: null-sink telemetry perturbed the run"
        );
    }
}

#[test]
fn reused_session_worker_is_bit_identical_to_fixtures() {
    // Campaign workers keep one SessionWorker (long-lived ADS + frame
    // buffers) across runs. Reuse across scenarios exercises both paths —
    // reset on matching configuration, rebuild when the cruise speed
    // changes — and must not move a single bit vs. fresh construction.
    let mut worker = SessionWorker::new();
    for _ in 0..2 {
        for (scenario, seed, expected) in GOLDEN {
            let outcome = SimSession::builder(scenario)
                .seed(seed)
                .build()
                .run_with(&mut worker);
            assert_eq!(
                outcome.record.digest(),
                expected,
                "{scenario:?} seed {seed}: reused worker perturbed the run"
            );
        }
    }
}

#[test]
fn reused_worker_rebuilds_on_config_change() {
    // A worker that just ran a non-default calibration must still produce
    // the golden trace when handed the default configuration again.
    let mut worker = SessionWorker::new();
    SimSession::builder(ScenarioId::Ds1)
        .seed(7)
        .calibration(av_perception::calibration::DetectorCalibration::ideal())
        .build()
        .run_with(&mut worker);
    let outcome = SimSession::builder(ScenarioId::Ds1)
        .seed(7)
        .build()
        .run_with(&mut worker);
    assert_eq!(outcome.record.digest(), GOLDEN[0].2);
}
