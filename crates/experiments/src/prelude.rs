//! One-stop imports for writing experiments.
//!
//! ```
//! use av_experiments::prelude::*;
//! let out = SimSession::builder(ScenarioId::Ds2).seed(7).build().run();
//! assert!(!out.collided);
//! ```
//!
//! Re-exports the session builder, the run/campaign types, the telemetry
//! layer, and the scenario ids — everything the `src/bin` experiment
//! binaries need for their main loops. [`SimSession`] is the only entry
//! point for executing a run.

pub use crate::campaign::{
    default_threads, run_campaign, run_campaign_dispatch, run_campaign_with_threads, Campaign,
    CampaignError, CampaignResult, DispatchMode,
};
pub use crate::runner::{AttackerSpec, OracleSpec, RunConfig, RunOutcome};
pub use crate::session::{SessionWorker, SimSession, SimSessionBuilder};
pub use crate::train_sh::{train_oracle, TrainedOracle};
pub use av_simkit::scenario::ScenarioId;
pub use av_telemetry::{
    EventKind, JsonlSink, MetricsRegistry, MetricsSnapshot, NullSink, RingBufferSink, SharedSink,
    Stage, StageSummary, Telemetry, TraceEvent, TraceRecord, TraceSink,
};
pub use robotack::vector::AttackVector;
