//! Safety-hijacker training pipeline (§IV-B).
//!
//! "To collect training data, we ran several simulations, where each
//! simulation had a predefined δ_inject and a k, i.e., an attack started as
//! soon as δt = δ_inject, and continued for k consecutive time-steps. The
//! dataset characterized the ADS's responses to attacks." — this module is
//! exactly that: a (δ_inject × k × seed) sweep with the
//! [`AttackerSpec::AtDelta`] attacker, labeled with the ground-truth safety
//! potential at the attack's end, followed by Adam training of the paper's
//! 100/100/50 network with a 60/40 train/validation split.

use crate::campaign::default_threads;
use crate::runner::{AttackerSpec, RunOutcome};
use crate::session::{SessionWorker, SimSession};
use av_neural::mlp::Mlp;
use av_neural::train::{mse, train, Dataset, Normalizer, TrainConfig};
use av_simkit::scenario::ScenarioId;
use rand::SeedableRng;
use robotack::safety_hijacker::NnOracle;
use robotack::vector::AttackVector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One labeled training row: replica features at launch → target δ.
type Example = (Vec<f64>, Vec<f64>);

/// Sweep parameters for dataset collection.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// δ_inject values (m).
    pub delta_injects: Vec<f64>,
    /// Attack lengths k (frames).
    pub ks: Vec<u32>,
    /// Seeds per (δ, k) cell.
    pub seeds_per_cell: u64,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            delta_injects: vec![
                4.0, 6.0, 8.0, 10.0, 14.0, 18.0, 22.0, 26.0, 30.0, 36.0, 42.0, 50.0, 60.0,
            ],
            ks: vec![5, 10, 15, 20, 25, 35, 45, 55, 59, 65, 80],
            seeds_per_cell: 5,
            base_seed: 0x5EED,
        }
    }
}

impl SweepConfig {
    /// A small sweep for unit tests.
    pub fn tiny() -> Self {
        SweepConfig {
            delta_injects: vec![10.0, 20.0],
            ks: vec![10, 40],
            seeds_per_cell: 1,
            base_seed: 0x5EED,
        }
    }
}

/// A trained per-〈scenario, vector〉 oracle plus its quality metrics.
#[derive(Debug, Clone)]
pub struct TrainedOracle {
    /// The oracle, ready to drive a [`robotack::RoboTack`].
    pub oracle: Arc<NnOracle>,
    /// Validation mean-squared error (m²).
    pub val_mse: f64,
    /// Training examples used.
    pub examples: usize,
}

/// Collects the ADS-response dataset for one 〈scenario, vector〉 pair.
///
/// Each run contributes one example: the malware-replica features at launch
/// (plus k) → the ground-truth target safety potential at attack end.
pub fn collect_dataset(scenario: ScenarioId, vector: AttackVector, sweep: &SweepConfig) -> Dataset {
    let mut cells = Vec::new();
    for &delta_inject in &sweep.delta_injects {
        for &k in &sweep.ks {
            for s in 0..sweep.seeds_per_cell {
                let seed = sweep.base_seed
                    + av_simkit::rng::mix((delta_inject * 10.0) as u64, u64::from(k)) % 10_000
                    + s;
                cells.push((delta_inject, k, seed));
            }
        }
    }

    // Parallel collection: the same work-stealing dispatch as campaigns —
    // workers claim cells off an atomic queue and keep one long-lived
    // SessionWorker each, so the warmed ADS/frame buffers survive the sweep.
    let run_cell = |worker: &mut SessionWorker, (delta_inject, k, seed): (f64, u32, u64)| {
        let outcome = SimSession::builder(scenario)
            .seed(seed)
            .attacker(AttackerSpec::AtDelta {
                vector: Some(vector),
                delta_inject,
                k,
            })
            .build()
            .run_with(worker);
        example_from(&outcome)
    };

    let mut rows: Vec<Option<Example>> = Vec::new();
    rows.resize_with(cells.len(), || None);
    let workers = default_threads().min(cells.len());
    if workers <= 1 {
        let mut session_worker = SessionWorker::new();
        for (slot, &cell) in rows.iter_mut().zip(&cells) {
            *slot = run_cell(&mut session_worker, cell);
        }
    } else {
        let next = AtomicU64::new(0);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (next, cells, run_cell) = (&next, &cells, &run_cell);
                    scope.spawn(move |_| {
                        let mut session_worker = SessionWorker::new();
                        let mut claimed: Vec<(usize, Option<Example>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                            if i >= cells.len() {
                                break;
                            }
                            claimed.push((i, run_cell(&mut session_worker, cells[i])));
                        }
                        claimed
                    })
                })
                .collect();
            for handle in handles {
                for (i, example) in handle.join().expect("dataset worker panicked") {
                    rows[i] = example;
                }
            }
        })
        .expect("dataset scope panicked");
    }

    Dataset::from_rows(rows.into_iter().flatten())
}

/// Extracts a training example from one sweep run, if the attack launched
/// and a label could be taken.
///
/// The label is the quantity the attack actually minimizes: the ground-truth
/// in-path δ for Move_Out/Disappear (the real hazard), the EV's *perceived*
/// in-path δ for Move_In (the real δ is untouched; the phantom forces the
/// braking, §VI-D "Move_In attacks did not reduce δ but caused EB only").
fn example_from(outcome: &RunOutcome) -> Option<Example> {
    let features = outcome.attack.features_at_launch?;
    let label = match outcome.attack.vector? {
        robotack::vector::AttackVector::MoveIn => outcome.min_perceived_delta_post_attack?,
        _ => outcome.min_delta_attack_window?,
    };
    // Clamp: anything above ~40 m means "the attack had no effect" — the
    // exact clear-road value is irrelevant and would dominate the MSE.
    Some((
        features.to_input(outcome.attack.k),
        vec![label.clamp(-10.0, 40.0)],
    ))
}

/// Trains the per-〈scenario, vector〉 oracle (§IV-B protocol: paper
/// architecture, Adam, MSE, 60/40 split).
pub fn train_oracle(
    scenario: ScenarioId,
    vector: AttackVector,
    sweep: &SweepConfig,
) -> Option<TrainedOracle> {
    let data = collect_dataset(scenario, vector, sweep);
    train_oracle_on(&data)
}

/// Trains an oracle on an already-collected dataset.
pub fn train_oracle_on(data: &Dataset) -> Option<TrainedOracle> {
    if data.len() < 8 {
        return None;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0011_ACED);
    // One clone total: split_owned moves the cloned rows into the two sets,
    // and normalization rewrites each input row in place (same bits as
    // Normalizer::apply).
    let (mut train_n, mut val_n) = data.clone().split_owned(0.6, &mut rng);
    let normalizer = Normalizer::fit(&train_n);
    for set in [&mut train_n, &mut val_n] {
        for x in &mut set.inputs {
            normalizer.apply_in_place(x);
        }
    }

    let mut net = Mlp::paper_architecture(train_n.inputs[0].len(), &mut rng);
    train(
        &mut net,
        &train_n,
        &TrainConfig {
            epochs: 300,
            batch_size: 16,
            learning_rate: 1e-3,
        },
        &mut rng,
    );
    let val_mse = mse(&net, &val_n);
    Some(TrainedOracle {
        oracle: Arc::new(NnOracle::new(net, normalizer)),
        val_mse,
        examples: data.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_require_launch_and_label() {
        let outcome = SimSession::builder(ScenarioId::Ds1)
            .seed(1)
            .attacker(AttackerSpec::AtDelta {
                vector: Some(AttackVector::MoveOut),
                delta_inject: 25.0,
                k: 20,
            })
            .build()
            .run();
        let ex = example_from(&outcome);
        if outcome.attack.launched_at.is_some() {
            let (x, y) = ex.expect("launched run yields an example");
            assert_eq!(x.len(), 5);
            assert_eq!(x[4], 20.0);
            assert_eq!(y.len(), 1);
        }
    }

    #[test]
    fn oracle_training_on_synthetic_data() {
        // Synthetic "ADS response": δ_{t+k} = δ − 0.1 k (pure kinematics).
        let data = Dataset::from_rows((0..200).map(|i| {
            let delta = 5.0 + f64::from(i % 20) * 2.0;
            let k = f64::from(i % 9) * 10.0;
            (vec![delta, -3.0, 0.0, 0.0, k], vec![delta - 0.1 * k])
        }));
        let trained = train_oracle_on(&data).unwrap();
        assert!(trained.val_mse < 6.0, "val mse {}", trained.val_mse);
        // Prediction decreases with k.
        use robotack::safety_hijacker::{AttackFeatures, SafetyOracle};
        let f = AttackFeatures {
            delta: 25.0,
            v_rel_lon: -3.0,
            v_rel_lat: 0.0,
            a_rel_lon: 0.0,
        };
        let d10 = trained.oracle.predict_delta(&f, 10);
        let d80 = trained.oracle.predict_delta(&f, 80);
        assert!(d80 < d10, "monotone-ish in k: {d10} vs {d80}");
    }

    #[test]
    fn too_small_dataset_is_rejected() {
        let data = Dataset::from_rows((0..4).map(|i| (vec![f64::from(i); 5], vec![0.0])));
        assert!(train_oracle_on(&data).is_none());
    }
}
