//! Statistics: moments, percentiles, box-plot summaries, and the
//! distribution fits used in Fig. 5.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on sorted data.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// Five-number box-plot summary (min, q1, median, q3, max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxSummary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxSummary {
    /// Computes the summary (NaNs for an empty slice).
    pub fn of(xs: &[f64]) -> BoxSummary {
        BoxSummary {
            min: percentile(xs, 0.0),
            q1: percentile(xs, 0.25),
            median: percentile(xs, 0.5),
            q3: percentile(xs, 0.75),
            max: percentile(xs, 1.0),
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for BoxSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.1} | q1 {:.1} | med {:.1} | q3 {:.1} | max {:.1} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.n
        )
    }
}

/// Fitted shifted exponential `Exp(loc, λ)` (Fig. 5 a–b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Location (minimum observed value).
    pub loc: f64,
    /// Maximum-likelihood rate λ = 1/(mean − loc).
    pub lambda: f64,
    /// Empirical 99th percentile.
    pub p99: f64,
    /// Sample count.
    pub n: usize,
}

/// Fits a shifted exponential by maximum likelihood.
pub fn fit_exponential(xs: &[f64]) -> Option<ExponentialFit> {
    if xs.len() < 2 {
        return None;
    }
    let loc = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let m = mean(xs);
    let spread = (m - loc).max(1e-9);
    Some(ExponentialFit {
        loc,
        lambda: 1.0 / spread,
        p99: percentile(xs, 0.99),
        n: xs.len(),
    })
}

/// Fitted Gaussian (Fig. 5 c–f).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalFit {
    /// Mean µ.
    pub mean: f64,
    /// Standard deviation σ.
    pub std_dev: f64,
    /// Empirical 99th percentile.
    pub p99: f64,
    /// Sample count.
    pub n: usize,
}

/// Fits a Gaussian by moments.
pub fn fit_normal(xs: &[f64]) -> Option<NormalFit> {
    if xs.len() < 2 {
        return None;
    }
    Some(NormalFit {
        mean: mean(xs),
        std_dev: std_dev(xs),
        p99: percentile(xs, 0.99),
        n: xs.len(),
    })
}

/// A simple fixed-width histogram (for log-count plots like Fig. 5 a–b).
pub fn histogram(xs: &[f64], bin_width: f64, max_bins: usize) -> Vec<(f64, usize)> {
    if xs.is_empty() || bin_width <= 0.0 {
        return Vec::new();
    }
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let mut bins = vec![0usize; max_bins];
    let mut top = 0usize;
    for &x in xs {
        let idx = (((x - lo) / bin_width) as usize).min(max_bins - 1);
        bins[idx] += 1;
        top = top.max(idx);
    }
    (0..=top)
        .map(|i| (lo + bin_width * i as f64, bins[i]))
        .collect()
}

/// Fraction of `xs` that satisfies `pred`, as a percentage.
pub fn rate_pct<T, F: Fn(&T) -> bool>(xs: &[T], pred: F) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    100.0 * xs.iter().filter(|x| pred(x)).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn box_summary_ordering() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = BoxSummary::of(&xs);
        assert_eq!((b.min, b.median, b.max), (1.0, 3.0, 5.0));
        assert!(b.q1 <= b.median && b.median <= b.q3);
        assert_eq!(b.n, 5);
    }

    #[test]
    fn exponential_fit_recovers_lambda() {
        // Deterministic inverse-CDF samples of Exp(loc=1, λ=0.5).
        let n = 10_000;
        let xs: Vec<f64> = (1..=n)
            .map(|i| {
                let u = i as f64 / (n + 1) as f64;
                1.0 - (1.0 - u).ln() / 0.5
            })
            .collect();
        let fit = fit_exponential(&xs).unwrap();
        assert!((fit.loc - 1.0).abs() < 0.01, "loc {}", fit.loc);
        assert!((fit.lambda - 0.5).abs() < 0.02, "lambda {}", fit.lambda);
        assert!(fit.p99 > 9.0, "p99 {}", fit.p99);
    }

    #[test]
    fn normal_fit_recovers_moments() {
        let xs: Vec<f64> = (0..1000).map(|i| 3.0 + (i % 7) as f64 - 3.0).collect();
        let fit = fit_normal(&xs).unwrap();
        assert!((fit.mean - 3.0).abs() < 0.01);
        assert!(fit.std_dev > 1.5);
    }

    #[test]
    fn histogram_counts() {
        let xs = [1.0, 1.2, 2.1, 5.0];
        let h = histogram(&xs, 1.0, 64);
        assert_eq!(h[0], (1.0, 2));
        assert_eq!(h[1], (2.0, 1));
        assert_eq!(h[4], (5.0, 1));
        assert!(histogram(&[], 1.0, 8).is_empty());
    }

    #[test]
    fn rate_pct_basic() {
        let xs = [1, 2, 3, 4];
        assert_eq!(rate_pct(&xs, |x| *x > 2), 50.0);
        assert_eq!(rate_pct::<i32, _>(&[], |_| true), 0.0);
    }
}
