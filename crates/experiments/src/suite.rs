//! The standard experiment suite: the paper's campaign matrix and shared
//! CLI handling for the experiment binaries.

use crate::campaign::{
    default_threads, run_campaign_dispatch, Campaign, CampaignResult, DispatchMode,
};
use crate::oracle_cache::{OracleCache, DATASET_CODE_VERSION};
use crate::runner::{AttackerSpec, OracleSpec};
use crate::train_sh::SweepConfig;
use av_simkit::scenario::ScenarioId;
use av_suite::api::{EvalRequest, Priority};
use av_suite::fnv::Fnv1a;
use av_suite::ArtifactStore;
use robotack::vector::AttackVector;
use std::path::PathBuf;
use std::sync::Arc;

/// The six 〈scenario, vector〉 RoboTack arms of Table II, in paper row order.
pub const ARMS: [(ScenarioId, AttackVector, &str); 6] = [
    (ScenarioId::Ds1, AttackVector::Disappear, "DS-1-Disappear-R"),
    (ScenarioId::Ds2, AttackVector::Disappear, "DS-2-Disappear-R"),
    (ScenarioId::Ds1, AttackVector::MoveOut, "DS-1-Move_Out-R"),
    (ScenarioId::Ds2, AttackVector::MoveOut, "DS-2-Move_Out-R"),
    (ScenarioId::Ds3, AttackVector::MoveIn, "DS-3-Move_In-R"),
    (ScenarioId::Ds4, AttackVector::MoveIn, "DS-4-Move_In-R"),
];

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Runs per campaign.
    pub runs: u64,
    /// Quick mode: small sweeps and few runs (CI smoke).
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
    /// Oracle-cache root (`--cache-dir`); `None` means the default
    /// `target/oracle-cache/`.
    pub cache_dir: Option<PathBuf>,
    /// Disable the oracle cache entirely (`--no-cache`).
    pub no_cache: bool,
    /// Campaign dispatch mode (`--batch N` selects the lockstep batch
    /// engine with N-session blocks; default is work stealing).
    pub dispatch: DispatchMode,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            runs: 120,
            quick: false,
            seed: 2020,
            cache_dir: None,
            no_cache: false,
            dispatch: DispatchMode::WorkStealing,
        }
    }
}

impl Args {
    /// Parses `--runs N`, `--quick`, `--seed S`, `--cache-dir DIR`,
    /// `--no-cache`, `--batch N` from `std::env::args`, warning about
    /// anything else.
    pub fn parse() -> Args {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let (args, unknown) = Args::parse_known(&argv);
        for other in unknown {
            eprintln!("ignoring unknown argument {other:?}");
        }
        args
    }

    /// Parses the shared options out of `argv`, returning the arguments it
    /// did not understand (so wrapper CLIs like `suite` can layer their own
    /// flags on top without re-implementing the shared ones).
    pub fn parse_known(argv: &[String]) -> (Args, Vec<String>) {
        let mut args = Args::default();
        let mut unknown = Vec::new();
        let mut iter = argv.iter();
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--quick" => {
                    args.quick = true;
                    args.runs = args.runs.min(12);
                }
                "--runs" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.runs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.seed = v;
                    }
                }
                "--cache-dir" => {
                    if let Some(v) = iter.next() {
                        args.cache_dir = Some(PathBuf::from(v));
                    }
                }
                "--no-cache" => args.no_cache = true,
                "--batch" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.dispatch = DispatchMode::Batched { batch_size: v };
                    }
                }
                other => unknown.push(other.to_string()),
            }
        }
        (args, unknown)
    }

    /// The artifact store these options select: disabled under
    /// `--no-cache`, otherwise rooted at `--cache-dir` or the default
    /// directory.
    pub fn artifact_store(&self) -> ArtifactStore {
        if self.no_cache {
            ArtifactStore::disabled()
        } else {
            ArtifactStore::at(
                self.cache_dir
                    .clone()
                    .unwrap_or_else(OracleCache::default_dir),
            )
        }
    }

    /// The oracle cache these options select: a view over
    /// [`Args::artifact_store`].
    pub fn oracle_cache(&self) -> OracleCache {
        OracleCache::over(Arc::new(self.artifact_store()))
    }

    /// A digest of everything that determines job outputs for this
    /// configuration — the run manifest's compatibility key. Two
    /// invocations with the same config key may resume each other's
    /// manifests; anything else starts fresh.
    ///
    /// [`Args::dispatch`] is deliberately **excluded**: the batch engine's
    /// determinism contract makes every job output bit-identical across
    /// dispatch modes, so sequential and batched invocations share
    /// manifests and caches (and CI byte-diffs their stdout).
    pub fn config_key(&self) -> u64 {
        let sweep = self.sweep();
        let mut h = Fnv1a::new();
        h.write_u64(u64::from(DATASET_CODE_VERSION));
        h.write_u64(self.runs);
        h.write_u64(u64::from(self.quick));
        h.write_u64(self.seed);
        h.write_u64(sweep.delta_injects.len() as u64);
        for &d in &sweep.delta_injects {
            h.write_f64(d);
        }
        h.write_u64(sweep.ks.len() as u64);
        for &k in &sweep.ks {
            h.write_u64(u64::from(k));
        }
        h.write_u64(sweep.seeds_per_cell);
        h.write_u64(sweep.base_seed);
        h.finish()
    }

    /// The training sweep matching this mode.
    pub fn sweep(&self) -> SweepConfig {
        if self.quick {
            SweepConfig {
                delta_injects: vec![8.0, 16.0, 24.0, 32.0],
                ks: vec![10, 30, 50, 70],
                seeds_per_cell: 1,
                ..SweepConfig::default()
            }
        } else {
            SweepConfig::default()
        }
    }
}

/// Command-line options of the `suite` orchestrator binary: the shared
/// [`Args`] plus scheduling flags.
#[derive(Debug, Clone)]
pub struct SuiteArgs {
    /// The shared experiment options (forwarded to every job).
    pub base: Args,
    /// Worker threads for the job pool (`--jobs N`).
    pub jobs: usize,
    /// Restrict the run to these jobs plus their transitive dependencies
    /// (`--only JOB`, repeatable).
    pub only: Vec<String>,
    /// Print the job DAG and exit (`--list`).
    pub list: bool,
    /// Run-manifest path (`--manifest FILE`); `None` means
    /// `target/suite-manifest.jsonl`.
    pub manifest: Option<PathBuf>,
    /// Ignore any existing manifest and re-run every job (`--no-resume`).
    pub no_resume: bool,
    /// Unix-socket path for `suite serve` / `suite request`
    /// (`--socket PATH`); `None` means `target/suite.sock`.
    pub socket: Option<PathBuf>,
    /// Concurrent requests the daemon admits at once
    /// (`--request-slots N`, serve mode).
    pub request_slots: usize,
    /// Admission class of this request (`--priority interactive|batch`,
    /// request mode).
    pub priority: Priority,
    /// Correlation id for this request (`--id NAME`, request mode); the
    /// daemon assigns one when empty.
    pub id: String,
    /// Send the shutdown sentinel instead of a request
    /// (`request --shutdown`).
    pub shutdown: bool,
}

impl Default for SuiteArgs {
    fn default() -> Self {
        SuiteArgs {
            base: Args::default(),
            jobs: 2,
            only: Vec::new(),
            list: false,
            manifest: None,
            no_resume: false,
            socket: None,
            request_slots: 2,
            priority: Priority::Interactive,
            id: String::new(),
            shutdown: false,
        }
    }
}

impl SuiteArgs {
    /// Parses suite flags plus the shared [`Args`] from `std::env::args`.
    pub fn parse() -> SuiteArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        SuiteArgs::parse_from(&argv)
    }

    /// Parses suite flags plus the shared [`Args`] from `argv`.
    pub fn parse_from(argv: &[String]) -> SuiteArgs {
        let (base, rest) = Args::parse_known(argv);
        let mut args = SuiteArgs {
            base,
            ..SuiteArgs::default()
        };
        let mut iter = rest.iter();
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--jobs" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.jobs = v;
                    }
                }
                "--only" => {
                    if let Some(v) = iter.next() {
                        args.only.push(v.to_string());
                    }
                }
                "--list" => args.list = true,
                "--manifest" => {
                    if let Some(v) = iter.next() {
                        args.manifest = Some(PathBuf::from(v));
                    }
                }
                "--no-resume" => args.no_resume = true,
                "--socket" => {
                    if let Some(v) = iter.next() {
                        args.socket = Some(PathBuf::from(v));
                    }
                }
                "--request-slots" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.request_slots = v;
                    }
                }
                "--priority" => {
                    if let Some(v) = iter.next().and_then(|v| Priority::parse(v)) {
                        args.priority = v;
                    }
                }
                "--id" => {
                    if let Some(v) = iter.next() {
                        args.id = v.to_string();
                    }
                }
                "--shutdown" => args.shutdown = true,
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        args.jobs = args.jobs.max(1);
        args.request_slots = args.request_slots.max(1);
        args
    }

    /// The manifest path this run appends to.
    pub fn manifest_path(&self) -> PathBuf {
        self.manifest
            .clone()
            .unwrap_or_else(|| PathBuf::from("target").join("suite-manifest.jsonl"))
    }

    /// The Unix-socket path serve/request mode binds or connects to.
    pub fn socket_path(&self) -> PathBuf {
        self.socket
            .clone()
            .unwrap_or_else(|| PathBuf::from("target").join("suite.sock"))
    }

    /// The typed [`EvalRequest`] these flags describe — the single request
    /// type both the one-shot CLI and the daemon execute, so
    /// `suite --only table2` and `suite request --only table2` are
    /// *literally* the same evaluation (see [`crate::jobs::request_args`]
    /// for the inverse mapping).
    pub fn to_request(&self) -> EvalRequest {
        EvalRequest {
            id: self.id.clone(),
            only: self.only.clone(),
            runs: self.base.runs,
            quick: self.base.quick,
            seed: self.base.seed,
            // The wire API models the two CLI-reachable modes; the
            // historical static-chunks shim (benchmark-only) maps to the
            // default.
            batch: match self.base.dispatch {
                DispatchMode::Batched { batch_size } => Some(batch_size),
                DispatchMode::WorkStealing | DispatchMode::StaticChunks => None,
            },
            jobs: self.jobs,
            priority: self.priority,
        }
    }
}

/// Trains (or loads from `cache`, or falls back for) the safety-hijacker
/// oracle for one arm.
///
/// A cache hit returns the exact oracle a fresh training run would produce,
/// so the description — and everything downstream — is byte-identical
/// whether the cache was warm or cold. Falls back to the closed-form
/// kinematic oracle when training data is too scarce — the binaries print
/// which oracle each arm ended up with.
pub fn oracle_for(
    scenario: ScenarioId,
    vector: AttackVector,
    sweep: &SweepConfig,
    cache: &OracleCache,
) -> (OracleSpec, String) {
    match cache.oracle_for(scenario, vector, sweep) {
        Some(trained) => {
            let desc = format!(
                "NN oracle ({} examples, val mse {:.2} m²)",
                trained.examples, trained.val_mse
            );
            (OracleSpec::Nn(trained.oracle), desc)
        }
        None => (
            OracleSpec::Kinematic,
            "kinematic fallback (insufficient data)".into(),
        ),
    }
}

/// Prints the cache scorecard to stderr (stdout stays byte-identical across
/// warm and cold runs — CI diffs it).
pub fn report_cache(cache: &OracleCache) {
    if cache.is_enabled() {
        eprintln!(
            "[oracle-cache] hits={} misses={}",
            cache.hits(),
            cache.misses()
        );
        eprintln!(
            "[artifact] dataset hits={} misses={}",
            cache.dataset_hits(),
            cache.dataset_misses()
        );
    } else {
        eprintln!("[oracle-cache] disabled");
        eprintln!("[artifact] dataset cache disabled");
    }
}

/// Builds and runs one full-RoboTack campaign.
pub fn run_r_campaign(
    name: &str,
    scenario: ScenarioId,
    vector: AttackVector,
    oracle: OracleSpec,
    runs: u64,
    seed: u64,
    dispatch: DispatchMode,
) -> CampaignResult {
    run_campaign_dispatch(
        &Campaign::new(
            name,
            scenario,
            AttackerSpec::RoboTack {
                vector: Some(vector),
                oracle,
            },
            runs,
            seed,
        ),
        default_threads(),
        dispatch,
    )
    .expect("default_threads() is nonzero")
}

/// Builds and runs one "R w/o SH" campaign.
pub fn run_nosh_campaign(
    name: &str,
    scenario: ScenarioId,
    vector: AttackVector,
    runs: u64,
    seed: u64,
    dispatch: DispatchMode,
) -> CampaignResult {
    run_campaign_dispatch(
        &Campaign::new(
            name,
            scenario,
            AttackerSpec::RoboTackNoSh {
                vector: Some(vector),
            },
            runs,
            seed,
        ),
        default_threads(),
        dispatch,
    )
    .expect("default_threads() is nonzero")
}

/// Builds and runs the DS-5 random baseline campaign.
pub fn run_baseline_campaign(runs: u64, seed: u64, dispatch: DispatchMode) -> CampaignResult {
    run_campaign_dispatch(
        &Campaign::new(
            "DS-5-Baseline-Random",
            ScenarioId::Ds5,
            AttackerSpec::Random,
            runs,
            seed,
        ),
        default_threads(),
        dispatch,
    )
    .expect("default_threads() is nonzero")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_cover_the_paper_matrix() {
        assert_eq!(ARMS.len(), 6);
        let disappear = ARMS
            .iter()
            .filter(|(_, v, _)| *v == AttackVector::Disappear)
            .count();
        let move_in = ARMS
            .iter()
            .filter(|(_, v, _)| *v == AttackVector::MoveIn)
            .count();
        assert_eq!(disappear, 2);
        assert_eq!(move_in, 2);
        assert!(ARMS.iter().all(|(_, _, n)| n.ends_with("-R")));
    }

    #[test]
    fn quick_sweep_is_small() {
        let quick = Args {
            runs: 5,
            quick: true,
            ..Args::default()
        }
        .sweep();
        let full = Args {
            runs: 100,
            quick: false,
            ..Args::default()
        }
        .sweep();
        assert!(quick.delta_injects.len() < full.delta_injects.len());
        assert!(quick.ks.len() < full.ks.len());
    }

    #[test]
    fn parse_known_splits_shared_and_unknown_flags() {
        let argv: Vec<String> = ["--quick", "--jobs", "4", "--seed", "7", "--only", "table2"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (args, unknown) = Args::parse_known(&argv);
        assert!(args.quick);
        assert_eq!(args.seed, 7);
        assert_eq!(unknown, ["--jobs", "4", "--only", "table2"]);

        let suite = SuiteArgs::parse_from(&argv);
        assert!(suite.base.quick);
        assert_eq!(suite.base.seed, 7);
        assert_eq!(suite.jobs, 4);
        assert_eq!(suite.only, ["table2"]);
        assert!(!suite.list);
        assert!(suite.manifest_path().ends_with("suite-manifest.jsonl"));
    }

    #[test]
    fn config_key_tracks_every_input() {
        let base = Args::default();
        let k0 = base.config_key();
        assert_eq!(k0, Args::default().config_key(), "stable");
        assert_ne!(
            k0,
            Args {
                runs: base.runs + 1,
                ..base.clone()
            }
            .config_key()
        );
        assert_ne!(
            k0,
            Args {
                seed: base.seed ^ 1,
                ..base.clone()
            }
            .config_key()
        );
        assert_ne!(
            k0,
            Args {
                quick: true,
                ..base.clone()
            }
            .config_key(),
            "quick changes the sweep, so it changes the key"
        );
    }

    #[test]
    fn args_select_the_right_cache() {
        let default = Args::default().oracle_cache();
        assert!(default.is_enabled());

        let disabled = Args {
            no_cache: true,
            cache_dir: Some(PathBuf::from("/tmp/ignored")),
            ..Args::default()
        }
        .oracle_cache();
        assert!(!disabled.is_enabled(), "--no-cache wins over --cache-dir");
    }
}
