//! The standard experiment suite: the paper's campaign matrix and shared
//! CLI handling for the experiment binaries.

use crate::campaign::{run_campaign, Campaign, CampaignResult};
use crate::runner::{AttackerSpec, OracleSpec};
use crate::train_sh::{train_oracle, SweepConfig};
use av_simkit::scenario::ScenarioId;
use robotack::vector::AttackVector;

/// The six 〈scenario, vector〉 RoboTack arms of Table II, in paper row order.
pub const ARMS: [(ScenarioId, AttackVector, &str); 6] = [
    (ScenarioId::Ds1, AttackVector::Disappear, "DS-1-Disappear-R"),
    (ScenarioId::Ds2, AttackVector::Disappear, "DS-2-Disappear-R"),
    (ScenarioId::Ds1, AttackVector::MoveOut, "DS-1-Move_Out-R"),
    (ScenarioId::Ds2, AttackVector::MoveOut, "DS-2-Move_Out-R"),
    (ScenarioId::Ds3, AttackVector::MoveIn, "DS-3-Move_In-R"),
    (ScenarioId::Ds4, AttackVector::MoveIn, "DS-4-Move_In-R"),
];

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// Runs per campaign.
    pub runs: u64,
    /// Quick mode: small sweeps and few runs (CI smoke).
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
}

impl Args {
    /// Parses `--runs N`, `--quick`, `--seed S` from `std::env::args`.
    pub fn parse() -> Args {
        let mut args = Args {
            runs: 120,
            quick: false,
            seed: 2020,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--quick" => {
                    args.quick = true;
                    args.runs = args.runs.min(12);
                }
                "--runs" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.runs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.seed = v;
                    }
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        args
    }

    /// The training sweep matching this mode.
    pub fn sweep(&self) -> SweepConfig {
        if self.quick {
            SweepConfig {
                delta_injects: vec![8.0, 16.0, 24.0, 32.0],
                ks: vec![10, 30, 50, 70],
                seeds_per_cell: 1,
                ..SweepConfig::default()
            }
        } else {
            SweepConfig::default()
        }
    }
}

/// Trains (or falls back for) the safety-hijacker oracle for one arm.
///
/// Falls back to the closed-form kinematic oracle when training data is too
/// scarce — the binaries print which oracle each arm ended up with.
pub fn oracle_for(
    scenario: ScenarioId,
    vector: AttackVector,
    sweep: &SweepConfig,
) -> (OracleSpec, String) {
    match train_oracle(scenario, vector, sweep) {
        Some(trained) => {
            let desc = format!(
                "NN oracle ({} examples, val mse {:.2} m²)",
                trained.examples, trained.val_mse
            );
            (OracleSpec::Nn(trained.oracle), desc)
        }
        None => (
            OracleSpec::Kinematic,
            "kinematic fallback (insufficient data)".into(),
        ),
    }
}

/// Builds and runs one full-RoboTack campaign.
pub fn run_r_campaign(
    name: &str,
    scenario: ScenarioId,
    vector: AttackVector,
    oracle: OracleSpec,
    runs: u64,
    seed: u64,
) -> CampaignResult {
    run_campaign(&Campaign::new(
        name,
        scenario,
        AttackerSpec::RoboTack {
            vector: Some(vector),
            oracle,
        },
        runs,
        seed,
    ))
}

/// Builds and runs one "R w/o SH" campaign.
pub fn run_nosh_campaign(
    name: &str,
    scenario: ScenarioId,
    vector: AttackVector,
    runs: u64,
    seed: u64,
) -> CampaignResult {
    run_campaign(&Campaign::new(
        name,
        scenario,
        AttackerSpec::RoboTackNoSh {
            vector: Some(vector),
        },
        runs,
        seed,
    ))
}

/// Builds and runs the DS-5 random baseline campaign.
pub fn run_baseline_campaign(runs: u64, seed: u64) -> CampaignResult {
    run_campaign(&Campaign::new(
        "DS-5-Baseline-Random",
        ScenarioId::Ds5,
        AttackerSpec::Random,
        runs,
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_cover_the_paper_matrix() {
        assert_eq!(ARMS.len(), 6);
        let disappear = ARMS
            .iter()
            .filter(|(_, v, _)| *v == AttackVector::Disappear)
            .count();
        let move_in = ARMS
            .iter()
            .filter(|(_, v, _)| *v == AttackVector::MoveIn)
            .count();
        assert_eq!(disappear, 2);
        assert_eq!(move_in, 2);
        assert!(ARMS.iter().all(|(_, _, n)| n.ends_with("-R")));
    }

    #[test]
    fn quick_sweep_is_small() {
        let quick = Args {
            runs: 5,
            quick: true,
            seed: 1,
        }
        .sweep();
        let full = Args {
            runs: 100,
            quick: false,
            seed: 1,
        }
        .sweep();
        assert!(quick.delta_injects.len() < full.delta_injects.len());
        assert!(quick.ks.len() < full.ks.len());
    }
}
