//! The standard experiment suite: the paper's campaign matrix and shared
//! CLI handling for the experiment binaries.

use crate::campaign::{run_campaign, Campaign, CampaignResult};
use crate::oracle_cache::OracleCache;
use crate::runner::{AttackerSpec, OracleSpec};
use crate::train_sh::SweepConfig;
use av_simkit::scenario::ScenarioId;
use robotack::vector::AttackVector;
use std::path::PathBuf;

/// The six 〈scenario, vector〉 RoboTack arms of Table II, in paper row order.
pub const ARMS: [(ScenarioId, AttackVector, &str); 6] = [
    (ScenarioId::Ds1, AttackVector::Disappear, "DS-1-Disappear-R"),
    (ScenarioId::Ds2, AttackVector::Disappear, "DS-2-Disappear-R"),
    (ScenarioId::Ds1, AttackVector::MoveOut, "DS-1-Move_Out-R"),
    (ScenarioId::Ds2, AttackVector::MoveOut, "DS-2-Move_Out-R"),
    (ScenarioId::Ds3, AttackVector::MoveIn, "DS-3-Move_In-R"),
    (ScenarioId::Ds4, AttackVector::MoveIn, "DS-4-Move_In-R"),
];

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Runs per campaign.
    pub runs: u64,
    /// Quick mode: small sweeps and few runs (CI smoke).
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
    /// Oracle-cache root (`--cache-dir`); `None` means the default
    /// `target/oracle-cache/`.
    pub cache_dir: Option<PathBuf>,
    /// Disable the oracle cache entirely (`--no-cache`).
    pub no_cache: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            runs: 120,
            quick: false,
            seed: 2020,
            cache_dir: None,
            no_cache: false,
        }
    }
}

impl Args {
    /// Parses `--runs N`, `--quick`, `--seed S`, `--cache-dir DIR`,
    /// `--no-cache` from `std::env::args`.
    pub fn parse() -> Args {
        let mut args = Args::default();
        let mut iter = std::env::args().skip(1);
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--quick" => {
                    args.quick = true;
                    args.runs = args.runs.min(12);
                }
                "--runs" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.runs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        args.seed = v;
                    }
                }
                "--cache-dir" => {
                    if let Some(v) = iter.next() {
                        args.cache_dir = Some(PathBuf::from(v));
                    }
                }
                "--no-cache" => args.no_cache = true,
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        args
    }

    /// The oracle cache these options select: disabled under `--no-cache`,
    /// otherwise rooted at `--cache-dir` or the default directory.
    pub fn oracle_cache(&self) -> OracleCache {
        if self.no_cache {
            OracleCache::disabled()
        } else {
            OracleCache::at(
                self.cache_dir
                    .clone()
                    .unwrap_or_else(OracleCache::default_dir),
            )
        }
    }

    /// The training sweep matching this mode.
    pub fn sweep(&self) -> SweepConfig {
        if self.quick {
            SweepConfig {
                delta_injects: vec![8.0, 16.0, 24.0, 32.0],
                ks: vec![10, 30, 50, 70],
                seeds_per_cell: 1,
                ..SweepConfig::default()
            }
        } else {
            SweepConfig::default()
        }
    }
}

/// Trains (or loads from `cache`, or falls back for) the safety-hijacker
/// oracle for one arm.
///
/// A cache hit returns the exact oracle a fresh training run would produce,
/// so the description — and everything downstream — is byte-identical
/// whether the cache was warm or cold. Falls back to the closed-form
/// kinematic oracle when training data is too scarce — the binaries print
/// which oracle each arm ended up with.
pub fn oracle_for(
    scenario: ScenarioId,
    vector: AttackVector,
    sweep: &SweepConfig,
    cache: &OracleCache,
) -> (OracleSpec, String) {
    match cache.oracle_for(scenario, vector, sweep) {
        Some(trained) => {
            let desc = format!(
                "NN oracle ({} examples, val mse {:.2} m²)",
                trained.examples, trained.val_mse
            );
            (OracleSpec::Nn(trained.oracle), desc)
        }
        None => (
            OracleSpec::Kinematic,
            "kinematic fallback (insufficient data)".into(),
        ),
    }
}

/// Prints the cache scorecard to stderr (stdout stays byte-identical across
/// warm and cold runs — CI diffs it).
pub fn report_cache(cache: &OracleCache) {
    if cache.is_enabled() {
        eprintln!(
            "[oracle-cache] hits={} misses={}",
            cache.hits(),
            cache.misses()
        );
    } else {
        eprintln!("[oracle-cache] disabled");
    }
}

/// Builds and runs one full-RoboTack campaign.
pub fn run_r_campaign(
    name: &str,
    scenario: ScenarioId,
    vector: AttackVector,
    oracle: OracleSpec,
    runs: u64,
    seed: u64,
) -> CampaignResult {
    run_campaign(&Campaign::new(
        name,
        scenario,
        AttackerSpec::RoboTack {
            vector: Some(vector),
            oracle,
        },
        runs,
        seed,
    ))
}

/// Builds and runs one "R w/o SH" campaign.
pub fn run_nosh_campaign(
    name: &str,
    scenario: ScenarioId,
    vector: AttackVector,
    runs: u64,
    seed: u64,
) -> CampaignResult {
    run_campaign(&Campaign::new(
        name,
        scenario,
        AttackerSpec::RoboTackNoSh {
            vector: Some(vector),
        },
        runs,
        seed,
    ))
}

/// Builds and runs the DS-5 random baseline campaign.
pub fn run_baseline_campaign(runs: u64, seed: u64) -> CampaignResult {
    run_campaign(&Campaign::new(
        "DS-5-Baseline-Random",
        ScenarioId::Ds5,
        AttackerSpec::Random,
        runs,
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_cover_the_paper_matrix() {
        assert_eq!(ARMS.len(), 6);
        let disappear = ARMS
            .iter()
            .filter(|(_, v, _)| *v == AttackVector::Disappear)
            .count();
        let move_in = ARMS
            .iter()
            .filter(|(_, v, _)| *v == AttackVector::MoveIn)
            .count();
        assert_eq!(disappear, 2);
        assert_eq!(move_in, 2);
        assert!(ARMS.iter().all(|(_, _, n)| n.ends_with("-R")));
    }

    #[test]
    fn quick_sweep_is_small() {
        let quick = Args {
            runs: 5,
            quick: true,
            ..Args::default()
        }
        .sweep();
        let full = Args {
            runs: 100,
            quick: false,
            ..Args::default()
        }
        .sweep();
        assert!(quick.delta_injects.len() < full.delta_injects.len());
        assert!(quick.ks.len() < full.ks.len());
    }

    #[test]
    fn args_select_the_right_cache() {
        let default = Args::default().oracle_cache();
        assert!(default.is_enabled());

        let disabled = Args {
            no_cache: true,
            cache_dir: Some(PathBuf::from("/tmp/ignored")),
            ..Args::default()
        }
        .oracle_cache();
        assert!(!disabled.is_enabled(), "--no-cache wins over --cache-dir");
    }
}
