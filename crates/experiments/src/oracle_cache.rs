//! Content-addressed cache of trained safety-hijacker oracles.
//!
//! Training one oracle means running a full δ_inject × k × seed sweep
//! (~715 simulations) and 300 Adam epochs — and `table2`, `fig6`–`fig8` and
//! `ablations` each retrain the *same* 〈scenario, vector〉 oracles from
//! scratch. This module makes that work content-addressed: the cache key is
//! a digest of everything that determines the trained network bit-for-bit
//! (scenario, vector, the full [`SweepConfig`], and a code-version constant
//! bumped whenever collection/training semantics change), so a warm cache
//! returns the exact oracle a fresh training run would produce.
//!
//! Snapshots live one-per-file under a cache directory (default
//! `target/oracle-cache/`), written atomically via tmp-file + rename. The
//! decoder treats every file as hostile: lengths are bounds-checked against
//! the remaining bytes *before* any allocation, and any mismatch — magic,
//! version, key echo, shape, parameter count — is a miss, never a panic.

use crate::train_sh::{train_oracle, SweepConfig, TrainedOracle};
use av_neural::mlp::Mlp;
use av_neural::train::Normalizer;
use av_simkit::scenario::ScenarioId;
use av_telemetry::{Telemetry, TraceEvent};
use robotack::safety_hijacker::{AttackFeatures, NnOracle};
use robotack::vector::AttackVector;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version of the dataset-collection + training code path. Bump this when
/// [`crate::train_sh`] changes semantics (sweep seeding, labeling, split,
/// architecture, optimizer), so stale snapshots miss instead of resurrecting
/// an oracle the current code would no longer produce.
pub const DATASET_CODE_VERSION: u32 = 1;

/// On-disk snapshot format version.
const FORMAT_VERSION: u32 = 1;

/// Snapshot file magic: "RoboTack Oracle Cache".
const MAGIC: [u8; 4] = *b"RTOC";

/// FNV-1a 64-bit, the digest behind [`cache_key`].
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// The content address of one trained oracle: a digest of every input that
/// determines the training result bit-for-bit.
pub fn cache_key(scenario: ScenarioId, vector: AttackVector, sweep: &SweepConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(u64::from(DATASET_CODE_VERSION));
    h.write(scenario.name().as_bytes());
    h.write(vector.name().as_bytes());
    h.write_u64(sweep.delta_injects.len() as u64);
    for &d in &sweep.delta_injects {
        h.write_f64(d);
    }
    h.write_u64(sweep.ks.len() as u64);
    for &k in &sweep.ks {
        h.write_u64(u64::from(k));
    }
    h.write_u64(sweep.seeds_per_cell);
    h.write_u64(sweep.base_seed);
    h.finish()
}

/// A persistent, content-addressed store of [`TrainedOracle`] snapshots.
///
/// All I/O is best-effort: an unreadable or corrupt snapshot is a cache
/// miss, and a failed store is silently skipped (the freshly trained oracle
/// is still returned).
#[derive(Debug)]
pub struct OracleCache {
    dir: Option<PathBuf>,
    telemetry: Telemetry,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for OracleCache {
    fn default() -> Self {
        OracleCache::disabled()
    }
}

impl OracleCache {
    /// A cache that never hits and never writes (`--no-cache`).
    pub fn disabled() -> OracleCache {
        OracleCache {
            dir: None,
            telemetry: Telemetry::disabled(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> OracleCache {
        OracleCache {
            dir: Some(dir.into()),
            ..OracleCache::disabled()
        }
    }

    /// The default cache root, next to the build artifacts.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target").join("oracle-cache")
    }

    /// Attaches a telemetry handle; hits and misses are emitted as
    /// [`TraceEvent::OracleCacheHit`] / [`TraceEvent::OracleCacheMiss`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> OracleCache {
        self.telemetry = telemetry;
        self
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Snapshot hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Snapshot misses so far (disabled caches count every lookup).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn path_for(dir: &Path, key: u64) -> PathBuf {
        dir.join(format!("{key:016x}.oracle"))
    }

    /// Looks up a snapshot by key. Any I/O or decode failure is a miss.
    pub fn lookup(&self, key: u64) -> Option<TrainedOracle> {
        let found = self
            .dir
            .as_deref()
            .and_then(|dir| std::fs::read(Self::path_for(dir, key)).ok())
            .and_then(|bytes| decode(key, &bytes));
        match found {
            Some(oracle) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.telemetry
                    .emit(0.0, || TraceEvent::OracleCacheHit { key });
                Some(oracle)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.telemetry
                    .emit(0.0, || TraceEvent::OracleCacheMiss { key });
                None
            }
        }
    }

    /// Persists a snapshot under `key` (atomic tmp + rename; best-effort).
    pub fn store(&self, key: u64, oracle: &TrainedOracle) {
        let Some(dir) = self.dir.as_deref() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let bytes = encode(key, oracle);
        let tmp = dir.join(format!("{key:016x}.oracle.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, &bytes).is_ok()
            && std::fs::rename(&tmp, Self::path_for(dir, key)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// The cached equivalent of [`train_oracle`]: returns the snapshot when
    /// present, otherwise trains, stores, and returns the fresh oracle.
    pub fn oracle_for(
        &self,
        scenario: ScenarioId,
        vector: AttackVector,
        sweep: &SweepConfig,
    ) -> Option<TrainedOracle> {
        let key = cache_key(scenario, vector, sweep);
        if let Some(oracle) = self.lookup(key) {
            return Some(oracle);
        }
        let trained = train_oracle(scenario, vector, sweep)?;
        self.store(key, &trained);
        Some(trained)
    }
}

/// Serializes a [`TrainedOracle`] (all integers/floats little-endian).
fn encode(key: u64, oracle: &TrainedOracle) -> Vec<u8> {
    let net = oracle.oracle.network();
    let norm = oracle.oracle.normalizer();
    let sizes = net.layer_sizes();
    let params = net.flatten_params();

    let mut out = Vec::with_capacity(64 + 8 * (2 * norm.mean.len() + sizes.len() + params.len()));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&oracle.val_mse.to_bits().to_le_bytes());
    out.extend_from_slice(&(oracle.examples as u64).to_le_bytes());
    out.extend_from_slice(&(norm.mean.len() as u64).to_le_bytes());
    for &m in &norm.mean {
        out.extend_from_slice(&m.to_bits().to_le_bytes());
    }
    for &s in &norm.std {
        out.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&net.dropout.to_bits().to_le_bytes());
    out.extend_from_slice(&(sizes.len() as u64).to_le_bytes());
    for &s in &sizes {
        out.extend_from_slice(&(s as u64).to_le_bytes());
    }
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for &p in &params {
        out.extend_from_slice(&p.to_bits().to_le_bytes());
    }
    out
}

/// Checked little-endian reader over untrusted bytes.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn bytes<const N: usize>(&mut self) -> Option<[u8; N]> {
        let (head, rest) = self.0.split_at_checked(N)?;
        self.0 = rest;
        head.try_into().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes().map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes().map(u64::from_le_bytes)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads `n` floats, refusing (no allocation) if `n` overshoots the
    /// remaining bytes — the guard that makes hostile length fields cheap.
    fn f64s(&mut self, n: usize) -> Option<Vec<f64>> {
        if n > self.remaining() / 8 {
            return None;
        }
        (0..n).map(|_| self.f64()).collect()
    }
}

/// Deserializes a snapshot; `None` on any structural problem.
fn decode(key: u64, bytes: &[u8]) -> Option<TrainedOracle> {
    let mut r = Reader(bytes);
    if r.bytes()? != MAGIC || r.u32()? != FORMAT_VERSION || r.u64()? != key {
        return None;
    }
    let val_mse = r.f64()?;
    let examples = usize::try_from(r.u64()?).ok()?;

    let dim = usize::try_from(r.u64()?).ok()?;
    let mean = r.f64s(dim)?;
    let std = r.f64s(dim)?;

    let dropout = r.f64()?;
    let n_sizes = usize::try_from(r.u64()?).ok()?;
    if n_sizes > r.remaining() / 8 || n_sizes > 64 {
        return None;
    }
    let sizes: Vec<usize> = (0..n_sizes)
        .map(|_| r.u64().and_then(|s| usize::try_from(s).ok()))
        .collect::<Option<_>>()?;
    let n_params = usize::try_from(r.u64()?).ok()?;
    let params = r.f64s(n_params)?;
    if r.remaining() != 0 {
        return None;
    }

    let net = Mlp::from_flat(&sizes, dropout, &params)?;
    // NnOracle::new asserts the input shape and predict_delta indexes the
    // first output — pre-check both so hostile bytes can never panic.
    if net.input_dim() != AttackFeatures::INPUT_DIM
        || net.output_dim() != 1
        || mean.len() != net.input_dim()
    {
        return None;
    }
    Some(TrainedOracle {
        oracle: Arc::new(NnOracle::new(net, Normalizer { mean, std })),
        val_mse,
        examples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_sh::train_oracle_on;
    use av_neural::train::Dataset;

    fn sample_oracle() -> TrainedOracle {
        let data = Dataset::from_rows((0..64).map(|i| {
            let delta = 5.0 + f64::from(i % 16) * 2.0;
            let k = f64::from(i % 8) * 10.0;
            (vec![delta, -3.0, 0.5, -0.1, k], vec![delta - 0.1 * k])
        }));
        train_oracle_on(&data).expect("synthetic dataset trains")
    }

    fn bitwise_eq(a: &TrainedOracle, b: &TrainedOracle) -> bool {
        let (na, nb) = (a.oracle.network(), b.oracle.network());
        let (ma, mb) = (a.oracle.normalizer(), b.oracle.normalizer());
        na.layer_sizes() == nb.layer_sizes()
            && na.dropout.to_bits() == nb.dropout.to_bits()
            && na
                .flatten_params()
                .iter()
                .zip(nb.flatten_params().iter())
                .all(|(x, y)| x.to_bits() == y.to_bits())
            && ma.mean == mb.mean
            && ma.std == mb.std
            && a.val_mse.to_bits() == b.val_mse.to_bits()
            && a.examples == b.examples
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let oracle = sample_oracle();
        let bytes = encode(42, &oracle);
        let back = decode(42, &bytes).expect("round trip");
        assert!(bitwise_eq(&oracle, &back));
        // Same inputs → same prediction bits.
        use robotack::safety_hijacker::SafetyOracle;
        let f = AttackFeatures {
            delta: 25.0,
            v_rel_lon: -3.0,
            v_rel_lat: 0.5,
            a_rel_lon: -0.1,
        };
        assert_eq!(
            oracle.oracle.predict_delta(&f, 20).to_bits(),
            back.oracle.predict_delta(&f, 20).to_bits()
        );
    }

    #[test]
    fn wrong_key_magic_or_version_miss() {
        let bytes = encode(7, &sample_oracle());
        assert!(decode(8, &bytes).is_none(), "key echo mismatch");
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode(7, &bad_magic).is_none(), "magic mismatch");
        let mut bad_version = bytes.clone();
        bad_version[4] ^= 0xFF;
        assert!(decode(7, &bad_version).is_none(), "format version mismatch");
    }

    #[test]
    fn truncated_and_padded_snapshots_miss() {
        let bytes = encode(3, &sample_oracle());
        for cut in [0, 1, 4, 16, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(3, &bytes[..cut]).is_none(), "truncated at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode(3, &padded).is_none(), "trailing garbage");
    }

    #[test]
    fn key_depends_on_every_sweep_field() {
        let base = SweepConfig::tiny();
        let k0 = cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &base);

        assert_ne!(k0, cache_key(ScenarioId::Ds2, AttackVector::MoveOut, &base));
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveIn, &base));

        let mut s = base.clone();
        s.delta_injects[0] += 1.0;
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &s));
        let mut s = base.clone();
        s.ks.push(99);
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &s));
        let mut s = base.clone();
        s.seeds_per_cell += 1;
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &s));
        let mut s = base.clone();
        s.base_seed ^= 1;
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &s));

        // And is stable for identical inputs.
        assert_eq!(
            k0,
            cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &base.clone())
        );
    }

    #[test]
    fn cold_miss_then_warm_hit_round_trip() {
        let dir = std::env::temp_dir().join(format!("oracle-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = OracleCache::at(&dir);
        let key = 0xDEAD_BEEF_u64;

        assert!(cache.lookup(key).is_none(), "cold cache misses");
        let oracle = sample_oracle();
        cache.store(key, &oracle);
        let back = cache.lookup(key).expect("warm cache hits");
        assert!(bitwise_eq(&oracle, &back));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_hits_or_writes() {
        let cache = OracleCache::disabled();
        cache.store(1, &sample_oracle());
        assert!(cache.lookup(1).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }
}
