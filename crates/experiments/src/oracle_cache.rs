//! Content-addressed caching of trained safety-hijacker oracles and the
//! sweep datasets they are trained on.
//!
//! Training one oracle means running a full δ_inject × k × seed sweep
//! (~715 simulations) and 300 Adam epochs — and `table2`, `fig6`–`fig8` and
//! `ablations` each retrain the *same* 〈scenario, vector〉 oracles from
//! scratch. This module makes that work content-addressed over a shared
//! [`ArtifactStore`]: the cache key is a digest of everything that
//! determines the result bit-for-bit (scenario, vector, the full
//! [`SweepConfig`], and a code-version constant bumped whenever
//! collection/training semantics change), so a warm cache returns the exact
//! oracle a fresh training run would produce. Two namespaces live in the
//! store:
//!
//! - `oracle` — trained-oracle snapshots (file-compatible with the cache
//!   directories this module wrote before the artifact store existed);
//! - `dataset` — collected ADS-response sweeps, so a cold oracle still
//!   skips its ~715 simulations when another consumer already collected
//!   the identical sweep.
//!
//! An [`OracleCache`] is a cheap *view* over the store with its own
//! hit/miss counters: the suite orchestrator gives every job a private
//! view over one shared store, which is how the per-job scorecards in the
//! run summary stay exact. Decoders treat every file as hostile: lengths
//! are bounds-checked against the remaining bytes *before* any allocation,
//! and any mismatch — magic, version, key echo, shape, parameter count —
//! is a miss, never a panic.

use crate::train_sh::{collect_dataset, train_oracle_on, SweepConfig, TrainedOracle};
use av_neural::mlp::Mlp;
use av_neural::train::{Dataset, Normalizer};
use av_simkit::scenario::ScenarioId;
use av_suite::dedup::Claim;
use av_suite::fnv::{fnv1a, Fnv1a};
use av_suite::ArtifactStore;
use av_telemetry::{Telemetry, TraceEvent};
use robotack::safety_hijacker::{AttackFeatures, NnOracle};
use robotack::vector::AttackVector;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version of the dataset-collection + training code path. Bump this when
/// [`crate::train_sh`] changes semantics (sweep seeding, labeling, split,
/// architecture, optimizer), so stale snapshots miss instead of resurrecting
/// an oracle the current code would no longer produce.
pub const DATASET_CODE_VERSION: u32 = 1;

/// On-disk snapshot format version (shared by both codecs).
const FORMAT_VERSION: u32 = 1;

/// Oracle snapshot file magic: "RoboTack Oracle Cache".
const MAGIC: [u8; 4] = *b"RTOC";

/// Dataset snapshot file magic: "RoboTack DataSet".
const DATASET_MAGIC: [u8; 4] = *b"RTDS";

/// Artifact-store namespace of trained-oracle snapshots.
pub const NS_ORACLE: &str = "oracle";

/// Artifact-store namespace of collected sweep datasets.
pub const NS_DATASET: &str = "dataset";

/// The content address of one trained oracle (and of the sweep dataset it
/// is trained on): a digest of every input that determines the result
/// bit-for-bit.
///
/// A GEMM mode that [reorders FP
/// accumulation](av_neural::gemm::GemmMode::reorders_fp) (currently only
/// [`av_neural::gemm::GemmMode::Tiled`]) produces last-ulp-different trained
/// parameters, so it is folded into the key: tiled-mode artifacts live
/// under their own addresses and can never be confused with the default
/// blocked/naive family, whose keys are unchanged (blocked and naive are
/// bit-identical by construction and deliberately share addresses — that
/// equivalence is what CI's kernel smoke job diffs).
pub fn cache_key(scenario: ScenarioId, vector: AttackVector, sweep: &SweepConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(u64::from(DATASET_CODE_VERSION));
    if av_neural::gemm::mode().reorders_fp() {
        h.write(b"gemm:tiled");
    }
    // Generated scenarios fold their content hash after the shared "GEN"
    // name, so every spec gets its own address; the fixed DS-1..5 keys
    // write exactly the bytes they always did (pinned by regression test).
    h.write(scenario.name().as_bytes());
    if let Some(gen_hash) = scenario.gen_hash() {
        h.write_u64(gen_hash);
    }
    h.write(vector.name().as_bytes());
    h.write_u64(sweep.delta_injects.len() as u64);
    for &d in &sweep.delta_injects {
        h.write_f64(d);
    }
    h.write_u64(sweep.ks.len() as u64);
    for &k in &sweep.ks {
        h.write_u64(u64::from(k));
    }
    h.write_u64(sweep.seeds_per_cell);
    h.write_u64(sweep.base_seed);
    h.finish()
}

/// Content digest of a trained oracle (network shape + parameters +
/// normalizer + metrics, by bit pattern) — what the run manifest records.
pub fn oracle_digest(oracle: &TrainedOracle) -> u64 {
    fnv1a(&encode(0, oracle))
}

/// Content digest of a collected dataset, by bit pattern.
pub fn dataset_digest(data: &Dataset) -> u64 {
    fnv1a(&encode_dataset(0, data))
}

/// A per-consumer view over a shared, content-addressed [`ArtifactStore`]
/// of [`TrainedOracle`] snapshots and sweep [`Dataset`]s.
///
/// All I/O is best-effort: an unreadable or corrupt snapshot is a cache
/// miss, and a failed store is silently skipped (the freshly computed
/// value is still returned). Hit/miss counters are per-view; the
/// underlying store can be shared across many views (one per suite job).
#[derive(Debug)]
pub struct OracleCache {
    artifacts: Arc<ArtifactStore>,
    telemetry: Telemetry,
    hits: AtomicU64,
    misses: AtomicU64,
    dataset_hits: AtomicU64,
    dataset_misses: AtomicU64,
}

impl Default for OracleCache {
    fn default() -> Self {
        OracleCache::disabled()
    }
}

impl OracleCache {
    /// A cache that never hits and never writes (`--no-cache`).
    pub fn disabled() -> OracleCache {
        OracleCache::over(Arc::new(ArtifactStore::disabled()))
    }

    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> OracleCache {
        OracleCache::over(Arc::new(ArtifactStore::at(dir)))
    }

    /// A view over an existing (typically shared) artifact store, with
    /// fresh hit/miss counters.
    pub fn over(artifacts: Arc<ArtifactStore>) -> OracleCache {
        OracleCache {
            artifacts,
            telemetry: Telemetry::disabled(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dataset_hits: AtomicU64::new(0),
            dataset_misses: AtomicU64::new(0),
        }
    }

    /// The default cache root, next to the build artifacts.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target").join("oracle-cache")
    }

    /// Attaches a telemetry handle; hits and misses are emitted as
    /// [`TraceEvent::OracleCacheHit`] / [`TraceEvent::OracleCacheMiss`].
    /// If this view still owns its store exclusively, the store emits
    /// [`TraceEvent::ArtifactHit`] / [`TraceEvent::ArtifactMiss`] too.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> OracleCache {
        if let Some(store) = Arc::get_mut(&mut self.artifacts) {
            store.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
        self
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.artifacts.is_enabled()
    }

    /// The shared artifact store behind this view.
    pub fn artifact_store(&self) -> &Arc<ArtifactStore> {
        &self.artifacts
    }

    /// Oracle-snapshot hits so far (this view).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Oracle-snapshot misses so far (disabled caches count every lookup).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Dataset hits so far (this view).
    pub fn dataset_hits(&self) -> u64 {
        self.dataset_hits.load(Ordering::Relaxed)
    }

    /// Dataset misses so far (this view).
    pub fn dataset_misses(&self) -> u64 {
        self.dataset_misses.load(Ordering::Relaxed)
    }

    /// All artifact lookups this view made, as ⟨hits, misses⟩ across both
    /// namespaces — what the suite's per-job scorecard reports.
    pub fn artifact_totals(&self) -> (u64, u64) {
        (
            self.hits() + self.dataset_hits(),
            self.misses() + self.dataset_misses(),
        )
    }

    /// Reads and decodes ⟨`namespace`, `key`⟩ without touching this view's
    /// counters. Real I/O failures are surfaced on stderr once and then
    /// degrade to a miss — the computation still runs, just uncached.
    fn fetch<T>(
        &self,
        namespace: &'static str,
        key: u64,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Option<T> {
        match self.artifacts.get(namespace, key) {
            Ok(bytes) => bytes.as_deref().and_then(decode),
            Err(e) => {
                eprintln!("[oracle-cache] degraded to recompute: {e}");
                None
            }
        }
    }

    /// Looks up an oracle snapshot by key. Any I/O or decode failure is a
    /// miss.
    pub fn lookup(&self, key: u64) -> Option<TrainedOracle> {
        let found = self.fetch(NS_ORACLE, key, |bytes| decode(key, bytes));
        match found {
            Some(oracle) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.telemetry
                    .emit(0.0, || TraceEvent::OracleCacheHit { key });
                Some(oracle)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.telemetry
                    .emit(0.0, || TraceEvent::OracleCacheMiss { key });
                None
            }
        }
    }

    /// Persists an oracle snapshot under `key` (atomic; best-effort).
    pub fn store(&self, key: u64, oracle: &TrainedOracle) {
        self.artifacts.put(NS_ORACLE, key, &encode(key, oracle));
    }

    /// Looks up a collected dataset by key. Any I/O or decode failure is a
    /// miss.
    pub fn lookup_dataset(&self, key: u64) -> Option<Dataset> {
        let found = self.fetch(NS_DATASET, key, |bytes| decode_dataset(key, bytes));
        match found {
            Some(data) => {
                self.dataset_hits.fetch_add(1, Ordering::Relaxed);
                Some(data)
            }
            None => {
                self.dataset_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a collected dataset under `key` (atomic; best-effort).
    pub fn store_dataset(&self, key: u64, data: &Dataset) {
        self.artifacts
            .put(NS_DATASET, key, &encode_dataset(key, data));
    }

    /// The cached equivalent of [`collect_dataset`]: returns the stored
    /// sweep when present, otherwise collects, stores, and returns it —
    /// each 〈scenario, vector〉 sweep runs its ~715 simulations once per
    /// store, no matter how many *concurrent* consumers ask: a miss claims
    /// the key in the store's in-flight registry, so parallel requests for
    /// the same sweep coalesce onto one collection.
    pub fn dataset_for(
        &self,
        scenario: ScenarioId,
        vector: AttackVector,
        sweep: &SweepConfig,
    ) -> Dataset {
        let key = cache_key(scenario, vector, sweep);
        loop {
            if let Some(data) = self.lookup_dataset(key) {
                return data;
            }
            match self.artifacts.claim(NS_DATASET, key) {
                Claim::Leader(token) => {
                    // Double-check: a finishing leader may have stored the
                    // sweep between our miss and our claim. Raw fetch — the
                    // miss above already counted this consultation.
                    if let Some(data) = self.fetch(NS_DATASET, key, |b| decode_dataset(key, b)) {
                        token.disavow();
                        return data;
                    }
                    let data = collect_dataset(scenario, vector, sweep);
                    self.store_dataset(key, &data);
                    drop(token);
                    return data;
                }
                // A leader just finished this key: loop and re-read (counts
                // as this view's hit). If the leader failed to persist, the
                // next iteration claims fresh leadership and computes.
                Claim::Coalesced => continue,
                Claim::Uncoordinated => {
                    let data = collect_dataset(scenario, vector, sweep);
                    self.store_dataset(key, &data);
                    return data;
                }
            }
        }
    }

    /// The cached equivalent of [`crate::train_sh::train_oracle`]: returns
    /// the snapshot when present, otherwise trains (on the cached dataset
    /// when one exists), stores, and returns the fresh oracle. Concurrent
    /// trainings of the same key coalesce exactly like [`Self::dataset_for`]
    /// — the expensive 300-epoch job runs once per store.
    pub fn oracle_for(
        &self,
        scenario: ScenarioId,
        vector: AttackVector,
        sweep: &SweepConfig,
    ) -> Option<TrainedOracle> {
        let key = cache_key(scenario, vector, sweep);
        loop {
            if let Some(oracle) = self.lookup(key) {
                return Some(oracle);
            }
            match self.artifacts.claim(NS_ORACLE, key) {
                Claim::Leader(token) => {
                    if let Some(oracle) = self.fetch(NS_ORACLE, key, |b| decode(key, b)) {
                        token.disavow();
                        return Some(oracle);
                    }
                    let data = self.dataset_for(scenario, vector, sweep);
                    // `?` drops the token during unwind of this frame, so a
                    // scarce-data bailout never strands coalesced waiters.
                    let trained = train_oracle_on(&data)?;
                    self.store(key, &trained);
                    drop(token);
                    return Some(trained);
                }
                Claim::Coalesced => continue,
                Claim::Uncoordinated => {
                    let data = self.dataset_for(scenario, vector, sweep);
                    let trained = train_oracle_on(&data)?;
                    self.store(key, &trained);
                    return Some(trained);
                }
            }
        }
    }
}

/// Serializes a [`TrainedOracle`] (all integers/floats little-endian).
fn encode(key: u64, oracle: &TrainedOracle) -> Vec<u8> {
    let net = oracle.oracle.network();
    let norm = oracle.oracle.normalizer();
    let sizes = net.layer_sizes();
    let params = net.flatten_params();

    let mut out = Vec::with_capacity(64 + 8 * (2 * norm.mean.len() + sizes.len() + params.len()));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&oracle.val_mse.to_bits().to_le_bytes());
    out.extend_from_slice(&(oracle.examples as u64).to_le_bytes());
    out.extend_from_slice(&(norm.mean.len() as u64).to_le_bytes());
    for &m in &norm.mean {
        out.extend_from_slice(&m.to_bits().to_le_bytes());
    }
    for &s in &norm.std {
        out.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&net.dropout.to_bits().to_le_bytes());
    out.extend_from_slice(&(sizes.len() as u64).to_le_bytes());
    for &s in &sizes {
        out.extend_from_slice(&(s as u64).to_le_bytes());
    }
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for &p in &params {
        out.extend_from_slice(&p.to_bits().to_le_bytes());
    }
    out
}

/// Checked little-endian reader over untrusted bytes.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn bytes<const N: usize>(&mut self) -> Option<[u8; N]> {
        let (head, rest) = self.0.split_at_checked(N)?;
        self.0 = rest;
        head.try_into().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes().map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes().map(u64::from_le_bytes)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads `n` floats, refusing (no allocation) if `n` overshoots the
    /// remaining bytes — the guard that makes hostile length fields cheap.
    fn f64s(&mut self, n: usize) -> Option<Vec<f64>> {
        if n > self.remaining() / 8 {
            return None;
        }
        (0..n).map(|_| self.f64()).collect()
    }
}

/// Deserializes an oracle snapshot; `None` on any structural problem.
fn decode(key: u64, bytes: &[u8]) -> Option<TrainedOracle> {
    let mut r = Reader(bytes);
    if r.bytes()? != MAGIC || r.u32()? != FORMAT_VERSION || r.u64()? != key {
        return None;
    }
    let val_mse = r.f64()?;
    let examples = usize::try_from(r.u64()?).ok()?;

    let dim = usize::try_from(r.u64()?).ok()?;
    let mean = r.f64s(dim)?;
    let std = r.f64s(dim)?;

    let dropout = r.f64()?;
    let n_sizes = usize::try_from(r.u64()?).ok()?;
    if n_sizes > r.remaining() / 8 || n_sizes > 64 {
        return None;
    }
    let sizes: Vec<usize> = (0..n_sizes)
        .map(|_| r.u64().and_then(|s| usize::try_from(s).ok()))
        .collect::<Option<_>>()?;
    let n_params = usize::try_from(r.u64()?).ok()?;
    let params = r.f64s(n_params)?;
    if r.remaining() != 0 {
        return None;
    }

    let net = Mlp::from_flat(&sizes, dropout, &params)?;
    // NnOracle::new asserts the input shape and predict_delta indexes the
    // first output — pre-check both so hostile bytes can never panic.
    if net.input_dim() != AttackFeatures::INPUT_DIM
        || net.output_dim() != 1
        || mean.len() != net.input_dim()
    {
        return None;
    }
    Some(TrainedOracle {
        oracle: Arc::new(NnOracle::new(net, Normalizer { mean, std })),
        val_mse,
        examples,
    })
}

/// Serializes a collected [`Dataset`] (row lengths explicit, so decode
/// never trusts a dimension it didn't read).
fn encode_dataset(key: u64, data: &Dataset) -> Vec<u8> {
    let floats: usize = data.inputs.iter().chain(&data.targets).map(Vec::len).sum();
    let mut out = Vec::with_capacity(32 + 16 * data.inputs.len() + 8 * floats);
    out.extend_from_slice(&DATASET_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(data.inputs.len() as u64).to_le_bytes());
    for (input, target) in data.inputs.iter().zip(&data.targets) {
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        for &x in input {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(target.len() as u64).to_le_bytes());
        for &y in target {
            out.extend_from_slice(&y.to_bits().to_le_bytes());
        }
    }
    out
}

/// Deserializes a dataset snapshot; `None` on any structural problem.
fn decode_dataset(key: u64, bytes: &[u8]) -> Option<Dataset> {
    let mut r = Reader(bytes);
    if r.bytes()? != DATASET_MAGIC || r.u32()? != FORMAT_VERSION || r.u64()? != key {
        return None;
    }
    let n_rows = usize::try_from(r.u64()?).ok()?;
    // Each row needs at least its two length fields.
    if n_rows > r.remaining() / 16 {
        return None;
    }
    let mut inputs = Vec::with_capacity(n_rows);
    let mut targets = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let input_len = usize::try_from(r.u64()?).ok()?;
        inputs.push(r.f64s(input_len)?);
        let target_len = usize::try_from(r.u64()?).ok()?;
        targets.push(r.f64s(target_len)?);
    }
    if r.remaining() != 0 {
        return None;
    }
    Some(Dataset { inputs, targets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_neural::train::Dataset;

    fn sample_oracle() -> TrainedOracle {
        let data = Dataset::from_rows((0..64).map(|i| {
            let delta = 5.0 + f64::from(i % 16) * 2.0;
            let k = f64::from(i % 8) * 10.0;
            (vec![delta, -3.0, 0.5, -0.1, k], vec![delta - 0.1 * k])
        }));
        train_oracle_on(&data).expect("synthetic dataset trains")
    }

    fn sample_dataset() -> Dataset {
        Dataset::from_rows((0..24).map(|i| {
            let delta = 4.0 + f64::from(i) * 1.5;
            (vec![delta, -2.0, 0.25, 0.0, 30.0], vec![delta - 3.0])
        }))
    }

    fn bitwise_eq(a: &TrainedOracle, b: &TrainedOracle) -> bool {
        let (na, nb) = (a.oracle.network(), b.oracle.network());
        let (ma, mb) = (a.oracle.normalizer(), b.oracle.normalizer());
        na.layer_sizes() == nb.layer_sizes()
            && na.dropout.to_bits() == nb.dropout.to_bits()
            && na
                .flatten_params()
                .iter()
                .zip(nb.flatten_params().iter())
                .all(|(x, y)| x.to_bits() == y.to_bits())
            && ma.mean == mb.mean
            && ma.std == mb.std
            && a.val_mse.to_bits() == b.val_mse.to_bits()
            && a.examples == b.examples
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let oracle = sample_oracle();
        let bytes = encode(42, &oracle);
        let back = decode(42, &bytes).expect("round trip");
        assert!(bitwise_eq(&oracle, &back));
        // Same inputs → same prediction bits.
        use robotack::safety_hijacker::SafetyOracle;
        let f = AttackFeatures {
            delta: 25.0,
            v_rel_lon: -3.0,
            v_rel_lat: 0.5,
            a_rel_lon: -0.1,
        };
        assert_eq!(
            oracle.oracle.predict_delta(&f, 20).to_bits(),
            back.oracle.predict_delta(&f, 20).to_bits()
        );
    }

    #[test]
    fn dataset_codec_round_trips_bit_identically() {
        let data = sample_dataset();
        let bytes = encode_dataset(9, &data);
        let back = decode_dataset(9, &bytes).expect("round trip");
        assert_eq!(data.inputs, back.inputs);
        assert_eq!(data.targets, back.targets);
        assert_eq!(dataset_digest(&data), dataset_digest(&back));
    }

    #[test]
    fn dataset_snapshots_reject_corruption() {
        let bytes = encode_dataset(5, &sample_dataset());
        assert!(decode_dataset(6, &bytes).is_none(), "key echo mismatch");
        for cut in [0, 3, 4, 15, 16, 24, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_dataset(5, &bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_dataset(5, &padded).is_none(), "trailing garbage");
        // Hostile row count can't force an allocation.
        let mut huge = bytes.clone();
        huge[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_dataset(5, &huge).is_none(), "hostile row count");
    }

    #[test]
    fn wrong_key_magic_or_version_miss() {
        let bytes = encode(7, &sample_oracle());
        assert!(decode(8, &bytes).is_none(), "key echo mismatch");
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode(7, &bad_magic).is_none(), "magic mismatch");
        let mut bad_version = bytes.clone();
        bad_version[4] ^= 0xFF;
        assert!(decode(7, &bad_version).is_none(), "format version mismatch");
    }

    #[test]
    fn truncated_and_padded_snapshots_miss() {
        let bytes = encode(3, &sample_oracle());
        for cut in [0, 1, 4, 16, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(3, &bytes[..cut]).is_none(), "truncated at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode(3, &padded).is_none(), "trailing garbage");
    }

    #[test]
    fn key_depends_on_every_sweep_field() {
        let base = SweepConfig::tiny();
        let k0 = cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &base);

        assert_ne!(k0, cache_key(ScenarioId::Ds2, AttackVector::MoveOut, &base));
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveIn, &base));

        let mut s = base.clone();
        s.delta_injects[0] += 1.0;
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &s));
        let mut s = base.clone();
        s.ks.push(99);
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &s));
        let mut s = base.clone();
        s.seeds_per_cell += 1;
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &s));
        let mut s = base.clone();
        s.base_seed ^= 1;
        assert_ne!(k0, cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &s));

        // And is stable for identical inputs.
        assert_eq!(
            k0,
            cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &base.clone())
        );
    }

    /// Satellite regression pin: generalizing the key schema to generated
    /// scenarios must not move a single fixed-scenario cache address. These
    /// literals are the exact DS-1..5 keys the pre-generalization code
    /// produced for a frozen sweep — if any of them changes, every warm
    /// store in existence silently goes cold.
    #[test]
    fn fixed_scenario_cache_keys_are_pinned() {
        let sweep = SweepConfig {
            delta_injects: vec![8.0, 16.0, 24.0, 32.0],
            ks: vec![10, 30, 50, 70],
            seeds_per_cell: 1,
            base_seed: 9000,
        };
        let pinned: [(ScenarioId, AttackVector, u64); 6] = [
            (ScenarioId::Ds1, AttackVector::Disappear, PIN_DS1_DISAPPEAR),
            (ScenarioId::Ds2, AttackVector::Disappear, PIN_DS2_DISAPPEAR),
            (ScenarioId::Ds1, AttackVector::MoveOut, PIN_DS1_MOVE_OUT),
            (ScenarioId::Ds2, AttackVector::MoveOut, PIN_DS2_MOVE_OUT),
            (ScenarioId::Ds3, AttackVector::MoveIn, PIN_DS3_MOVE_IN),
            (ScenarioId::Ds4, AttackVector::MoveIn, PIN_DS4_MOVE_IN),
        ];
        for (scenario, vector, expected) in pinned {
            assert_eq!(
                cache_key(scenario, vector, &sweep),
                expected,
                "{scenario:?}/{vector:?}: fixed-scenario cache key drifted"
            );
        }
    }

    const PIN_DS1_DISAPPEAR: u64 = 0xa10d_35e6_aa2f_52c0;
    const PIN_DS2_DISAPPEAR: u64 = 0xb8b3_cf40_52a3_8067;
    const PIN_DS1_MOVE_OUT: u64 = 0x28ca_ea16_0699_ae65;
    const PIN_DS2_MOVE_OUT: u64 = 0xfca9_ed94_af05_84ac;
    const PIN_DS3_MOVE_IN: u64 = 0x48f6_9faf_22af_b956;
    const PIN_DS4_MOVE_IN: u64 = 0x0a00_5190_4b61_6001;

    /// Generated scenarios key on their content hash: distinct specs get
    /// distinct addresses (no collision on the shared "GEN" name), and the
    /// same spec keys stably.
    #[test]
    fn generated_scenario_keys_depend_on_the_content_hash() {
        let sweep = SweepConfig::tiny();
        let a = cache_key(ScenarioId::Gen(1), AttackVector::MoveOut, &sweep);
        let b = cache_key(ScenarioId::Gen(2), AttackVector::MoveOut, &sweep);
        assert_ne!(a, b, "distinct spec hashes must not collide");
        assert_eq!(
            a,
            cache_key(ScenarioId::Gen(1), AttackVector::MoveOut, &sweep),
            "generated keys are stable"
        );
        for scenario in ScenarioId::ALL {
            assert_ne!(
                a,
                cache_key(scenario, AttackVector::MoveOut, &sweep),
                "generated keys never collide with fixed-scenario keys"
            );
        }
    }

    #[test]
    fn cold_miss_then_warm_hit_round_trip() {
        let dir = std::env::temp_dir().join(format!("oracle-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = OracleCache::at(&dir);
        let key = 0xDEAD_BEEF_u64;

        assert!(cache.lookup(key).is_none(), "cold cache misses");
        let oracle = sample_oracle();
        cache.store(key, &oracle);
        let back = cache.lookup(key).expect("warm cache hits");
        assert!(bitwise_eq(&oracle, &back));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dataset_round_trip_and_shared_store_views() {
        let dir = std::env::temp_dir().join(format!("dataset-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::at(&dir));

        let writer = OracleCache::over(store.clone());
        assert!(writer.lookup_dataset(11).is_none(), "cold dataset misses");
        let data = sample_dataset();
        writer.store_dataset(11, &data);
        assert_eq!(
            (writer.dataset_hits(), writer.dataset_misses()),
            (0, 1),
            "writer view counted its own miss only"
        );

        // A second view over the same store hits, with its own counters.
        let reader = OracleCache::over(store);
        let back = reader.lookup_dataset(11).expect("warm dataset hits");
        assert_eq!(back.inputs, data.inputs);
        assert_eq!(back.targets, data.targets);
        assert_eq!((reader.dataset_hits(), reader.dataset_misses()), (1, 0));
        assert_eq!(
            (reader.hits(), reader.misses()),
            (0, 0),
            "oracle ns untouched"
        );
        assert_eq!(reader.artifact_totals(), (1, 0));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_dataset_requests_coalesce_onto_one_collection() {
        let dir = std::env::temp_dir().join(format!("dataset-dedup-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::at(&dir));
        let sweep = SweepConfig::tiny();

        let digests: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let store = store.clone();
                    let sweep = sweep.clone();
                    s.spawn(move || {
                        let cache = OracleCache::over(store);
                        let data =
                            cache.dataset_for(ScenarioId::Ds1, AttackVector::MoveOut, &sweep);
                        dataset_digest(&data)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("view"))
                .collect()
        });

        assert!(digests.windows(2).all(|w| w[0] == w[1]), "identical sweeps");
        // However the four views interleave — straight hit, coalesced wait,
        // or disavowed leadership — exactly one collection ran.
        assert_eq!(store.dedup_counters().0, 1, "one collection led");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_hits_or_writes() {
        let cache = OracleCache::disabled();
        cache.store(1, &sample_oracle());
        assert!(cache.lookup(1).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.store_dataset(1, &sample_dataset());
        assert!(cache.lookup_dataset(1).is_none());
        assert_eq!((cache.dataset_hits(), cache.dataset_misses()), (0, 1));
    }
}
