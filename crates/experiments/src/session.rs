//! The [`SimSession`] builder — the redesigned single-run API.
//!
//! A session owns everything `run_once` used to take as loose parameters:
//! the run configuration, the attacker, and (new) a [`Telemetry`] handle
//! observing every pipeline stage. Construction is builder-style:
//!
//! ```
//! use av_experiments::prelude::*;
//! let outcome = SimSession::builder(ScenarioId::Ds1)
//!     .seed(7)
//!     .attacker(AttackerSpec::None)
//!     .build()
//!     .run();
//! assert!(!outcome.collided);
//! ```
//!
//! The loop reproduces the paper's testbed timing (§V-B): the base physics
//! tick is 30 Hz; the camera fires at 15 Hz, LiDAR at 10 Hz, GPS/IMU at
//! 12.5 Hz and the planner at 10 Hz through the multi-rate scheduler. Every
//! camera frame passes through the attacker's man-in-the-middle hook before
//! the ADS sees it. Ground-truth safety (δ, target gap) is sampled at every
//! planning cycle, and the run halts on contact — the LGSVL behavior the
//! paper works around with its 4 m accident threshold.
//!
//! With the default disabled telemetry handle the session is bit-identical
//! to the historical `run_once` — the golden-trace suite pins that.

use crate::runner::{AttackerSpec, RunConfig, RunOutcome, HORIZON_M};
use av_defense::ids::{Ids, IdsConfig};
use av_faults::{FaultInjector, FaultPlan, FaultStats};
use av_perception::calibration::DetectorCalibration;
use av_planning::ads::{Ads, AdsConfig};
use av_planning::safety::{ground_truth_delta, SafetyConfig};
use av_sensing::camera::Camera;
use av_sensing::frame::{capture_into, CameraFrame};
use av_sensing::gps::GpsImu;
use av_sensing::lidar::Lidar;
use av_sensing::tap::{CameraTapVerdict, SensorTap, TracingTap};
use av_simkit::recorder::{Event, RunRecord, Sample};
use av_simkit::rng::run_rng;
use av_simkit::scenario::{Scenario, ScenarioId};
use av_simkit::units::{CAMERA_HZ, GPS_HZ, LIDAR_HZ, PLANNER_HZ, SIM_DT};
use av_telemetry::{SensorChannel, Stage, Telemetry, TraceEvent, TraceSink};
use robotack::vector::AttackVector;

/// Builder for a [`SimSession`].
///
/// Obtained from [`SimSession::builder`]; every knob of the historical
/// `RunConfig` is reachable either through a dedicated setter or wholesale
/// through [`SimSessionBuilder::config`].
#[derive(Debug, Clone)]
pub struct SimSessionBuilder {
    config: RunConfig,
    attacker: AttackerSpec,
    telemetry: Telemetry,
}

impl SimSessionBuilder {
    /// Sets the run seed (world jitter, every noise source, attacker
    /// sampling). Defaults to 0.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Installs the attacker riding along. Defaults to [`AttackerSpec::None`]
    /// (a golden run).
    #[must_use]
    pub fn attacker(mut self, attacker: AttackerSpec) -> Self {
        self.attacker = attacker;
        self
    }

    /// Injects sensor faults between capture and delivery. The empty plan is
    /// bit-transparent.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Overrides the detector noise calibration (both the ADS and the
    /// malware replica use it).
    #[must_use]
    pub fn calibration(mut self, calibration: DetectorCalibration) -> Self {
        self.config.calibration = calibration;
        self
    }

    /// Replaces the whole run configuration (scenario, seed, calibration,
    /// fusion, σ-fraction, SH thresholds, faults) — the escape hatch for
    /// ablation sweeps that mutate several fields at once.
    #[must_use]
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a telemetry handle; the session threads it through the
    /// scheduler, sensor tap, perception, planner, and attacker. Defaults
    /// to [`Telemetry::disabled`], which is guaranteed not to perturb the
    /// run (golden digests are bit-identical).
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Convenience: full telemetry into `sink` (events + a fresh metrics
    /// registry). Equivalent to `.telemetry(Telemetry::with_sink(sink))`.
    #[must_use]
    pub fn trace_sink(self, sink: impl TraceSink + Send + 'static) -> Self {
        self.telemetry(Telemetry::with_sink(sink))
    }

    /// Finalizes the session.
    pub fn build(self) -> SimSession {
        SimSession {
            config: self.config,
            attacker: self.attacker,
            telemetry: self.telemetry,
        }
    }
}

/// One configured end-to-end simulation run: world + sensors + attacker +
/// ADS (+ observability).
#[derive(Debug, Clone)]
pub struct SimSession {
    config: RunConfig,
    attacker: AttackerSpec,
    telemetry: Telemetry,
}

/// Long-lived per-worker state reused across [`SimSession::run_with`] calls.
///
/// Campaign workers execute hundreds of runs back to back; rebuilding the
/// ADS (perception buffers, Hungarian scratch, planner) and the camera-frame
/// buffers for every run throws the warmed allocations away. A worker keeps
/// one `Ads` and one `CameraFrame` alive: between runs the ADS is `reset()`
/// (bit-identical to fresh construction — the golden-trace suite pins this)
/// and only rebuilt when the run configuration actually changes.
#[derive(Debug, Default)]
pub struct SessionWorker {
    /// The ADS last used, keyed by the exact configuration it was built with.
    ads: Option<(AdsConfig, Ads)>,
    /// Reused camera-frame buffer (truth boxes + optional raster).
    frame: CameraFrame,
    /// Reused scheduler fire buffer (~900 `advance_to` calls per run).
    fired: Vec<av_simkit::scheduler::Task>,
}

impl SessionWorker {
    /// Creates an empty worker; buffers warm up over the first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns an ADS for `config`: resets the held one when the
    /// configuration matches, rebuilds otherwise.
    fn ads_for(slot: &mut Option<(AdsConfig, Ads)>, config: AdsConfig) -> &mut Ads {
        match slot {
            Some((held, ads)) if *held == config => ads.reset(),
            _ => *slot = Some((config, Ads::new(config))),
        }
        &mut slot.as_mut().expect("just populated").1
    }
}

impl SimSession {
    /// Starts building a session for `scenario`.
    pub fn builder(scenario: ScenarioId) -> SimSessionBuilder {
        SimSessionBuilder {
            config: RunConfig::new(scenario, 0),
            attacker: AttackerSpec::None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The run configuration this session will execute.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The attached telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Executes the run. A session is reusable: running twice with the same
    /// configuration produces bit-identical records (and, modulo wall-clock
    /// metrics, identical event streams).
    pub fn run(&self) -> RunOutcome {
        self.run_with(&mut SessionWorker::new())
    }

    /// Executes the run reusing `worker`'s long-lived ADS and frame buffers.
    ///
    /// Bit-identical to [`SimSession::run`] for any worker state — a reused
    /// ADS is `reset()` (or rebuilt on configuration change) before the run.
    pub fn run_with(&self, worker: &mut SessionWorker) -> RunOutcome {
        let config = &self.config;
        let tele = &self.telemetry;
        let _run_timer = tele.time(Stage::Run);

        let scenario = Scenario::build(config.scenario, config.seed);
        let mut rng = run_rng(config.seed, 0xA77ACC);
        let mut attacker = self.attacker.build(&scenario, config, &mut rng);
        attacker.set_telemetry(tele.clone());
        // The injector draws from its own seeded stream, so the main run RNG
        // sequence is identical whether or not faults fire.
        let mut tap = TracingTap::new(
            FaultInjector::new(config.faults.clone(), config.seed),
            tele.clone(),
        );
        let mut fault_stats_seen = FaultStats::default();

        let mut ads_config = AdsConfig::default();
        ads_config.perception.calibration = config.calibration;
        ads_config.perception.fusion = config.fusion;
        ads_config.planner.cruise_speed = scenario.cruise_speed;
        // Disjoint borrows: `ads` (reset or rebuilt) and the reused frame
        // buffer both live in the worker.
        let SessionWorker {
            ads: ads_slot,
            frame,
            fired,
        } = worker;
        let ads = SessionWorker::ads_for(ads_slot, ads_config);
        ads.set_telemetry(tele.clone());

        let camera = Camera::default();
        let lidar = Lidar::default();
        let gps = GpsImu::default();

        let mut ids = Ids::new(IdsConfig {
            calibration: config.calibration,
            ..IdsConfig::default()
        });

        let mut scheduler = av_simkit::scheduler::Scheduler::new();
        scheduler.set_telemetry(tele.clone());
        let task_gps = scheduler.add_task_hz("gps", GPS_HZ);
        let task_camera = scheduler.add_task_hz("camera", CAMERA_HZ);
        let task_lidar = scheduler.add_task_hz("lidar", LIDAR_HZ);
        let task_planner = scheduler.add_task_hz("planner", PLANNER_HZ);

        let mut world = scenario.world.clone();
        let mut record = RunRecord::new();
        let mut seq: u64 = 0;
        let mut collided = false;
        let mut attack_seen = false;
        let mut k_prime_ads: Option<u32> = None;
        let mut frames_since_launch: u32 = 0;
        let mut target_delta_at_attack_end = None;
        let mut min_perceived_delta: Option<f64> = None;
        let mut replica_divergence: Option<f64> = None;
        // Rolling window so one-tick phantom dips don't pollute the minimum.
        let mut perceived_window: [f64; 3] = [f64::INFINITY; 3];
        let mut perceived_idx = 0usize;

        tele.emit(0.0, || TraceEvent::RunStarted {
            scenario: config.scenario.name(),
            seed: config.seed,
        });

        let steps = (scenario.duration / SIM_DT).ceil() as u64;
        for _ in 0..steps {
            scheduler.advance_into(world.time_us(), fired);
            for &task in fired.iter() {
                if task == task_gps {
                    let mut fix = {
                        let _t = tele.time(Stage::GpsSample);
                        gps.fix(&world, &mut rng)
                    };
                    tap.on_gps(&mut fix);
                    emit_fault_diffs(tele, world.time(), &mut fault_stats_seen, tap.inner());
                    ads.on_gps(fix);
                } else if task == task_camera {
                    {
                        let _t = tele.time(Stage::CameraCapture);
                        capture_into(&camera, &world, seq, false, frame);
                    }
                    seq += 1;
                    // Faults act on the sensor side of the E/E network: a
                    // dropped frame never reaches the attacker's MITM hook,
                    // and a rewritten frame is what the malware replica sees
                    // too.
                    let verdict = tap.on_camera(frame);
                    emit_fault_diffs(tele, world.time(), &mut fault_stats_seen, tap.inner());
                    if verdict == CameraTapVerdict::Drop {
                        continue;
                    }
                    attacker.process_frame(frame, world.ego().speed, &mut rng);
                    ads.on_camera_frame(frame, &mut rng);
                    ids.on_camera(world.time(), ads.perception().last_detections());

                    // Attack bookkeeping at camera rate.
                    let stats = attacker.stats();
                    if let Some(t0) = stats.launched_at {
                        if !attack_seen {
                            attack_seen = true;
                            record.push_event(t0, Event::AttackStarted);
                        }
                        frames_since_launch += 1;
                        if k_prime_ads.is_none() {
                            if let (Some(vector), Some(target)) = (stats.vector, stats.target) {
                                if let Some(truth) = world.actor(target) {
                                    if k_prime_reached(vector, ads, truth.pose.position) {
                                        k_prime_ads = Some(frames_since_launch);
                                    }
                                }
                            }
                        }
                        // Label for the SH training set: δ w.r.t. the target
                        // at the frame the attack window closes.
                        if target_delta_at_attack_end.is_none() && stats.frames_perturbed >= stats.k
                        {
                            record.push_event(world.time(), Event::AttackEnded);
                            target_delta_at_attack_end = av_planning::safety::target_delta(
                                &config.safety,
                                &world,
                                scenario.target,
                            );
                        }
                    }
                } else if task == task_lidar {
                    let mut scan = {
                        let _t = tele.time(Stage::LidarScan);
                        lidar.scan(&world, &mut rng)
                    };
                    let delivered = tap.on_lidar(&mut scan);
                    emit_fault_diffs(tele, world.time(), &mut fault_stats_seen, tap.inner());
                    if delivered {
                        ads.on_lidar(&scan);
                        ids.on_lidar(world.time(), &scan, &ads.world_model());
                    }
                } else if task == task_planner {
                    let entered_eb = ads.plan_tick_at(world.time());
                    // Mirrored-replica divergence: both models estimate the
                    // scripted target ego-relative; track the worst
                    // disagreement.
                    if let Some(replica) = attacker.replica_world() {
                        let ego = ads.ego_position();
                        let ads_rel = ads
                            .world_model()
                            .iter()
                            .find(|o| o.provenance == Some(av_simkit::scenario::TARGET_ID))
                            .map(|o| o.position - ego);
                        let rep_rel = replica
                            .iter()
                            .find(|o| o.provenance == Some(av_simkit::scenario::TARGET_ID))
                            .map(|o| o.position);
                        if let (Some(a), Some(r)) = (ads_rel, rep_rel) {
                            let d = a.distance(r);
                            replica_divergence =
                                Some(replica_divergence.map_or(d, |m: f64| m.max(d)));
                        }
                    }
                    if entered_eb {
                        record.push_event(world.time(), Event::EmergencyBrake);
                    }
                    if attack_seen {
                        let d =
                            perceived_in_path_delta(ads, &config.safety).unwrap_or(f64::INFINITY);
                        perceived_window[perceived_idx % 3] = d;
                        perceived_idx += 1;
                        if perceived_idx >= 3 {
                            // A dip only counts if it persisted 3 planner
                            // ticks.
                            let sustained =
                                perceived_window.iter().copied().fold(f64::MIN, f64::max);
                            if sustained.is_finite() {
                                min_perceived_delta = Some(
                                    min_perceived_delta
                                        .map_or(sustained, |m: f64| m.min(sustained)),
                                );
                            }
                        }
                    }
                    let (delta, _) = ground_truth_delta(&config.safety, &world, HORIZON_M);
                    let target_gap = world
                        .separation_to_ego(scenario.target)
                        .unwrap_or(f64::INFINITY);
                    record.push_sample(Sample {
                        t: world.time(),
                        ego_speed: world.ego().speed,
                        ego_accel: ads.plan().accel,
                        delta,
                        target_gap,
                        attack_active: attacker.attacking(),
                        emergency_braking: ads.emergency_braking(),
                    });
                }
            }

            let accel = ads.control_tick(SIM_DT);
            {
                let _t = tele.time(Stage::WorldStep);
                world.step(SIM_DT, accel);
            }

            // Contact halt (the LGSVL behavior): bumper-to-bumper contact
            // with an in-path obstacle.
            if let Some(o) = world.in_path_obstacle(0.0) {
                if o.gap <= 0.05 && o.closing_speed > -0.1 {
                    record.push_event(world.time(), Event::Collision);
                    tele.emit(world.time(), || TraceEvent::Collision);
                    collided = true;
                    break;
                }
            }
        }

        // If the attack window never closed (run ended first), take the
        // label at the end of the run.
        let stats = *attacker.stats();
        if stats.launched_at.is_some() && target_delta_at_attack_end.is_none() {
            target_delta_at_attack_end =
                av_planning::safety::target_delta(&config.safety, &world, scenario.target);
        }

        let min_delta_post_attack = stats.launched_at.and_then(|t0| record.min_delta_since(t0));
        let attack_end_t = record
            .first_event(Event::AttackEnded)
            .unwrap_or(world.time());
        let min_delta_attack_window = stats.launched_at.map(|t0| {
            record
                .samples
                .iter()
                .filter(|s| s.t >= t0 && s.t <= attack_end_t + 3.0)
                .map(|s| s.delta)
                .fold(f64::INFINITY, f64::min)
        });
        let accident =
            collided || min_delta_post_attack.is_some_and(|d| config.safety.is_accident(d));
        let eb_after_attack = stats.launched_at.is_some_and(|t0| {
            record
                .events
                .iter()
                .any(|(t, e)| *e == Event::EmergencyBrake && *t >= t0 - 1e-9)
        });
        let eb_any = record.has_event(Event::EmergencyBrake);

        let samples = record.samples.len() as u64;
        tele.emit(world.time(), || TraceEvent::RunFinished {
            sim_seconds: world.time(),
            samples,
        });
        tele.flush();

        RunOutcome {
            scenario: config.scenario,
            seed: config.seed,
            sim_seconds: world.time(),
            record,
            attack: stats,
            collided,
            accident,
            eb_after_attack,
            eb_any,
            min_delta_post_attack,
            min_delta_attack_window,
            target_delta_at_attack_end,
            min_perceived_delta_post_attack: min_perceived_delta,
            k_prime_ads,
            ids_alarms: ids.alarms().to_vec(),
            faults: *tap.inner().stats(),
            stale_frames: ads.perception().stale_frames(),
            replica_divergence,
        }
    }
}

/// Emits one [`TraceEvent::FaultInjected`] per injector counter that
/// advanced since the previous call. The tracing tap cannot see injector
/// internals generically, so the session diffs the public statistics after
/// each tap invocation.
fn emit_fault_diffs(tele: &Telemetry, t: f64, seen: &mut FaultStats, injector: &FaultInjector) {
    if !tele.is_enabled() {
        *seen = *injector.stats();
        return;
    }
    let now = *injector.stats();
    let diffs: [(SensorChannel, &'static str, u32); 8] = [
        (
            SensorChannel::Camera,
            "camera_frames_dropped",
            now.camera_frames_dropped - seen.camera_frames_dropped,
        ),
        (
            SensorChannel::Camera,
            "camera_frames_frozen",
            now.camera_frames_frozen - seen.camera_frames_frozen,
        ),
        (
            SensorChannel::Camera,
            "camera_frames_delayed",
            now.camera_frames_delayed - seen.camera_frames_delayed,
        ),
        (
            SensorChannel::Camera,
            "camera_boxes_noised",
            now.camera_boxes_noised - seen.camera_boxes_noised,
        ),
        (
            SensorChannel::Camera,
            "camera_boxes_occluded",
            now.camera_boxes_occluded - seen.camera_boxes_occluded,
        ),
        (
            SensorChannel::Camera,
            "camera_blackout_frames",
            now.camera_blackout_frames - seen.camera_blackout_frames,
        ),
        (
            SensorChannel::Lidar,
            "lidar_scans_dropped",
            now.lidar_scans_dropped - seen.lidar_scans_dropped,
        ),
        (
            SensorChannel::Gps,
            "gps_fixes_biased",
            now.gps_fixes_biased - seen.gps_fixes_biased,
        ),
    ];
    for (channel, what, count) in diffs {
        if count > 0 {
            tele.emit(t, || TraceEvent::FaultInjected {
                channel,
                what,
                count,
            });
        }
    }
    *seen = now;
}

/// Tracks when the ADS world model reflects the hijacked trajectory (the
/// Fig. 7 `K′` measurement).
fn k_prime_reached(vector: AttackVector, ads: &Ads, target_truth: av_simkit::math::Vec2) -> bool {
    let world = ads.world_model();
    let perceived = world
        .iter()
        .find(|o| o.provenance == Some(av_simkit::scenario::TARGET_ID));
    match vector {
        AttackVector::Disappear => {
            // Gone when nothing is published near the true position.
            !world
                .iter()
                .any(|o| o.position.distance(target_truth) < 3.0)
        }
        AttackVector::MoveOut => perceived
            .map(|o| (o.position.y - target_truth.y).abs() >= 1.6)
            .unwrap_or(true),
        AttackVector::MoveIn => perceived
            .map(|o| o.position.y.abs() <= 1.25)
            .unwrap_or(false),
    }
}

/// The EV's perceived in-path safety potential: nearest world-model object
/// overlapping the ego corridor, minus the stopping distance.
fn perceived_in_path_delta(ads: &Ads, safety: &SafetyConfig) -> Option<f64> {
    let ego = ads.ego_position();
    let v = ads.ego_speed();
    let ego_front = ego.x + 2.3;
    let (cy0, cy1) = (ego.y - 1.25, ego.y + 1.25);
    ads.world_model()
        .iter()
        .filter_map(|o| {
            let (oy0, oy1) = o.lateral_extent();
            if av_simkit::math::interval_overlap(cy0, cy1, oy0, oy1) <= 0.0 {
                return None;
            }
            let (ox0, ox1) = o.longitudinal_extent();
            if ox1 < ego_front {
                return None;
            }
            Some((ox0 - ego_front).max(0.0))
        })
        .fold(None, |acc: Option<f64>, g| {
            Some(acc.map_or(g, |a| a.min(g)))
        })
        .map(|gap| safety.delta(gap, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_telemetry::{EventKind, RingBufferSink, SharedSink};

    #[test]
    fn golden_ds1_is_safe() {
        let out = SimSession::builder(ScenarioId::Ds1).seed(3).build().run();
        assert!(!out.collided, "golden DS-1 must not collide");
        assert!(!out.eb_any, "golden DS-1 must not emergency brake");
        assert!(out.attack.launched_at.is_none());
        assert!(out.record.samples.len() > 100);
    }

    #[test]
    fn golden_ds2_stops_for_pedestrian() {
        let out = SimSession::builder(ScenarioId::Ds2).seed(3).build().run();
        assert!(!out.collided, "golden DS-2 must not hit the pedestrian");
        // The EV must have actually slowed down substantially at some point.
        let min_speed = out
            .record
            .samples
            .iter()
            .map(|s| s.ego_speed)
            .fold(f64::INFINITY, f64::min);
        assert!(min_speed < 2.0, "EV braked for the pedestrian: {min_speed}");
    }

    #[test]
    fn golden_ds3_passes_parked_car() {
        let out = SimSession::builder(ScenarioId::Ds3).seed(3).build().run();
        assert!(!out.collided);
        assert!(!out.eb_any, "parked car out of lane must not trigger EB");
        // Maintains cruise: mean speed close to 45 kph.
        let speeds: Vec<f64> = out.record.samples.iter().map(|s| s.ego_speed).collect();
        assert!(crate::stats::mean(&speeds) > 10.0, "kept moving");
    }

    #[test]
    fn golden_runs_are_reproducible() {
        let session = SimSession::builder(ScenarioId::Ds1).seed(7).build();
        let a = session.run();
        let b = session.run();
        assert_eq!(a.record.samples.len(), b.record.samples.len());
        let last_a = a.record.samples.last().unwrap();
        let last_b = b.record.samples.last().unwrap();
        assert_eq!(last_a.ego_speed, last_b.ego_speed);
        assert_eq!(last_a.delta, last_b.delta);
    }

    #[test]
    fn kinematic_robotack_attacks_ds1() {
        let out = SimSession::builder(ScenarioId::Ds1)
            .seed(11)
            .attacker(AttackerSpec::RoboTack {
                vector: Some(AttackVector::MoveOut),
                oracle: crate::runner::OracleSpec::Kinematic,
            })
            .build()
            .run();
        assert!(out.attack.launched_at.is_some(), "attack launched");
        assert!(out.min_delta_post_attack.is_some());
    }

    #[test]
    fn traced_run_brackets_the_stream_with_lifecycle_events() {
        let sink = SharedSink::new(RingBufferSink::new(200_000));
        let out = SimSession::builder(ScenarioId::Ds1)
            .seed(3)
            .telemetry(Telemetry::with_sink(sink.clone()))
            .build()
            .run();
        let records = sink.lock().drain();
        assert!(!records.is_empty());
        assert_eq!(records[0].event.kind(), EventKind::RunStarted);
        assert_eq!(records.last().unwrap().event.kind(), EventKind::RunFinished);
        // The stream must cover the whole pipeline of a golden run.
        for kind in [
            EventKind::SchedulerTask,
            EventKind::SensorSample,
            EventKind::DetectionsEmitted,
            EventKind::TrackUpdate,
            EventKind::PlannerModeChanged,
        ] {
            assert!(
                records.iter().any(|r| r.event.kind() == kind),
                "missing {kind:?}"
            );
        }
        // And telemetry must not have perturbed the run.
        let bare = SimSession::builder(ScenarioId::Ds1).seed(3).build().run();
        assert_eq!(out.record.digest(), bare.record.digest());
    }

    #[test]
    fn faulted_traced_run_reports_injections() {
        let plan = av_faults::FaultPlan::single(av_faults::FaultSpec::always(
            av_faults::FaultKind::CameraFrameDrop { probability: 0.3 },
        ));
        let sink = SharedSink::new(RingBufferSink::new(200_000));
        let out = SimSession::builder(ScenarioId::Ds1)
            .seed(5)
            .faults(plan)
            .telemetry(Telemetry::with_sink(sink.clone()))
            .build()
            .run();
        assert!(out.faults.camera_frames_dropped > 0, "plan fired");
        let records = sink.lock().drain();
        let injected = records
            .iter()
            .filter(|r| r.event.kind() == EventKind::FaultInjected)
            .count() as u32;
        assert_eq!(injected, out.faults.total(), "one event per fault unit");
        // Dropped frames must be visible as undelivered camera samples.
        assert!(records.iter().any(|r| matches!(
            r.event,
            TraceEvent::SensorSample {
                channel: SensorChannel::Camera,
                delivered: false,
                ..
            }
        )));
    }
}
