//! The [`SimSession`] builder — the single-run API.
//!
//! A session owns everything one simulation run needs: the run
//! configuration, the attacker, and a [`Telemetry`] handle observing every
//! pipeline stage. Construction is builder-style:
//!
//! ```
//! use av_experiments::prelude::*;
//! let outcome = SimSession::builder(ScenarioId::Ds1)
//!     .seed(7)
//!     .attacker(AttackerSpec::None)
//!     .build()
//!     .run();
//! assert!(!outcome.collided);
//! ```
//!
//! The loop reproduces the paper's testbed timing (§V-B): the base physics
//! tick is 30 Hz; the camera fires at 15 Hz, LiDAR at 10 Hz, GPS/IMU at
//! 12.5 Hz and the planner at 10 Hz through the multi-rate scheduler. Every
//! camera frame passes through the attacker's man-in-the-middle hook before
//! the ADS sees it. Ground-truth safety (δ, target gap) is sampled at every
//! planning cycle, and the run halts on contact — the LGSVL behavior the
//! paper works around with its 4 m accident threshold.
//!
//! With the default disabled telemetry handle the session's traces are
//! bit-stable — the golden-trace suite pins them.

use crate::runner::{AttackerSpec, RunConfig, RunOutcome, HORIZON_M};
use av_defense::ids::{Ids, IdsConfig};
use av_faults::{FaultInjector, FaultPlan, FaultStats};
use av_perception::calibration::DetectorCalibration;
use av_planning::ads::{Ads, AdsConfig};
use av_planning::safety::{ground_truth_delta, SafetyConfig};
use av_sensing::camera::Camera;
use av_sensing::frame::{capture_into, CameraFrame};
use av_sensing::gps::GpsImu;
use av_sensing::lidar::Lidar;
use av_sensing::tap::{CameraTapVerdict, SensorTap, TracingTap};
use av_simkit::recorder::{Event, RunRecord, Sample};
use av_simkit::rng::run_rng;
use av_simkit::scenario::{Scenario, ScenarioId};
use av_simkit::scheduler::{Scheduler, Task};
use av_simkit::units::{CAMERA_HZ, GPS_HZ, LIDAR_HZ, PLANNER_HZ, SIM_DT};
use av_simkit::World;
use av_telemetry::{SensorChannel, Stage, StageTimer, Telemetry, TraceEvent, TraceSink};
use rand::rngs::StdRng;
use robotack::malware::Attacker;
use robotack::safety_hijacker::{AttackDecision, AttackFeatures, DeferredDecision};
use robotack::vector::AttackVector;

/// Builder for a [`SimSession`].
///
/// Obtained from [`SimSession::builder`]; every knob of the historical
/// `RunConfig` is reachable either through a dedicated setter or wholesale
/// through [`SimSessionBuilder::config`].
#[derive(Debug, Clone)]
pub struct SimSessionBuilder {
    config: RunConfig,
    attacker: AttackerSpec,
    telemetry: Telemetry,
}

impl SimSessionBuilder {
    /// Sets the run seed (world jitter, every noise source, attacker
    /// sampling). Defaults to 0.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Installs the attacker riding along. Defaults to [`AttackerSpec::None`]
    /// (a golden run).
    #[must_use]
    pub fn attacker(mut self, attacker: AttackerSpec) -> Self {
        self.attacker = attacker;
        self
    }

    /// Injects sensor faults between capture and delivery. The empty plan is
    /// bit-transparent.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Runs a generated scenario: the world is sampled from `spec` at the
    /// run seed (same RNG stream the fixed recipes draw from) and the run
    /// is identified by the spec's content hash
    /// ([`av_scenarios::ScenarioSpec::scenario_id`]).
    #[must_use]
    pub fn spec(mut self, spec: std::sync::Arc<av_scenarios::ScenarioSpec>) -> Self {
        self.config.scenario = spec.scenario_id();
        self.config.spec = Some(spec);
        self
    }

    /// Overrides the detector noise calibration (both the ADS and the
    /// malware replica use it).
    #[must_use]
    pub fn calibration(mut self, calibration: DetectorCalibration) -> Self {
        self.config.calibration = calibration;
        self
    }

    /// Replaces the whole run configuration (scenario, seed, calibration,
    /// fusion, σ-fraction, SH thresholds, faults) — the escape hatch for
    /// ablation sweeps that mutate several fields at once.
    #[must_use]
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a telemetry handle; the session threads it through the
    /// scheduler, sensor tap, perception, planner, and attacker. Defaults
    /// to [`Telemetry::disabled`], which is guaranteed not to perturb the
    /// run (golden digests are bit-identical).
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Convenience: full telemetry into `sink` (events + a fresh metrics
    /// registry). Equivalent to `.telemetry(Telemetry::with_sink(sink))`.
    #[must_use]
    pub fn trace_sink(self, sink: impl TraceSink + Send + 'static) -> Self {
        self.telemetry(Telemetry::with_sink(sink))
    }

    /// Finalizes the session.
    pub fn build(self) -> SimSession {
        SimSession {
            config: self.config,
            attacker: self.attacker,
            telemetry: self.telemetry,
        }
    }
}

/// One configured end-to-end simulation run: world + sensors + attacker +
/// ADS (+ observability).
#[derive(Debug, Clone)]
pub struct SimSession {
    config: RunConfig,
    attacker: AttackerSpec,
    telemetry: Telemetry,
}

/// Long-lived per-worker state reused across [`SimSession::run_with`] calls.
///
/// Campaign workers execute hundreds of runs back to back; rebuilding the
/// ADS (perception buffers, Hungarian scratch, planner) and the camera-frame
/// buffers for every run throws the warmed allocations away. A worker keeps
/// one `Ads` and one `CameraFrame` alive: between runs the ADS is `reset()`
/// (bit-identical to fresh construction — the golden-trace suite pins this)
/// and only rebuilt when the run configuration actually changes.
#[derive(Debug, Default)]
pub struct SessionWorker {
    /// The ADS last used, keyed by the exact configuration it was built with.
    ads: Option<(AdsConfig, Ads)>,
    /// Reused camera-frame buffer (truth boxes + optional raster).
    frame: CameraFrame,
    /// Reused scheduler fire buffer (~900 `advance_to` calls per run).
    fired: Vec<Task>,
}

impl SessionWorker {
    /// Creates an empty worker; buffers warm up over the first run.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The four periodic session tasks, registered in the fixed order every
/// engine must use (the batch engine shares one scheduler across lanes, so
/// [`Task`] handles are only portable because registration order is fixed —
/// see `Scheduler::advance_into`'s buffer-reuse contract).
pub(crate) struct SessionTasks {
    pub(crate) gps: Task,
    pub(crate) camera: Task,
    pub(crate) lidar: Task,
    pub(crate) planner: Task,
}

impl SessionTasks {
    /// Registers the paper's sensor/software rates (§V-B) on `scheduler`.
    pub(crate) fn register(scheduler: &mut Scheduler) -> SessionTasks {
        SessionTasks {
            gps: scheduler.add_task_hz("gps", GPS_HZ),
            camera: scheduler.add_task_hz("camera", CAMERA_HZ),
            lidar: scheduler.add_task_hz("lidar", LIDAR_HZ),
            planner: scheduler.add_task_hz("planner", PLANNER_HZ),
        }
    }
}

/// All per-run state of one executing session, with the simulation loop
/// decomposed into per-task methods.
///
/// [`SimSession::run_with`] drives a `RunState` tick by tick; the batch
/// engine (`crate::batch`) drives N of them in lockstep off one shared
/// scheduler. Both call the *same* methods in the same order, which is what
/// makes the bit-identical-digest contract between the two engines hold by
/// construction rather than by parallel maintenance of two loops.
///
/// The camera task is split-phase to let the batch engine aggregate oracle
/// inference across lanes: [`RunState::camera_task`] runs capture, the
/// fault tap, and the attacker's `begin_frame`; when that returns a
/// [`DeferredDecision`] the engine answers its oracle queries (inline and
/// scalar in the sequential engine, batched GEMM across lanes in the batch
/// engine) and then calls [`RunState::camera_resume`].
pub(crate) struct RunState {
    config: RunConfig,
    scenario: Scenario,
    tele: Telemetry,
    rng: StdRng,
    attacker: Box<dyn Attacker>,
    tap: TracingTap<FaultInjector>,
    fault_stats_seen: FaultStats,
    /// The exact configuration `ads` was built with, returned to the worker
    /// slot at [`RunState::finish`] so the next run can reuse the ADS.
    ads_config: AdsConfig,
    ads: Ads,
    frame: CameraFrame,
    camera: Camera,
    lidar: Lidar,
    gps: GpsImu,
    ids: Ids,
    record: RunRecord,
    seq: u64,
    collided: bool,
    attack_seen: bool,
    k_prime_ads: Option<u32>,
    frames_since_launch: u32,
    target_delta_at_attack_end: Option<f64>,
    min_perceived_delta: Option<f64>,
    replica_divergence: Option<f64>,
    /// Rolling window so one-tick phantom dips don't pollute the minimum.
    perceived_window: [f64; 3],
    perceived_idx: usize,
    /// Held for the whole run; drops (and records `Stage::Run`) at finish.
    _run_timer: StageTimer,
}

impl RunState {
    /// Builds the run: scenario, RNG stream, attacker, fault tap, ADS
    /// (taken from `worker` and `reset()` when the configuration matches —
    /// bit-identical to fresh construction, pinned by the golden-trace
    /// suite), sensors, IDS, and bookkeeping. Emits [`TraceEvent::RunStarted`].
    ///
    /// Everything that draws from the run RNG stream happens here in the
    /// exact order the historical loop used, so seeds replay identically.
    pub(crate) fn new(session: &SimSession, worker: &mut SessionWorker) -> RunState {
        let run_timer = session.telemetry.time(Stage::Run);
        let config = session.config.clone();
        let tele = session.telemetry.clone();

        let scenario = config.build_scenario();
        let mut rng = run_rng(config.seed, 0xA77ACC);
        let mut attacker = session.attacker.build(&scenario, &config, &mut rng);
        attacker.set_telemetry(tele.clone());
        // The injector draws from its own seeded stream, so the main run RNG
        // sequence is identical whether or not faults fire.
        let tap = TracingTap::new(
            FaultInjector::new(config.faults.clone(), config.seed),
            tele.clone(),
        );

        let mut ads_config = AdsConfig::default();
        ads_config.perception.calibration = config.calibration;
        ads_config.perception.fusion = config.fusion;
        ads_config.planner.cruise_speed = scenario.cruise_speed;
        let mut ads = match worker.ads.take() {
            Some((held, mut ads)) if held == ads_config => {
                ads.reset();
                ads
            }
            _ => Ads::new(ads_config),
        };
        ads.set_telemetry(tele.clone());

        let ids = Ids::new(IdsConfig {
            calibration: config.calibration,
            ..IdsConfig::default()
        });

        tele.emit(0.0, || TraceEvent::RunStarted {
            scenario: config.scenario.name(),
            seed: config.seed,
        });

        RunState {
            frame: std::mem::take(&mut worker.frame),
            config,
            scenario,
            tele,
            rng,
            attacker,
            tap,
            fault_stats_seen: FaultStats::default(),
            ads_config,
            ads,
            camera: Camera::default(),
            lidar: Lidar::default(),
            gps: GpsImu::default(),
            ids,
            record: RunRecord::new(),
            seq: 0,
            collided: false,
            attack_seen: false,
            k_prime_ads: None,
            frames_since_launch: 0,
            target_delta_at_attack_end: None,
            min_perceived_delta: None,
            replica_divergence: None,
            perceived_window: [f64::INFINITY; 3],
            perceived_idx: 0,
            _run_timer: run_timer,
        }
    }

    /// The world this run simulates, cloned from the scenario.
    pub(crate) fn spawn_world(&self) -> World {
        self.scenario.world.clone()
    }

    /// Number of 30 Hz physics ticks in the scenario.
    pub(crate) fn total_steps(&self) -> u64 {
        (self.scenario.duration / SIM_DT).ceil() as u64
    }

    /// This run's telemetry handle.
    pub(crate) fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// Mirrors the scheduler telemetry a sequential run gets from its
    /// private scheduler's `advance_into`: one [`Stage::SchedulerAdvance`]
    /// timing sample plus one [`TraceEvent::SchedulerTask`] per dispatched
    /// task. The batch engine advances ONE telemetry-disabled scheduler for
    /// all lanes and echoes the dispatch into each lane's stream so
    /// per-session event counts stay identical to the sequential engine.
    pub(crate) fn echo_scheduler(&self, scheduler: &Scheduler, fired: &[Task], now_us: u64) {
        let _timer = self.tele.time(Stage::SchedulerAdvance);
        if self.tele.is_enabled() {
            let t = now_us as f64 / 1e6;
            for &task in fired {
                let name = scheduler.name(task);
                self.tele
                    .emit(t, || TraceEvent::SchedulerTask { task: name });
            }
        }
    }

    /// The GPS/IMU task: sample, fault tap, deliver to the ADS.
    pub(crate) fn gps_task(&mut self, world: &World) {
        let mut fix = {
            let _t = self.tele.time(Stage::GpsSample);
            self.gps.fix(world, &mut self.rng)
        };
        self.tap.on_gps(&mut fix);
        emit_fault_diffs(
            &self.tele,
            world.time(),
            &mut self.fault_stats_seen,
            self.tap.inner(),
        );
        self.ads.on_gps(fix);
    }

    /// The camera task up to (and including) the attacker's `begin_frame`.
    ///
    /// Returns `Some` when the attacker needs oracle queries answered before
    /// it can decide; the caller resolves them and calls
    /// [`RunState::camera_resume`] with the decision. Returns `None` when
    /// the frame is fully handled — either dropped by a fault, or processed
    /// to completion (the non-deferring path resumes internally).
    pub(crate) fn camera_task(&mut self, world: &World) -> Option<DeferredDecision> {
        {
            let _t = self.tele.time(Stage::CameraCapture);
            capture_into(&self.camera, world, self.seq, false, &mut self.frame);
        }
        self.seq += 1;
        // Faults act on the sensor side of the E/E network: a dropped frame
        // never reaches the attacker's MITM hook, and a rewritten frame is
        // what the malware replica sees too.
        let verdict = self.tap.on_camera(&mut self.frame);
        emit_fault_diffs(
            &self.tele,
            world.time(),
            &mut self.fault_stats_seen,
            self.tap.inner(),
        );
        if verdict == CameraTapVerdict::Drop {
            return None;
        }
        if let Some(deferred) =
            self.attacker
                .begin_frame(&mut self.frame, world.ego().speed, &mut self.rng)
        {
            return Some(deferred);
        }
        self.camera_resume(world, None);
        None
    }

    /// Answers one oracle query on behalf of a [`DeferredDecision`] — the
    /// sequential engine's scalar resolution path.
    pub(crate) fn oracle_eval(&self, features: &AttackFeatures, k: u32) -> f64 {
        self.attacker.oracle_eval(features, k)
    }

    /// The rest of the camera task: the attacker commits (or declines) its
    /// launch, the ADS and IDS consume the (possibly perturbed) frame, and
    /// the attack bookkeeping runs at camera rate.
    pub(crate) fn camera_resume(&mut self, world: &World, decision: Option<AttackDecision>) {
        self.attacker.finish_frame(decision, &mut self.frame);
        self.ads.on_camera_frame(&self.frame, &mut self.rng);
        self.ids
            .on_camera(world.time(), self.ads.perception().last_detections());

        // Attack bookkeeping at camera rate.
        let stats = *self.attacker.stats();
        if let Some(t0) = stats.launched_at {
            if !self.attack_seen {
                self.attack_seen = true;
                self.record.push_event(t0, Event::AttackStarted);
            }
            self.frames_since_launch += 1;
            if self.k_prime_ads.is_none() {
                if let (Some(vector), Some(target)) = (stats.vector, stats.target) {
                    if let Some(truth) = world.actor(target) {
                        if k_prime_reached(vector, &self.ads, truth.pose.position) {
                            self.k_prime_ads = Some(self.frames_since_launch);
                        }
                    }
                }
            }
            // Label for the SH training set: δ w.r.t. the target at the
            // frame the attack window closes.
            if self.target_delta_at_attack_end.is_none() && stats.frames_perturbed >= stats.k {
                self.record.push_event(world.time(), Event::AttackEnded);
                self.target_delta_at_attack_end = av_planning::safety::target_delta(
                    &self.config.safety,
                    world,
                    self.scenario.target,
                );
            }
        }
    }

    /// The LiDAR task: scan, fault tap, deliver to the ADS and IDS.
    pub(crate) fn lidar_task(&mut self, world: &World) {
        let mut scan = {
            let _t = self.tele.time(Stage::LidarScan);
            self.lidar.scan(world, &mut self.rng)
        };
        let delivered = self.tap.on_lidar(&mut scan);
        emit_fault_diffs(
            &self.tele,
            world.time(),
            &mut self.fault_stats_seen,
            self.tap.inner(),
        );
        if delivered {
            self.ads.on_lidar(&scan);
            self.ids
                .on_lidar(world.time(), &scan, &self.ads.world_model());
        }
    }

    /// The planner task: plan tick, replica-divergence probe, and the
    /// ground-truth safety sample.
    pub(crate) fn planner_task(&mut self, world: &World) {
        let entered_eb = self.ads.plan_tick_at(world.time());
        // Mirrored-replica divergence: both models estimate the scripted
        // target ego-relative; track the worst disagreement.
        if let Some(replica) = self.attacker.replica_world() {
            let ego = self.ads.ego_position();
            let ads_rel = self
                .ads
                .world_model()
                .iter()
                .find(|o| o.provenance == Some(av_simkit::scenario::TARGET_ID))
                .map(|o| o.position - ego);
            let rep_rel = replica
                .iter()
                .find(|o| o.provenance == Some(av_simkit::scenario::TARGET_ID))
                .map(|o| o.position);
            if let (Some(a), Some(r)) = (ads_rel, rep_rel) {
                let d = a.distance(r);
                self.replica_divergence =
                    Some(self.replica_divergence.map_or(d, |m: f64| m.max(d)));
            }
        }
        if entered_eb {
            self.record.push_event(world.time(), Event::EmergencyBrake);
        }
        if self.attack_seen {
            let d =
                perceived_in_path_delta(&self.ads, &self.config.safety).unwrap_or(f64::INFINITY);
            self.perceived_window[self.perceived_idx % 3] = d;
            self.perceived_idx += 1;
            if self.perceived_idx >= 3 {
                // A dip only counts if it persisted 3 planner ticks.
                let sustained = self
                    .perceived_window
                    .iter()
                    .copied()
                    .fold(f64::MIN, f64::max);
                if sustained.is_finite() {
                    self.min_perceived_delta = Some(
                        self.min_perceived_delta
                            .map_or(sustained, |m: f64| m.min(sustained)),
                    );
                }
            }
        }
        let (delta, _) = ground_truth_delta(&self.config.safety, world, HORIZON_M);
        let target_gap = world
            .separation_to_ego(self.scenario.target)
            .unwrap_or(f64::INFINITY);
        self.record.push_sample(Sample {
            t: world.time(),
            ego_speed: world.ego().speed,
            ego_accel: self.ads.plan().accel,
            delta,
            target_gap,
            attack_active: self.attacker.attacking(),
            emergency_braking: self.ads.emergency_braking(),
        });
    }

    /// The 30 Hz control tick: the ADS's longitudinal acceleration command.
    pub(crate) fn control_tick(&mut self) -> f64 {
        self.ads.control_tick(SIM_DT)
    }

    /// Advances the sequential engine's world under the `WorldStep` timer.
    fn step_world(&self, world: &mut World, accel: f64) {
        let _t = self.tele.time(Stage::WorldStep);
        world.step(SIM_DT, accel);
    }

    /// Post-step contact check (the LGSVL behavior): bumper-to-bumper
    /// contact with an in-path obstacle halts the run. Returns whether the
    /// run just collided and must stop.
    pub(crate) fn after_step(&mut self, world: &World) -> bool {
        if let Some(o) = world.in_path_obstacle(0.0) {
            if o.gap <= 0.05 && o.closing_speed > -0.1 {
                self.record.push_event(world.time(), Event::Collision);
                self.tele.emit(world.time(), || TraceEvent::Collision);
                self.collided = true;
            }
        }
        self.collided
    }

    /// Closes the run: final labels, outcome assembly, the
    /// [`TraceEvent::RunFinished`] emit/flush, and handing the warmed ADS
    /// and frame buffer back to `worker` for the next run.
    pub(crate) fn finish(mut self, world: &World, worker: &mut SessionWorker) -> RunOutcome {
        // If the attack window never closed (run ended first), take the
        // label at the end of the run.
        let stats = *self.attacker.stats();
        if stats.launched_at.is_some() && self.target_delta_at_attack_end.is_none() {
            self.target_delta_at_attack_end =
                av_planning::safety::target_delta(&self.config.safety, world, self.scenario.target);
        }

        let min_delta_post_attack = stats
            .launched_at
            .and_then(|t0| self.record.min_delta_since(t0));
        let attack_end_t = self
            .record
            .first_event(Event::AttackEnded)
            .unwrap_or(world.time());
        let min_delta_attack_window = stats.launched_at.map(|t0| {
            self.record
                .samples
                .iter()
                .filter(|s| s.t >= t0 && s.t <= attack_end_t + 3.0)
                .map(|s| s.delta)
                .fold(f64::INFINITY, f64::min)
        });
        let accident = self.collided
            || min_delta_post_attack.is_some_and(|d| self.config.safety.is_accident(d));
        let eb_after_attack = stats.launched_at.is_some_and(|t0| {
            self.record
                .events
                .iter()
                .any(|(t, e)| *e == Event::EmergencyBrake && *t >= t0 - 1e-9)
        });
        let eb_any = self.record.has_event(Event::EmergencyBrake);

        let samples = self.record.samples.len() as u64;
        self.tele.emit(world.time(), || TraceEvent::RunFinished {
            sim_seconds: world.time(),
            samples,
        });
        self.tele.flush();

        let stale_frames = self.ads.perception().stale_frames();
        worker.ads = Some((self.ads_config, self.ads));
        worker.frame = self.frame;

        RunOutcome {
            scenario: self.config.scenario,
            seed: self.config.seed,
            sim_seconds: world.time(),
            record: self.record,
            attack: stats,
            collided: self.collided,
            accident,
            eb_after_attack,
            eb_any,
            min_delta_post_attack,
            min_delta_attack_window,
            target_delta_at_attack_end: self.target_delta_at_attack_end,
            min_perceived_delta_post_attack: self.min_perceived_delta,
            k_prime_ads: self.k_prime_ads,
            ids_alarms: self.ids.alarms().to_vec(),
            faults: *self.tap.inner().stats(),
            stale_frames,
            replica_divergence: self.replica_divergence,
        }
    }
}

impl SimSession {
    /// Starts building a session for `scenario`.
    pub fn builder(scenario: ScenarioId) -> SimSessionBuilder {
        SimSessionBuilder {
            config: RunConfig::new(scenario, 0),
            attacker: AttackerSpec::None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The run configuration this session will execute.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The attached telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The attacker specification this session builds per run (the batch
    /// engine groups sessions by oracle identity to batch NN inference).
    pub(crate) fn attacker_spec(&self) -> &AttackerSpec {
        &self.attacker
    }

    /// Executes the run. A session is reusable: running twice with the same
    /// configuration produces bit-identical records (and, modulo wall-clock
    /// metrics, identical event streams).
    pub fn run(&self) -> RunOutcome {
        self.run_with(&mut SessionWorker::new())
    }

    /// Executes the run reusing `worker`'s long-lived ADS and frame buffers.
    ///
    /// Bit-identical to [`SimSession::run`] for any worker state — a reused
    /// ADS is `reset()` (or rebuilt on configuration change) before the run.
    pub fn run_with(&self, worker: &mut SessionWorker) -> RunOutcome {
        // The scheduler lives outside RunState so the batch engine can share
        // one across lanes; registration emits nothing, so creating it first
        // keeps RunStarted the first event in the stream.
        let mut scheduler = Scheduler::new();
        scheduler.set_telemetry(self.telemetry.clone());
        let tasks = SessionTasks::register(&mut scheduler);

        let mut state = RunState::new(self, worker);
        let mut world = state.spawn_world();
        let mut fired = std::mem::take(&mut worker.fired);

        for _ in 0..state.total_steps() {
            scheduler.advance_into(world.time_us(), &mut fired);
            for &task in fired.iter() {
                if task == tasks.gps {
                    state.gps_task(&world);
                } else if task == tasks.camera {
                    if let Some(mut deferred) = state.camera_task(&world) {
                        // Scalar inline resolution — the batch engine
                        // answers the same queries with one GEMM across
                        // lanes instead.
                        while let Some((features, k)) = deferred.pending() {
                            let delta = state.oracle_eval(&features, k);
                            deferred.feed(delta);
                        }
                        state.camera_resume(&world, deferred.into_decision());
                    }
                } else if task == tasks.lidar {
                    state.lidar_task(&world);
                } else if task == tasks.planner {
                    state.planner_task(&world);
                }
            }

            let accel = state.control_tick();
            state.step_world(&mut world, accel);
            if state.after_step(&world) {
                break;
            }
        }

        worker.fired = fired;
        state.finish(&world, worker)
    }
}

/// Emits one [`TraceEvent::FaultInjected`] per injector counter that
/// advanced since the previous call. The tracing tap cannot see injector
/// internals generically, so the session diffs the public statistics after
/// each tap invocation.
fn emit_fault_diffs(tele: &Telemetry, t: f64, seen: &mut FaultStats, injector: &FaultInjector) {
    if !tele.is_enabled() {
        *seen = *injector.stats();
        return;
    }
    let now = *injector.stats();
    let diffs: [(SensorChannel, &'static str, u32); 8] = [
        (
            SensorChannel::Camera,
            "camera_frames_dropped",
            now.camera_frames_dropped - seen.camera_frames_dropped,
        ),
        (
            SensorChannel::Camera,
            "camera_frames_frozen",
            now.camera_frames_frozen - seen.camera_frames_frozen,
        ),
        (
            SensorChannel::Camera,
            "camera_frames_delayed",
            now.camera_frames_delayed - seen.camera_frames_delayed,
        ),
        (
            SensorChannel::Camera,
            "camera_boxes_noised",
            now.camera_boxes_noised - seen.camera_boxes_noised,
        ),
        (
            SensorChannel::Camera,
            "camera_boxes_occluded",
            now.camera_boxes_occluded - seen.camera_boxes_occluded,
        ),
        (
            SensorChannel::Camera,
            "camera_blackout_frames",
            now.camera_blackout_frames - seen.camera_blackout_frames,
        ),
        (
            SensorChannel::Lidar,
            "lidar_scans_dropped",
            now.lidar_scans_dropped - seen.lidar_scans_dropped,
        ),
        (
            SensorChannel::Gps,
            "gps_fixes_biased",
            now.gps_fixes_biased - seen.gps_fixes_biased,
        ),
    ];
    for (channel, what, count) in diffs {
        if count > 0 {
            tele.emit(t, || TraceEvent::FaultInjected {
                channel,
                what,
                count,
            });
        }
    }
    *seen = now;
}

/// Tracks when the ADS world model reflects the hijacked trajectory (the
/// Fig. 7 `K′` measurement).
fn k_prime_reached(vector: AttackVector, ads: &Ads, target_truth: av_simkit::math::Vec2) -> bool {
    let world = ads.world_model();
    let perceived = world
        .iter()
        .find(|o| o.provenance == Some(av_simkit::scenario::TARGET_ID));
    match vector {
        AttackVector::Disappear => {
            // Gone when nothing is published near the true position.
            !world
                .iter()
                .any(|o| o.position.distance(target_truth) < 3.0)
        }
        AttackVector::MoveOut => perceived
            .map(|o| (o.position.y - target_truth.y).abs() >= 1.6)
            .unwrap_or(true),
        AttackVector::MoveIn => perceived
            .map(|o| o.position.y.abs() <= 1.25)
            .unwrap_or(false),
    }
}

/// The EV's perceived in-path safety potential: nearest world-model object
/// overlapping the ego corridor, minus the stopping distance.
fn perceived_in_path_delta(ads: &Ads, safety: &SafetyConfig) -> Option<f64> {
    let ego = ads.ego_position();
    let v = ads.ego_speed();
    let ego_front = ego.x + 2.3;
    let (cy0, cy1) = (ego.y - 1.25, ego.y + 1.25);
    ads.world_model()
        .iter()
        .filter_map(|o| {
            let (oy0, oy1) = o.lateral_extent();
            if av_simkit::math::interval_overlap(cy0, cy1, oy0, oy1) <= 0.0 {
                return None;
            }
            let (ox0, ox1) = o.longitudinal_extent();
            if ox1 < ego_front {
                return None;
            }
            Some((ox0 - ego_front).max(0.0))
        })
        .fold(None, |acc: Option<f64>, g| {
            Some(acc.map_or(g, |a| a.min(g)))
        })
        .map(|gap| safety.delta(gap, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_telemetry::{EventKind, RingBufferSink, SharedSink};

    #[test]
    fn golden_ds1_is_safe() {
        let out = SimSession::builder(ScenarioId::Ds1).seed(3).build().run();
        assert!(!out.collided, "golden DS-1 must not collide");
        assert!(!out.eb_any, "golden DS-1 must not emergency brake");
        assert!(out.attack.launched_at.is_none());
        assert!(out.record.samples.len() > 100);
    }

    #[test]
    fn golden_ds2_stops_for_pedestrian() {
        let out = SimSession::builder(ScenarioId::Ds2).seed(3).build().run();
        assert!(!out.collided, "golden DS-2 must not hit the pedestrian");
        // The EV must have actually slowed down substantially at some point.
        let min_speed = out
            .record
            .samples
            .iter()
            .map(|s| s.ego_speed)
            .fold(f64::INFINITY, f64::min);
        assert!(min_speed < 2.0, "EV braked for the pedestrian: {min_speed}");
    }

    #[test]
    fn golden_ds3_passes_parked_car() {
        let out = SimSession::builder(ScenarioId::Ds3).seed(3).build().run();
        assert!(!out.collided);
        assert!(!out.eb_any, "parked car out of lane must not trigger EB");
        // Maintains cruise: mean speed close to 45 kph.
        let speeds: Vec<f64> = out.record.samples.iter().map(|s| s.ego_speed).collect();
        assert!(crate::stats::mean(&speeds) > 10.0, "kept moving");
    }

    #[test]
    fn golden_runs_are_reproducible() {
        let session = SimSession::builder(ScenarioId::Ds1).seed(7).build();
        let a = session.run();
        let b = session.run();
        assert_eq!(a.record.samples.len(), b.record.samples.len());
        let last_a = a.record.samples.last().unwrap();
        let last_b = b.record.samples.last().unwrap();
        assert_eq!(last_a.ego_speed, last_b.ego_speed);
        assert_eq!(last_a.delta, last_b.delta);
    }

    #[test]
    fn kinematic_robotack_attacks_ds1() {
        let out = SimSession::builder(ScenarioId::Ds1)
            .seed(11)
            .attacker(AttackerSpec::RoboTack {
                vector: Some(AttackVector::MoveOut),
                oracle: crate::runner::OracleSpec::Kinematic,
            })
            .build()
            .run();
        assert!(out.attack.launched_at.is_some(), "attack launched");
        assert!(out.min_delta_post_attack.is_some());
    }

    #[test]
    fn traced_run_brackets_the_stream_with_lifecycle_events() {
        let sink = SharedSink::new(RingBufferSink::new(200_000));
        let out = SimSession::builder(ScenarioId::Ds1)
            .seed(3)
            .telemetry(Telemetry::with_sink(sink.clone()))
            .build()
            .run();
        let records = sink.lock().drain();
        assert!(!records.is_empty());
        assert_eq!(records[0].event.kind(), EventKind::RunStarted);
        assert_eq!(records.last().unwrap().event.kind(), EventKind::RunFinished);
        // The stream must cover the whole pipeline of a golden run.
        for kind in [
            EventKind::SchedulerTask,
            EventKind::SensorSample,
            EventKind::DetectionsEmitted,
            EventKind::TrackUpdate,
            EventKind::PlannerModeChanged,
        ] {
            assert!(
                records.iter().any(|r| r.event.kind() == kind),
                "missing {kind:?}"
            );
        }
        // And telemetry must not have perturbed the run.
        let bare = SimSession::builder(ScenarioId::Ds1).seed(3).build().run();
        assert_eq!(out.record.digest(), bare.record.digest());
    }

    #[test]
    fn faulted_traced_run_reports_injections() {
        let plan = av_faults::FaultPlan::single(av_faults::FaultSpec::always(
            av_faults::FaultKind::CameraFrameDrop { probability: 0.3 },
        ));
        let sink = SharedSink::new(RingBufferSink::new(200_000));
        let out = SimSession::builder(ScenarioId::Ds1)
            .seed(5)
            .faults(plan)
            .telemetry(Telemetry::with_sink(sink.clone()))
            .build()
            .run();
        assert!(out.faults.camera_frames_dropped > 0, "plan fired");
        let records = sink.lock().drain();
        let injected = records
            .iter()
            .filter(|r| r.event.kind() == EventKind::FaultInjected)
            .count() as u32;
        assert_eq!(injected, out.faults.total(), "one event per fault unit");
        // Dropped frames must be visible as undelivered camera samples.
        assert!(records.iter().any(|r| matches!(
            r.event,
            TraceEvent::SensorSample {
                channel: SensorChannel::Camera,
                delivered: false,
                ..
            }
        )));
    }
}
