//! Lockstep batched multi-session execution.
//!
//! The sequential engine ([`crate::session::SimSession::run_with`]) advances
//! one run at a time: every 30 Hz tick pays its own scheduler dispatch, its
//! own world-step behavior clones, and — under an NN safety-hijacker — its
//! own one-row oracle forward passes. A campaign runs hundreds of such
//! sessions with *identical* tick structure, so the batch engine advances N
//! of them in lockstep instead:
//!
//! - **One scheduler dispatch per tick** for the whole batch. All sessions
//!   register the same four tasks in the same order at the same rates, so a
//!   single telemetry-disabled [`Scheduler`] drives every lane and each
//!   lane's `RunState` echoes the dispatch into its own telemetry stream
//!   (`RunState::echo_scheduler`) to keep per-session event counts
//!   identical to the sequential engine.
//! - **Structure-of-arrays world stepping** through [`BatchWorld`]: actor
//!   kinematics live in flat per-field arrays and behaviors are stepped in
//!   place, eliminating the per-actor-per-tick behavior clone of
//!   `World::step` while remaining bit-identical to it.
//! - **Batched oracle inference**: when several lanes' attackers defer a
//!   launch decision on the same camera tick, their safety-hijacker k-search
//!   queries are answered together — one GEMM per NN oracle per bisection
//!   round ([`NnOracle::predict_delta_batch`]) instead of one forward pass
//!   per query, with per-session RNG streams untouched.
//!
//! # Determinism contract
//!
//! `RunRecord::digest()` from this engine is **bit-identical** to the
//! sequential engine for every scenario, seed, fault plan, and batch size —
//! the batch engine calls the exact same `RunState` methods in the same
//! per-lane order, the engine clock reproduces `World::time_us` exactly
//! (`tick × round(SIM_DT·1e6)`), and every batched numeric path (world step,
//! oracle GEMM) is pinned bit-identical to its scalar counterpart by tests
//! in `av-simkit`, `av-neural`, and `robotack`. The integration suite
//! (`tests/batch_equivalence.rs`) pins the end-to-end digests.
//!
//! Sessions that end early (collision) or have shorter scenarios retire from
//! the batch without perturbing survivors: a retired lane is simply never
//! visited again, and per-lane RNG/oracle state is fully isolated in its
//! `RunState`.

use crate::runner::{AttackerSpec, OracleSpec, RunOutcome};
use crate::session::{RunState, SessionTasks, SessionWorker, SimSession};
use av_simkit::scheduler::{Scheduler, Task};
use av_simkit::units::SIM_DT;
use av_simkit::BatchWorld;
use av_telemetry::{Stage, Telemetry, TraceEvent};
use robotack::safety_hijacker::{AttackFeatures, DeferredDecision, NnOracle};
use std::sync::Arc;

/// Reusable per-worker lane state: one [`SessionWorker`] (warm ADS + frame
/// buffers) per lane plus the shared scheduler fire buffer.
///
/// A campaign worker keeps one pool alive across all the batches it claims,
/// so lane `i` of every batch reuses the same warmed ADS (reset between
/// runs, bit-identical to fresh construction).
#[derive(Debug, Default)]
pub struct LanePool {
    workers: Vec<SessionWorker>,
    fired: Vec<Task>,
}

impl LanePool {
    /// Creates an empty pool; buffers warm up over the first batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes `sessions` in lockstep and returns their outcomes in input
    /// order. `engine_tele` receives the engine-level
    /// [`TraceEvent::BatchStepped`] / [`TraceEvent::BatchOracleInference`]
    /// events (whose counts depend on the batch size and are therefore kept
    /// out of per-session streams).
    pub fn run_batch(
        &mut self,
        sessions: &[SimSession],
        engine_tele: &Telemetry,
    ) -> Vec<RunOutcome> {
        let n = sessions.len();
        if n == 0 {
            return Vec::new();
        }
        while self.workers.len() < n {
            self.workers.push(SessionWorker::new());
        }

        // One shared, telemetry-disabled scheduler for the whole batch.
        // Every session registers the same tasks in the same order, so the
        // Task handles are portable across lanes (the advance_into contract)
        // and each lane echoes the dispatch into its own stream instead.
        let mut scheduler = Scheduler::new();
        let tasks = SessionTasks::register(&mut scheduler);

        let mut states: Vec<Option<RunState>> = sessions
            .iter()
            .zip(&mut self.workers)
            .map(|(session, worker)| Some(RunState::new(session, worker)))
            .collect();
        let worlds: Vec<_> = states
            .iter()
            .map(|s| s.as_ref().expect("fresh state").spawn_world())
            .collect();
        let steps: Vec<u64> = states
            .iter()
            .map(|s| s.as_ref().expect("fresh state").total_steps())
            .collect();
        let mut batch = BatchWorld::new(worlds);

        let mut outcomes: Vec<Option<RunOutcome>> = Vec::new();
        outcomes.resize_with(n, || None);
        let mut remaining = n;

        // Degenerate zero-length scenarios finish before the first tick,
        // exactly like a sequential loop over `0..0`.
        for lane in 0..n {
            if steps[lane] == 0 {
                let state = states[lane].take().expect("unfinished lane");
                outcomes[lane] = Some(state.finish(batch.lane(lane), &mut self.workers[lane]));
                remaining -= 1;
            }
        }

        // The engine clock replays World::time_us exactly: the world adds
        // round(SIM_DT·1e6) integer microseconds per step, so the shared
        // scheduler sees the same now_us sequence every private per-session
        // scheduler would.
        let tick_us = (SIM_DT * 1e6).round() as u64;
        let mut deferred: Vec<(usize, DeferredDecision)> = Vec::new();
        let mut tick: u64 = 0;
        while remaining > 0 {
            let now_us = tick * tick_us;
            let t = now_us as f64 / 1e6;
            scheduler.advance_into(now_us, &mut self.fired);

            // Pass 1 — per lane: scheduler echo, GPS, camera up to the
            // attacker's begin_frame. Lanes whose attacker defers its launch
            // decision park a DeferredDecision for the oracle barrier.
            deferred.clear();
            for (lane, slot) in states.iter_mut().enumerate() {
                let Some(state) = slot.as_mut() else { continue };
                debug_assert_eq!(batch.lane(lane).time_us(), now_us, "lane clock skew");
                state.echo_scheduler(&scheduler, &self.fired, now_us);
                for &task in self.fired.iter() {
                    if task == tasks.gps {
                        state.gps_task(batch.lane(lane));
                    } else if task == tasks.camera {
                        if let Some(d) = state.camera_task(batch.lane(lane)) {
                            deferred.push((lane, d));
                        }
                    }
                }
            }

            // Oracle barrier — answer every deferred lane's k-search queries,
            // batching rows across lanes per NN oracle.
            if !deferred.is_empty() {
                resolve_deferred(sessions, &states, &mut deferred, engine_tele, t);
                for (lane, d) in deferred.drain(..) {
                    let state = states[lane].as_mut().expect("deferred lane is active");
                    state.camera_resume(batch.lane(lane), d.into_decision());
                }
            }

            // Pass 2 — per lane: LiDAR, planner, control, world step,
            // contact check, retirement.
            let mut stepped: u32 = 0;
            for lane in 0..n {
                let Some(state) = states[lane].as_mut() else {
                    continue;
                };
                for &task in self.fired.iter() {
                    if task == tasks.lidar {
                        state.lidar_task(batch.lane(lane));
                    } else if task == tasks.planner {
                        state.planner_task(batch.lane(lane));
                    }
                }
                let accel = state.control_tick();
                {
                    let _t = state.telemetry().time(Stage::WorldStep);
                    batch.step_lane(lane, SIM_DT, accel);
                }
                stepped += 1;
                let halted = state.after_step(batch.lane(lane));
                if halted || tick + 1 >= steps[lane] {
                    let state = states[lane].take().expect("unfinished lane");
                    outcomes[lane] = Some(state.finish(batch.lane(lane), &mut self.workers[lane]));
                    remaining -= 1;
                }
            }
            engine_tele.emit(t, || TraceEvent::BatchStepped { lanes: stepped });
            tick += 1;
        }

        outcomes
            .into_iter()
            .map(|o| o.expect("all lanes finished"))
            .collect()
    }
}

/// The NN oracle a session's attacker consults, when it has one. Lanes
/// without an NN oracle (kinematic, baselines) resolve their queries through
/// the scalar [`RunState::oracle_eval`] path instead.
fn nn_oracle(session: &SimSession) -> Option<&Arc<NnOracle>> {
    match session.attacker_spec() {
        AttackerSpec::RoboTack {
            oracle: OracleSpec::Nn(nn),
            ..
        } => Some(nn),
        _ => None,
    }
}

/// Answers every pending oracle query of `deferred` until all k-searches are
/// terminal. A k-search exposes one query at a time (the next bisection
/// midpoint depends on the previous answer), so resolution proceeds in
/// rounds: each round gathers the current query of every still-pending lane,
/// groups them by oracle identity, and answers each NN group with a single
/// batched forward pass — bit-identical per row to the scalar oracle.
fn resolve_deferred(
    sessions: &[SimSession],
    states: &[Option<RunState>],
    deferred: &mut [(usize, DeferredDecision)],
    engine_tele: &Telemetry,
    t: f64,
) {
    // (index into `deferred`, query) for the current round.
    let mut round: Vec<(usize, AttackFeatures, u32)> = Vec::new();
    // NN groups: oracle identity (Arc pointer) → round indices.
    let mut groups: Vec<(Arc<NnOracle>, Vec<usize>)> = Vec::new();
    let mut queries: Vec<(AttackFeatures, u32)> = Vec::new();
    let mut answers: Vec<f64> = Vec::new();
    loop {
        round.clear();
        for (di, (_, d)) in deferred.iter().enumerate() {
            if let Some((features, k)) = d.pending() {
                round.push((di, features, k));
            }
        }
        if round.is_empty() {
            return;
        }
        let n_queries = round.len() as u32;
        engine_tele.emit(t, || TraceEvent::BatchOracleInference {
            queries: n_queries,
        });

        groups.clear();
        for (ri, &(di, features, k)) in round.iter().enumerate() {
            let lane = deferred[di].0;
            match nn_oracle(&sessions[lane]) {
                Some(nn) => match groups.iter_mut().find(|(o, _)| Arc::ptr_eq(o, nn)) {
                    Some((_, members)) => members.push(ri),
                    None => groups.push((nn.clone(), vec![ri])),
                },
                None => {
                    // Scalar path: the lane's own oracle, exactly as the
                    // sequential engine would call it.
                    let state = states[lane].as_ref().expect("deferred lane is active");
                    deferred[di].1.feed(state.oracle_eval(&features, k));
                }
            }
        }
        for (oracle, members) in &groups {
            queries.clear();
            queries.extend(members.iter().map(|&ri| (round[ri].1, round[ri].2)));
            oracle.predict_delta_batch(&queries, &mut answers);
            for (&ri, &delta) in members.iter().zip(&answers) {
                deferred[round[ri].0].1.feed(delta);
            }
        }
    }
}
