//! Seeded campaigns: batches of runs with Table II / Fig. 6 / Fig. 7 metrics.

use crate::runner::{AttackerSpec, RunConfig, RunOutcome};
use crate::session::{SessionWorker, SimSession};
use crate::stats;
use av_faults::FaultPlan;
use av_simkit::scenario::ScenarioId;
use av_telemetry::{MetricsRegistry, MetricsSnapshot, Telemetry, TraceEvent};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why a campaign could not be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// `threads == 0` was requested. Historical behavior silently clamped
    /// this to sequential execution; the caller now has to pick a real
    /// worker count (1 = sequential).
    ZeroThreads,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::ZeroThreads => {
                write!(f, "campaign requires at least one worker thread (got 0)")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// A campaign: one 〈scenario, attacker〉 pair executed over many seeds, like
/// the paper's 150–200 runs per experimental campaign (§VI-C).
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign id, e.g. `DS-1-Disappear-R` (paper naming).
    pub name: String,
    /// Scenario to run.
    pub scenario: ScenarioId,
    /// For generated scenarios: the spec every run samples its world from
    /// (at `base_seed + index`, the same stream the fixed recipes draw
    /// from). `None` for the fixed DS-1..5 scenarios.
    pub spec: Option<Arc<av_scenarios::ScenarioSpec>>,
    /// Attacker riding along.
    pub attacker: AttackerSpec,
    /// Number of seeded runs.
    pub runs: u64,
    /// Base seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Sensor faults injected into every run (empty = healthy sensors).
    pub faults: FaultPlan,
    /// Collect per-stage timing metrics across all workers (merged into
    /// [`CampaignResult::metrics`]). Off by default: the campaign then runs
    /// with telemetry fully disabled, the zero-cost path.
    pub collect_metrics: bool,
}

impl Campaign {
    /// Creates a campaign with healthy sensors.
    pub fn new(
        name: impl Into<String>,
        scenario: ScenarioId,
        attacker: AttackerSpec,
        runs: u64,
        base_seed: u64,
    ) -> Self {
        Campaign {
            name: name.into(),
            scenario,
            spec: None,
            attacker,
            runs,
            base_seed,
            faults: FaultPlan::none(),
            collect_metrics: false,
        }
    }

    /// A campaign over a generated scenario: every run samples its world
    /// from `spec`, and [`Campaign::scenario`] is the spec's content-hash
    /// id ([`av_scenarios::ScenarioSpec::scenario_id`]).
    pub fn generated(
        name: impl Into<String>,
        spec: Arc<av_scenarios::ScenarioSpec>,
        attacker: AttackerSpec,
        runs: u64,
        base_seed: u64,
    ) -> Self {
        let mut campaign = Campaign::new(name, spec.scenario_id(), attacker, runs, base_seed);
        campaign.spec = Some(spec);
        campaign
    }

    /// The same campaign with a fault plan applied to every run.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The same campaign with per-stage timing collection enabled.
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.collect_metrics = true;
        self
    }
}

/// Aggregated campaign outcomes.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Campaign id.
    pub name: String,
    /// Scenario run.
    pub scenario: ScenarioId,
    /// All run outcomes, in seed order.
    pub outcomes: Vec<RunOutcome>,
    /// Per-stage timing + event counts merged across all worker threads
    /// (`Some` only when the campaign was built [`Campaign::with_metrics`]).
    /// The deterministic projection ([`MetricsSnapshot::deterministic_counts`])
    /// is thread-count invariant; durations are wall-clock and are not.
    pub metrics: Option<MetricsSnapshot>,
}

impl CampaignResult {
    /// Runs in which an attack was actually launched ("valid runs"; the
    /// paper discards invalid runs, §VI-C).
    pub fn launched(&self) -> Vec<&RunOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.attack.launched_at.is_some())
            .collect()
    }

    /// Number of valid (attack-launched) runs.
    pub fn n_launched(&self) -> usize {
        self.launched().len()
    }

    /// Emergency-braking count and rate (%) over valid runs.
    pub fn eb(&self) -> (usize, f64) {
        let launched = self.launched();
        let n = launched.iter().filter(|o| o.eb_after_attack).count();
        let pct = if launched.is_empty() {
            0.0
        } else {
            100.0 * n as f64 / launched.len() as f64
        };
        (n, pct)
    }

    /// Accident (crash) count and rate (%) over valid runs.
    pub fn crashes(&self) -> (usize, f64) {
        let launched = self.launched();
        let n = launched.iter().filter(|o| o.accident).count();
        let pct = if launched.is_empty() {
            0.0
        } else {
            100.0 * n as f64 / launched.len() as f64
        };
        (n, pct)
    }

    /// Median planned attack length K (frames) over valid runs.
    pub fn median_k(&self) -> f64 {
        let ks: Vec<f64> = self
            .launched()
            .iter()
            .map(|o| f64::from(o.attack.k))
            .collect();
        stats::median(&ks)
    }

    /// All measured K′ values (ADS-side, Fig. 7).
    pub fn k_primes(&self) -> Vec<f64> {
        self.launched()
            .iter()
            .filter_map(|o| o.k_prime_ads.map(f64::from))
            .collect()
    }

    /// Min-δ-since-attack values (Fig. 6).
    pub fn min_deltas(&self) -> Vec<f64> {
        self.launched()
            .iter()
            .filter_map(|o| o.min_delta_post_attack)
            .collect()
    }
}

/// How run indices are handed to campaign workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Atomic-counter work stealing: every worker claims the next unclaimed
    /// run index, so a straggling run delays only its own worker while the
    /// rest drain the queue. The default.
    #[default]
    WorkStealing,
    /// Historical static partition: the seed range is split into one
    /// contiguous chunk per worker up front. One long run stalls its whole
    /// chunk. Kept as a comparison shim for benchmarks and regression tests.
    StaticChunks,
    /// Lockstep batched execution (`crate::batch`): workers claim contiguous
    /// blocks of `batch_size` runs and advance each block's sessions in
    /// lockstep off one shared scheduler, a structure-of-arrays world, and
    /// batched oracle inference. Outcomes are bit-identical to the other
    /// modes at any batch size (the differential-equivalence suite pins it).
    Batched {
        /// Sessions advanced per lockstep block (clamped to at least 1).
        batch_size: usize,
    },
}

/// Executes a campaign, parallelized across worker threads.
pub fn run_campaign(campaign: &Campaign) -> CampaignResult {
    run_campaign_with_threads(campaign, default_threads())
        .expect("default_threads() is always at least 1")
}

/// Reasonable worker count for this host.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Executes a campaign on exactly `threads` workers (1 = sequential) under
/// work-stealing dispatch.
///
/// # Errors
///
/// Returns [`CampaignError::ZeroThreads`] for `threads == 0` — previously
/// this was silently clamped to sequential execution.
pub fn run_campaign_with_threads(
    campaign: &Campaign,
    threads: usize,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_dispatch(campaign, threads, DispatchMode::WorkStealing)
}

/// Executes a campaign on exactly `threads` workers with an explicit
/// [`DispatchMode`]. Outcomes land in seed order and are bit-identical for
/// every (threads, mode) combination.
///
/// # Errors
///
/// Returns [`CampaignError::ZeroThreads`] for `threads == 0`.
pub fn run_campaign_dispatch(
    campaign: &Campaign,
    threads: usize,
    mode: DispatchMode,
) -> Result<CampaignResult, CampaignError> {
    if threads == 0 {
        return Err(CampaignError::ZeroThreads);
    }
    let runs = usize::try_from(campaign.runs).expect("run count fits usize");
    // One registry per worker: workers record lock-free into their own and
    // the merge at the end is associative + commutative, so the merged
    // deterministic counters are identical for any thread count.
    let registries: Vec<Arc<MetricsRegistry>> = if campaign.collect_metrics {
        (0..threads.max(1))
            .map(|_| Arc::new(MetricsRegistry::new()))
            .collect()
    } else {
        Vec::new()
    };
    let worker_telemetry = |worker: usize| -> Telemetry {
        registries
            .get(worker)
            .map_or_else(Telemetry::disabled, |r| Telemetry::with_registry(r.clone()))
    };

    // Each worker keeps one long-lived SessionWorker (ADS + frame + scheduler
    // buffers) and resets it between runs instead of rebuilding — the warmed
    // scratch allocations survive every run the worker claims.
    let mut outcomes: Vec<Option<RunOutcome>> = Vec::new();
    outcomes.resize_with(runs, || None);
    // Spawning more workers than runs would only create idle threads (and,
    // under static chunking, the old `chunk.max(1)` misassigned seeds when
    // threads > runs); cap the worker count at the queue length.
    let workers = threads.min(runs);
    // Batched dispatch replaces the per-run execution engine itself, so it
    // engages even on the single-worker path (unlike the scheduling-only
    // modes, which all degenerate to a plain sequential loop there).
    if let DispatchMode::Batched { batch_size } = mode {
        let batch_size = batch_size.max(1);
        run_campaign_batched(
            campaign,
            batch_size,
            workers.max(1),
            &mut outcomes,
            &worker_telemetry,
        );
    } else if workers <= 1 {
        let tele = worker_telemetry(0);
        let mut session_worker = SessionWorker::new();
        for (i, slot) in outcomes.iter_mut().enumerate() {
            tele.emit(0.0, || TraceEvent::CampaignRunDispatched {
                index: i as u64,
            });
            *slot = Some(run_one(campaign, i as u64, &tele, &mut session_worker));
        }
    } else {
        match mode {
            DispatchMode::WorkStealing => {
                let next = AtomicU64::new(0);
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|worker| {
                            let tele = worker_telemetry(worker);
                            let next = &next;
                            scope.spawn(move |_| {
                                let mut session_worker = SessionWorker::new();
                                let mut claimed: Vec<(usize, RunOutcome)> = Vec::new();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    let Ok(i) = usize::try_from(i) else { break };
                                    if i >= runs {
                                        break;
                                    }
                                    tele.emit(0.0, || TraceEvent::CampaignRunDispatched {
                                        index: i as u64,
                                    });
                                    let outcome =
                                        run_one(campaign, i as u64, &tele, &mut session_worker);
                                    claimed.push((i, outcome));
                                }
                                claimed
                            })
                        })
                        .collect();
                    // Scatter each worker's claims back into seed order; the
                    // claim set is a partition of 0..runs, so every slot
                    // fills exactly once.
                    for handle in handles {
                        for (i, outcome) in handle.join().expect("campaign worker panicked") {
                            outcomes[i] = Some(outcome);
                        }
                    }
                })
                .expect("campaign scope panicked");
            }
            DispatchMode::StaticChunks => {
                let chunk = runs.div_ceil(workers);
                crossbeam::thread::scope(|scope| {
                    for (worker, slice) in outcomes.chunks_mut(chunk).enumerate() {
                        let tele = worker_telemetry(worker);
                        let start = worker * chunk;
                        scope.spawn(move |_| {
                            let mut session_worker = SessionWorker::new();
                            for (offset, slot) in slice.iter_mut().enumerate() {
                                let i = (start + offset) as u64;
                                tele.emit(0.0, || TraceEvent::CampaignRunDispatched { index: i });
                                *slot = Some(run_one(campaign, i, &tele, &mut session_worker));
                            }
                        });
                    }
                })
                .expect("campaign worker panicked");
            }
            DispatchMode::Batched { .. } => unreachable!("batched dispatch handled above"),
        }
    }

    let metrics = registries.split_first().map(|(first, rest)| {
        for r in rest {
            first.merge_from(r);
        }
        first.snapshot()
    });

    Ok(CampaignResult {
        name: campaign.name.clone(),
        scenario: campaign.scenario,
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("all runs filled"))
            .collect(),
        metrics,
    })
}

/// Executes the whole campaign through the lockstep batch engine. Workers
/// claim contiguous blocks of `batch_size` run indices off an atomic
/// counter (block-granular work stealing) and each block runs as one
/// lockstep batch; outcomes scatter back into seed order.
fn run_campaign_batched(
    campaign: &Campaign,
    batch_size: usize,
    workers: usize,
    outcomes: &mut [Option<RunOutcome>],
    worker_telemetry: &dyn Fn(usize) -> Telemetry,
) {
    let runs = outcomes.len();
    let blocks = runs.div_ceil(batch_size.max(1));
    let workers = workers.min(blocks.max(1));
    let run_block = |block: usize, tele: &Telemetry, pool: &mut crate::batch::LanePool| {
        let start = block * batch_size;
        let end = (start + batch_size).min(runs);
        let sessions: Vec<SimSession> = (start..end)
            .map(|i| {
                tele.emit(0.0, || TraceEvent::CampaignRunDispatched {
                    index: i as u64,
                });
                session_for(campaign, i as u64, tele)
            })
            .collect();
        (start, pool.run_batch(&sessions, tele))
    };
    if workers <= 1 {
        let tele = worker_telemetry(0);
        let mut pool = crate::batch::LanePool::new();
        for block in 0..blocks {
            let (start, batch_outcomes) = run_block(block, &tele, &mut pool);
            for (slot, outcome) in outcomes[start..].iter_mut().zip(batch_outcomes) {
                *slot = Some(outcome);
            }
        }
    } else {
        let next = AtomicU64::new(0);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let tele = worker_telemetry(worker);
                    let next = &next;
                    let run_block = &run_block;
                    scope.spawn(move |_| {
                        let mut pool = crate::batch::LanePool::new();
                        let mut claimed: Vec<(usize, Vec<RunOutcome>)> = Vec::new();
                        loop {
                            let block = next.fetch_add(1, Ordering::Relaxed);
                            let Ok(block) = usize::try_from(block) else {
                                break;
                            };
                            if block >= blocks {
                                break;
                            }
                            claimed.push(run_block(block, &tele, &mut pool));
                        }
                        claimed
                    })
                })
                .collect();
            // The claimed blocks partition 0..runs, so every slot fills once.
            for handle in handles {
                for (start, batch_outcomes) in handle.join().expect("campaign worker panicked") {
                    for (slot, outcome) in outcomes[start..].iter_mut().zip(batch_outcomes) {
                        *slot = Some(outcome);
                    }
                }
            }
        })
        .expect("campaign scope panicked");
    }
}

/// Builds the session for run `index` of the campaign.
fn session_for(campaign: &Campaign, index: u64, telemetry: &Telemetry) -> SimSession {
    let seed = campaign.base_seed + index;
    let mut config = match &campaign.spec {
        Some(spec) => RunConfig::generated(spec.clone(), seed),
        None => RunConfig::new(campaign.scenario, seed),
    };
    config = config.with_faults(campaign.faults.clone());
    SimSession::builder(campaign.scenario)
        .config(config)
        .attacker(campaign.attacker.clone())
        .telemetry(telemetry.clone())
        .build()
}

fn run_one(
    campaign: &Campaign,
    index: u64,
    telemetry: &Telemetry,
    worker: &mut SessionWorker,
) -> RunOutcome {
    session_for(campaign, index, telemetry).run_with(worker)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts that every run of `par` is bit-identical (digest equality)
    /// and in the same seed order as `seq`.
    fn assert_same_outcomes(seq: &CampaignResult, par: &CampaignResult, label: &str) {
        assert_eq!(seq.outcomes.len(), par.outcomes.len(), "{label}: run count");
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(a.seed, b.seed, "{label}: seed order");
            assert_eq!(
                a.record.digest(),
                b.record.digest(),
                "{label}: seed {}",
                a.seed
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let campaign = Campaign::new("test-golden", ScenarioId::Ds3, AttackerSpec::None, 4, 100);
        let seq = run_campaign_with_threads(&campaign, 1).unwrap();
        // Thread count must never affect results — including more workers
        // than runs and odd counts (uneven claim distribution).
        for threads in [1, 2, 3, 7, default_threads(), 16] {
            let par = run_campaign_with_threads(&campaign, threads).unwrap();
            assert_same_outcomes(&seq, &par, &format!("{threads} threads, stealing"));
            let chunked =
                run_campaign_dispatch(&campaign, threads, DispatchMode::StaticChunks).unwrap();
            assert_same_outcomes(&seq, &chunked, &format!("{threads} threads, chunked"));
        }
    }

    #[test]
    fn batched_dispatch_matches_sequential() {
        let campaign = Campaign::new("test-batched", ScenarioId::Ds3, AttackerSpec::None, 5, 100);
        let seq = run_campaign_with_threads(&campaign, 1).unwrap();
        // Batch sizes below, at, and above the run count; single- and
        // multi-worker block claiming.
        for batch_size in [1, 2, 5, 8] {
            for threads in [1, 3] {
                let batched =
                    run_campaign_dispatch(&campaign, threads, DispatchMode::Batched { batch_size })
                        .unwrap();
                assert_same_outcomes(
                    &seq,
                    &batched,
                    &format!("batch {batch_size}, {threads} threads"),
                );
            }
        }
    }

    #[test]
    fn faulted_campaign_is_thread_count_invariant() {
        let plan = av_faults::FaultPlan::single(av_faults::FaultSpec::always(
            av_faults::FaultKind::CameraFrameDrop { probability: 0.2 },
        ));
        let campaign =
            Campaign::new("faulted", ScenarioId::Ds1, AttackerSpec::None, 3, 500).with_faults(plan);
        let seq = run_campaign_with_threads(&campaign, 1).unwrap();
        assert!(
            seq.outcomes
                .iter()
                .any(|o| o.faults.camera_frames_dropped > 0),
            "the fault plan must actually fire"
        );
        let par = run_campaign_with_threads(&campaign, 8).unwrap();
        assert_same_outcomes(&seq, &par, "faulted, 8 threads");
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(a.faults, b.faults, "fault schedule, seed {}", a.seed);
        }
    }

    #[test]
    fn zero_runs_campaign_is_empty() {
        let campaign = Campaign::new("empty", ScenarioId::Ds1, AttackerSpec::None, 0, 0);
        for threads in [1, 4] {
            let result = run_campaign_with_threads(&campaign, threads).unwrap();
            assert!(result.outcomes.is_empty());
            assert_eq!(result.n_launched(), 0);
        }
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let campaign = Campaign::new("bad", ScenarioId::Ds1, AttackerSpec::None, 1, 0);
        assert_eq!(
            run_campaign_with_threads(&campaign, 0).unwrap_err(),
            CampaignError::ZeroThreads
        );
    }

    #[test]
    fn metrics_on_golden_campaign_are_zero() {
        let campaign = Campaign::new("golden", ScenarioId::Ds1, AttackerSpec::None, 3, 0);
        let result = run_campaign_with_threads(&campaign, 2).unwrap();
        assert_eq!(result.n_launched(), 0);
        assert_eq!(result.eb(), (0, 0.0));
        assert_eq!(result.crashes(), (0, 0.0));
    }
}
