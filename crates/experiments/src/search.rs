//! Coverage-guided boundary search over generated scenarios.
//!
//! The paper evaluates RoboTack on five fixed scenarios; this module asks
//! the harder question: *where in scenario space is the attacker most
//! effective?* Starting from the DS-1..5 specs (`av_scenarios::ds`), the
//! driver repeatedly mutates spec parameters ([`mutate()`](av_scenarios::mutate()))
//! and evaluates each candidate as a seeded campaign under one attack
//! vector, steering toward the attack-success / safety-violation boundary
//! with campaign outcomes as feedback.
//!
//! The search is a small MAP-elites-style loop:
//!
//! - **Outcome features.** Every evaluated candidate is projected onto a
//!   coarse grid over (EB rate, crash rate, median planned K). Cells are
//!   the coverage signal: a mutant landing in an empty cell is novel and
//!   becomes a parent even when its score is middling.
//! - **Novelty archive.** One incumbent per cell, displaced only by a
//!   strictly higher score (ties break on the lower content hash, so the
//!   archive is deterministic). Elites — archive entries ranked by score —
//!   parent the next generation.
//! - **Deterministic mutation schedule.** Generation `g` draws its mutants
//!   from `run_rng(base_seed + g, SEARCH_STREAM)`; candidate validity
//!   (spec-level [`av_scenarios::ScenarioSpec::validate`] plus world-level
//!   [`av_scenarios::world_invariants`] on the sampled world) is re-checked
//!   with bounded deterministic retries. The whole schedule is a pure
//!   function of the seed: reruns and different worker counts produce the
//!   identical frontier.
//! - **Batched evaluation.** Candidate campaigns execute through
//!   [`DispatchMode::Batched`] minibatches — the lockstep engine's
//!   bit-identity contract is what makes cached and fresh evaluations
//!   interchangeable.
//! - **Evaluation cache.** Each ⟨spec, vector, run shape, oracle⟩
//!   evaluation summary is content-addressed in the shared
//!   [`ArtifactStore`](av_suite::ArtifactStore) under [`NS_SEARCH_EVAL`], keyed by the spec's
//!   content hash. A rerun over a warm store replays the whole search from
//!   artifact hits without simulating anything.
//!
//! The five fixed scenarios are evaluated first (same vector, same run
//! shape) as the baseline frontier; the report states whether the search
//! discovered a generated scenario that beats every fixed scenario's EB
//! rate or crash rate.

use crate::campaign::{run_campaign_dispatch, Campaign, DispatchMode};
use crate::oracle_cache::{oracle_digest, OracleCache};
use crate::runner::{AttackerSpec, OracleSpec};
use crate::suite::{Args, ARMS};
use crate::train_sh::SweepConfig;
use av_scenarios::{ds, mutate, world_invariants, MutateConfig, ScenarioSpec};
use av_simkit::rng::run_rng;
use av_simkit::scenario::ScenarioId;
use av_suite::fnv::Fnv1a;
use robotack::vector::AttackVector;
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;

/// Version of the search evaluation semantics. Bump whenever candidate
/// evaluation or its summary encoding changes, so stale cached evaluations
/// miss instead of resurrecting results the current code would not produce.
pub const SEARCH_CODE_VERSION: u32 = 1;

/// Artifact-store namespace of cached candidate-evaluation summaries.
pub const NS_SEARCH_EVAL: &str = "search-eval";

/// Evaluation-summary file magic: "RoboTack Search Eval".
const EVAL_MAGIC: [u8; 4] = *b"RTSE";

/// RNG stream of the mutation schedule (disjoint from the scenario stream
/// `0xD5` and the attacker stream `0xA77ACC`).
const SEARCH_STREAM: u64 = 0x5EA6C4;

/// Bounded deterministic retries when a mutant fails validity.
const MUTATION_RETRIES: usize = 4;

/// Tuning of one boundary-search run.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The attack vector every candidate campaign runs under.
    pub vector: AttackVector,
    /// Mutation generations after the baseline round.
    pub generations: usize,
    /// Candidates proposed per generation.
    pub population: usize,
    /// Seeded runs per candidate campaign.
    pub runs: u64,
    /// Base seed: campaign seeds and the mutation schedule derive from it.
    pub base_seed: u64,
    /// Lockstep minibatch size for candidate campaigns
    /// ([`DispatchMode::Batched`]).
    pub batch: usize,
    /// Campaign worker threads (outcomes are thread-count invariant).
    pub threads: usize,
    /// Elite parents drawn from the archive per generation.
    pub elites: usize,
    /// The mutation step operator's tuning.
    pub mutate: MutateConfig,
}

impl SearchConfig {
    /// The standard search the suite's `search:*` jobs run for `vector`
    /// under the shared experiment options: a CI-sized smoke under
    /// `--quick`, a deeper sweep otherwise. Minibatch size follows
    /// `--batch` when given.
    pub fn for_args(vector: AttackVector, args: &Args) -> SearchConfig {
        let batch = match args.dispatch {
            DispatchMode::Batched { batch_size } => batch_size.max(1),
            _ => 8,
        };
        let (generations, population, runs) = if args.quick {
            (2, 8, args.runs.clamp(2, 8))
        } else {
            (4, 10, args.runs.clamp(8, 40))
        };
        SearchConfig {
            vector,
            generations,
            population,
            runs,
            base_seed: args.seed,
            batch,
            threads: crate::campaign::default_threads(),
            elites: 4,
            mutate: MutateConfig::default(),
        }
    }
}

/// One evaluated candidate: outcome statistics over its seeded campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Eval {
    /// Display label: `DS-n` for fixed scenarios, `GEN-⟨hash⟩` otherwise.
    pub label: String,
    /// The fixed scenario this candidate descends from.
    pub root: ScenarioId,
    /// Runs in which the attack launched (valid runs).
    pub launched: u64,
    /// Campaign size (seeded runs).
    pub runs: u64,
    /// Emergency-braking count over valid runs.
    pub eb: u64,
    /// Accident (crash) count over valid runs.
    pub crashes: u64,
    /// Median planned attack length K over valid runs.
    pub median_k: f64,
}

impl Eval {
    /// EB rate (%) over valid runs — the attack-success measure.
    pub fn eb_pct(&self) -> f64 {
        percentage(self.eb, self.launched)
    }

    /// Crash rate (%) over valid runs — the safety-violation measure.
    pub fn crash_pct(&self) -> f64 {
        percentage(self.crashes, self.launched)
    }

    /// Scalar search objective: attack success plus safety violation.
    pub fn score(&self) -> f64 {
        self.eb_pct() + self.crash_pct()
    }

    /// The outcome-feature cell this candidate occupies: deciles of EB and
    /// crash rate, plus a coarse median-K bucket.
    pub fn cell(&self) -> (u8, u8, u8) {
        let decile = |pct: f64| (pct / 10.0).floor().clamp(0.0, 10.0) as u8;
        let k_bucket = (self.median_k / 10.0).floor().clamp(0.0, 12.0) as u8;
        (decile(self.eb_pct()), decile(self.crash_pct()), k_bucket)
    }
}

fn percentage(n: u64, of: u64) -> f64 {
    if of == 0 {
        0.0
    } else {
        100.0 * n as f64 / of as f64
    }
}

/// One archive incumbent: the evaluation plus the spec that produced it.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The spec (fixed scenarios carry their DS spec re-expression).
    pub spec: Arc<ScenarioSpec>,
    /// Its content hash (the archive's deterministic tie-breaker).
    pub hash: u64,
    /// The campaign evaluation.
    pub eval: Eval,
}

/// The deterministic outcome of one boundary search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The configuration that produced this report.
    pub config: SearchConfig,
    /// The five fixed scenarios evaluated under the same vector/run shape.
    pub baselines: Vec<Eval>,
    /// The final novelty archive, ranked by (score desc, hash asc).
    pub frontier: Vec<Candidate>,
    /// Distinct outcome-feature cells covered (archive size).
    pub cells: usize,
    /// Candidates evaluated by campaign (baselines excluded).
    pub evaluated: usize,
    /// Mutants dropped after exhausting validity retries.
    pub skipped_invalid: usize,
    /// Mutants dropped as duplicates of already-seen content hashes.
    pub deduped: usize,
    /// Cached-evaluation hits / misses against the artifact store.
    pub eval_hits: u64,
    /// Cached-evaluation misses (every candidate that actually simulated).
    pub eval_misses: u64,
}

impl SearchReport {
    /// The best generated candidate (frontier is ranked, so index 0), if
    /// any mutant survived evaluation.
    pub fn best(&self) -> Option<&Candidate> {
        self.frontier.first()
    }

    /// Whether some generated scenario strictly exceeds **every** fixed
    /// scenario on EB rate, or strictly exceeds every fixed scenario on
    /// crash rate — the boundary-crossing acceptance criterion.
    pub fn beats_baselines(&self) -> bool {
        let max_eb = self
            .baselines
            .iter()
            .map(Eval::eb_pct)
            .fold(f64::MIN, f64::max);
        let max_crash = self
            .baselines
            .iter()
            .map(Eval::crash_pct)
            .fold(f64::MIN, f64::max);
        self.frontier
            .iter()
            .any(|c| c.eval.eb_pct() > max_eb || c.eval.crash_pct() > max_crash)
    }

    /// Renders the frontier report (deterministic bytes; CI diffs reruns).
    pub fn render(&self) -> String {
        let cfg = &self.config;
        let mut out = String::new();
        writeln!(
            out,
            "## Boundary search: {} ({} generations x {} candidates, {} runs/candidate, \
             batch {}, base seed {})\n",
            cfg.vector.name(),
            cfg.generations,
            cfg.population,
            cfg.runs,
            cfg.batch,
            cfg.base_seed
        )
        .unwrap();

        writeln!(out, "Fixed-scenario baselines (same vector, same seeds):\n").unwrap();
        writeln!(
            out,
            "| scenario | launched | EB % | crash % | median K | score |"
        )
        .unwrap();
        writeln!(out, "|---|---:|---:|---:|---:|---:|").unwrap();
        for b in &self.baselines {
            writeln!(
                out,
                "| {} | {}/{} | {:.1} | {:.1} | {:.0} | {:.1} |",
                b.label,
                b.launched,
                b.runs,
                b.eb_pct(),
                b.crash_pct(),
                b.median_k,
                b.score()
            )
            .unwrap();
        }

        writeln!(
            out,
            "\nFrontier (novelty archive over the EB x crash x K grid, best first):\n"
        )
        .unwrap();
        writeln!(
            out,
            "| candidate | root | launched | EB % | crash % | median K | score | knobs |"
        )
        .unwrap();
        writeln!(out, "|---|---|---:|---:|---:|---:|---:|---|").unwrap();
        for c in self.frontier.iter().take(8) {
            writeln!(
                out,
                "| {} | {} | {}/{} | {:.1} | {:.1} | {:.0} | {:.1} | {} |",
                c.eval.label,
                c.eval.root.name(),
                c.eval.launched,
                c.eval.runs,
                c.eval.eb_pct(),
                c.eval.crash_pct(),
                c.eval.median_k,
                c.eval.score(),
                knob_summary(&c.spec)
            )
            .unwrap();
        }

        // Deliberately no cache hit/miss counts here: those vary between
        // cold and warm stores, and this report must be byte-identical
        // across reruns (CI diffs it). Counters live on the struct.
        writeln!(
            out,
            "\ncoverage: {} cells | evaluated: {} candidates | skipped: {} invalid, \
             {} duplicate",
            self.cells, self.evaluated, self.skipped_invalid, self.deduped
        )
        .unwrap();
        writeln!(
            out,
            "beats every fixed baseline: {}",
            if self.beats_baselines() { "yes" } else { "no" }
        )
        .unwrap();
        out
    }
}

/// Compact per-spec knob line for the frontier table: ego cruise plus each
/// actor's nominal position/speed knobs.
fn knob_summary(spec: &ScenarioSpec) -> String {
    use av_scenarios::ActorTemplate as T;
    let mut parts = vec![format!("cruise={:.1}", spec.cruise_kph)];
    for t in &spec.actors {
        match t {
            T::Lead { x0, speed_kph, .. } => parts.push(format!(
                "lead(x={:.1},v={:.1})",
                x0.nominal(),
                speed_kph.nominal()
            )),
            T::Crossing { x0, walk, .. } => parts.push(format!(
                "cross(x={:.1},w={:.2})",
                x0.nominal(),
                walk.nominal()
            )),
            T::Parked { x0, .. } => parts.push(format!("parked(x={:.1})", x0.nominal())),
            T::Approaching { x0, walk, .. } => parts.push(format!(
                "approach(x={:.1},w={:.2})",
                x0.nominal(),
                walk.nominal()
            )),
            T::OncomingStream { x, speed_kph, .. } => parts.push(format!(
                "oncoming(x={:.1},v={:.1})",
                x.nominal(),
                speed_kph.nominal()
            )),
            T::Trailing { x0, speed_kph, .. } => parts.push(format!(
                "trail(x={:.1},v={:.1})",
                x0.nominal(),
                speed_kph.nominal()
            )),
            T::CutIn {
                x0,
                speed_kph,
                cut_x,
                ..
            } => parts.push(format!(
                "cutin(x={:.1},v={:.1},cut={:.1})",
                x0.nominal(),
                speed_kph.nominal(),
                cut_x.nominal()
            )),
        }
    }
    parts.join(" ")
}

/// The attacker oracle policy: Table II matrix arms use their trained NN
/// oracle (loaded or trained through `cache`, exactly like the report
/// jobs); off-matrix ⟨root, vector⟩ pairs use the closed-form kinematic
/// oracle rather than training new arms per candidate. The returned digest
/// keys the evaluation cache, so an oracle change can never resurrect a
/// stale evaluation.
fn oracle_policy(
    root: ScenarioId,
    vector: AttackVector,
    sweep: &SweepConfig,
    cache: &OracleCache,
) -> (OracleSpec, u64) {
    let in_matrix = ARMS.iter().any(|&(s, v, _)| s == root && v == vector);
    if in_matrix {
        if let Some(trained) = cache.oracle_for(root, vector, sweep) {
            let digest = oracle_digest(&trained);
            return (OracleSpec::Nn(trained.oracle), digest);
        }
    }
    (OracleSpec::Kinematic, 0)
}

/// The content address of one candidate evaluation: everything that
/// determines the summary bit-for-bit.
fn eval_key(spec_hash: u64, root: ScenarioId, cfg: &SearchConfig, oracle_key: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&EVAL_MAGIC);
    h.write_u64(u64::from(SEARCH_CODE_VERSION));
    h.write_u64(spec_hash);
    h.write(root.name().as_bytes());
    h.write(cfg.vector.name().as_bytes());
    h.write_u64(cfg.runs);
    h.write_u64(cfg.base_seed);
    h.write_u64(oracle_key);
    h.finish()
}

/// Serializes an evaluation summary (little-endian, key echo first).
fn encode_eval(key: u64, eval: &Eval) -> Vec<u8> {
    let mut out = Vec::with_capacity(56);
    out.extend_from_slice(&EVAL_MAGIC);
    out.extend_from_slice(&SEARCH_CODE_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&eval.launched.to_le_bytes());
    out.extend_from_slice(&eval.runs.to_le_bytes());
    out.extend_from_slice(&eval.eb.to_le_bytes());
    out.extend_from_slice(&eval.crashes.to_le_bytes());
    out.extend_from_slice(&eval.median_k.to_bits().to_le_bytes());
    out
}

/// Deserializes an evaluation summary; `None` on any structural mismatch
/// (hostile bytes degrade to a cache miss, never a panic).
fn decode_eval(key: u64, bytes: &[u8], label: &str, root: ScenarioId, runs: u64) -> Option<Eval> {
    if bytes.len() != 56 {
        return None;
    }
    let word =
        |i: usize| -> u64 { u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte slice")) };
    if bytes[..4] != EVAL_MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice")) != SEARCH_CODE_VERSION
        || word(8) != key
        || word(24) != runs
    {
        return None;
    }
    let (launched, eb, crashes) = (word(16), word(32), word(40));
    if launched > runs || eb > launched || crashes > launched {
        return None;
    }
    Some(Eval {
        label: label.to_string(),
        root,
        launched,
        runs,
        eb,
        crashes,
        median_k: f64::from_bits(word(48)),
    })
}

/// The search driver's store-backed evaluator with its own hit/miss
/// counters (surfaced in the report and the suite job scorecard).
struct Evaluator<'a> {
    cfg: &'a SearchConfig,
    cache: &'a OracleCache,
    oracle: OracleSpec,
    oracle_key: u64,
    hits: u64,
    misses: u64,
}

impl Evaluator<'_> {
    /// Evaluates one candidate: cached summary when the store already holds
    /// this exact evaluation, otherwise a seeded campaign through the
    /// lockstep batch engine (then stored).
    fn evaluate(&mut self, label: &str, root: ScenarioId, spec: Option<Arc<ScenarioSpec>>) -> Eval {
        let spec_hash = spec.as_ref().map_or(0, |s| s.content_hash());
        let key = eval_key(spec_hash, root, self.cfg, self.oracle_key);
        if let Ok(Some(bytes)) = self.cache.artifact_store().get(NS_SEARCH_EVAL, key) {
            if let Some(eval) = decode_eval(key, &bytes, label, root, self.cfg.runs) {
                self.hits += 1;
                return eval;
            }
        }
        self.misses += 1;

        let attacker = AttackerSpec::RoboTack {
            vector: Some(self.cfg.vector),
            oracle: self.oracle.clone(),
        };
        let campaign = match spec {
            Some(spec) => {
                Campaign::generated(label, spec, attacker, self.cfg.runs, self.cfg.base_seed)
            }
            None => Campaign::new(label, root, attacker, self.cfg.runs, self.cfg.base_seed),
        };
        let result = run_campaign_dispatch(
            &campaign,
            self.cfg.threads.max(1),
            DispatchMode::Batched {
                batch_size: self.cfg.batch.max(1),
            },
        )
        .expect("search evaluation threads >= 1");

        let eval = Eval {
            label: label.to_string(),
            root,
            launched: result.n_launched() as u64,
            runs: self.cfg.runs,
            eb: result.eb().0 as u64,
            crashes: result.crashes().0 as u64,
            median_k: result.median_k(),
        };
        self.cache
            .artifact_store()
            .put(NS_SEARCH_EVAL, key, &encode_eval(key, &eval));
        eval
    }
}

/// A mutant is admissible when its spec validates and the world it samples
/// at the campaign's first seed satisfies the world-level invariants.
fn is_valid(spec: &ScenarioSpec, base_seed: u64) -> bool {
    spec.validate().is_ok() && world_invariants(&spec.sample(base_seed)).is_ok()
}

/// Runs one coverage-guided boundary search. Deterministic: the report is
/// a pure function of `cfg` and the sweep/oracle configuration — reruns,
/// warm stores, and any worker count produce identical bytes.
pub fn run_search(cfg: &SearchConfig, sweep: &SweepConfig, cache: &OracleCache) -> SearchReport {
    let roots: [(ScenarioId, ScenarioSpec); 5] = [
        (ScenarioId::Ds1, ds::ds1()),
        (ScenarioId::Ds2, ds::ds2()),
        (ScenarioId::Ds3, ds::ds3()),
        (ScenarioId::Ds4, ds::ds4()),
        (ScenarioId::Ds5, ds::ds5()),
    ];

    // The archive: one incumbent per outcome-feature cell, displaced only
    // by a strictly better score (ties keep the lower content hash).
    let mut archive: BTreeMap<(u8, u8, u8), Candidate> = BTreeMap::new();
    let admit = |archive: &mut BTreeMap<(u8, u8, u8), Candidate>, candidate: Candidate| {
        let cell = candidate.eval.cell();
        let replaces = match archive.get(&cell) {
            None => true,
            Some(held) => {
                candidate.eval.score() > held.eval.score()
                    || (candidate.eval.score() == held.eval.score() && candidate.hash < held.hash)
            }
        };
        if replaces {
            archive.insert(cell, candidate);
        }
    };

    let mut baselines = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut evaluated = 0usize;
    let mut skipped_invalid = 0usize;
    let mut deduped = 0usize;
    let (mut eval_hits, mut eval_misses) = (0u64, 0u64);

    // Baseline round: the fixed scenarios under the same vector and run
    // shape, evaluated per root with that root's oracle policy. Their DS
    // spec re-expressions seed the archive (sampled worlds are
    // bit-identical to the fixed recipes, so the evaluations transfer).
    for (root, spec) in &roots {
        let (oracle, oracle_key) = oracle_policy(*root, cfg.vector, sweep, cache);
        let mut evaluator = Evaluator {
            cfg,
            cache,
            oracle,
            oracle_key,
            hits: 0,
            misses: 0,
        };
        let eval = evaluator.evaluate(root.name(), *root, None);
        eval_hits += evaluator.hits;
        eval_misses += evaluator.misses;

        let spec = Arc::new(spec.clone());
        seen.insert(spec.content_hash());
        admit(
            &mut archive,
            Candidate {
                hash: spec.content_hash(),
                spec,
                eval: eval.clone(),
            },
        );
        baselines.push(eval);
    }

    // Mutation generations: elites parent a fresh population; every mutant
    // is validity-checked, deduplicated, then evaluated under its root's
    // oracle policy.
    for generation in 0..cfg.generations {
        let elites: Vec<Candidate> = {
            let mut ranked: Vec<&Candidate> = archive.values().collect();
            ranked.sort_by(|a, b| {
                b.eval
                    .score()
                    .partial_cmp(&a.eval.score())
                    .expect("scores are finite")
                    .then(a.hash.cmp(&b.hash))
            });
            ranked
                .into_iter()
                .take(cfg.elites.max(1))
                .cloned()
                .collect()
        };
        let mut rng = run_rng(cfg.base_seed.wrapping_add(generation as u64), SEARCH_STREAM);

        for slot in 0..cfg.population {
            let parent = &elites[slot % elites.len()];
            let mut mutant = None;
            for _ in 0..=MUTATION_RETRIES {
                let proposal = mutate(&parent.spec, &mut rng, &cfg.mutate);
                if is_valid(&proposal, cfg.base_seed) {
                    mutant = Some(proposal);
                    break;
                }
            }
            let Some(mutant) = mutant else {
                skipped_invalid += 1;
                continue;
            };
            let hash = mutant.content_hash();
            if !seen.insert(hash) {
                deduped += 1;
                continue;
            }

            let root = parent.eval.root;
            let (oracle, oracle_key) = oracle_policy(root, cfg.vector, sweep, cache);
            let mut evaluator = Evaluator {
                cfg,
                cache,
                oracle,
                oracle_key,
                hits: 0,
                misses: 0,
            };
            let spec = Arc::new(mutant);
            let label = spec.scenario_id().label();
            let eval = evaluator.evaluate(&label, root, Some(spec.clone()));
            eval_hits += evaluator.hits;
            eval_misses += evaluator.misses;
            evaluated += 1;

            admit(&mut archive, Candidate { spec, hash, eval });
        }
    }

    // The frontier: generated candidates only (baseline incumbents are
    // reported separately), ranked by (score desc, hash asc).
    let mut frontier: Vec<Candidate> = archive
        .values()
        .filter(|c| c.eval.root.name() != c.eval.label)
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        b.eval
            .score()
            .partial_cmp(&a.eval.score())
            .expect("scores are finite")
            .then(a.hash.cmp(&b.hash))
    });

    SearchReport {
        config: cfg.clone(),
        baselines,
        frontier,
        cells: archive.len(),
        evaluated,
        skipped_invalid,
        deduped,
        eval_hits,
        eval_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(vector: AttackVector) -> SearchConfig {
        SearchConfig {
            vector,
            generations: 1,
            population: 3,
            runs: 2,
            base_seed: 7,
            batch: 2,
            threads: 2,
            elites: 2,
            mutate: MutateConfig::default(),
        }
    }

    #[test]
    fn eval_codec_round_trips_and_rejects_corruption() {
        let eval = Eval {
            label: "GEN-0000000000000001".into(),
            root: ScenarioId::Ds2,
            launched: 5,
            runs: 6,
            eb: 4,
            crashes: 3,
            median_k: 32.0,
        };
        let bytes = encode_eval(99, &eval);
        let back = decode_eval(99, &bytes, &eval.label, eval.root, 6).expect("round trip");
        assert_eq!(back, eval);
        assert!(
            decode_eval(98, &bytes, "x", ScenarioId::Ds2, 6).is_none(),
            "key echo"
        );
        assert!(
            decode_eval(99, &bytes, "x", ScenarioId::Ds2, 7).is_none(),
            "run shape"
        );
        assert!(
            decode_eval(99, &bytes[..40], "x", ScenarioId::Ds2, 6).is_none(),
            "truncated"
        );
        let mut hostile = bytes.clone();
        hostile[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(
            decode_eval(99, &hostile, "x", ScenarioId::Ds2, 6).is_none(),
            "launched > runs rejected"
        );
    }

    #[test]
    fn eval_key_separates_every_input() {
        let cfg = tiny_config(AttackVector::MoveOut);
        let k0 = eval_key(1, ScenarioId::Ds1, &cfg, 0);
        assert_ne!(k0, eval_key(2, ScenarioId::Ds1, &cfg, 0), "spec hash");
        assert_ne!(k0, eval_key(1, ScenarioId::Ds2, &cfg, 0), "root");
        assert_ne!(k0, eval_key(1, ScenarioId::Ds1, &cfg, 5), "oracle");
        let mut other = cfg.clone();
        other.runs += 1;
        assert_ne!(k0, eval_key(1, ScenarioId::Ds1, &other, 0), "runs");
        let mut other = cfg;
        other.base_seed += 1;
        assert_ne!(k0, eval_key(1, ScenarioId::Ds1, &other, 0), "seed");
    }

    #[test]
    fn cell_projection_is_sane() {
        let eval = Eval {
            label: "x".into(),
            root: ScenarioId::Ds1,
            launched: 10,
            runs: 10,
            eb: 10,
            crashes: 0,
            median_k: 47.0,
        };
        assert_eq!(eval.cell(), (10, 0, 4));
        assert_eq!((eval.eb_pct(), eval.crash_pct()), (100.0, 0.0));
    }

    /// The full driver is deterministic end to end: two fresh runs over
    /// independent cold stores produce byte-identical reports, and the warm
    /// rerun replays purely from evaluation-cache hits.
    #[test]
    fn search_is_deterministic_and_replays_from_warm_store() {
        let dir = std::env::temp_dir().join(format!("search-det-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = tiny_config(AttackVector::MoveOut);
        let sweep = SweepConfig::tiny();

        let cache_a = OracleCache::at(dir.join("a"));
        let cold = run_search(&cfg, &sweep, &cache_a);
        let cache_b = OracleCache::at(dir.join("b"));
        let other_cold = run_search(&cfg, &sweep, &cache_b);
        assert_eq!(
            cold.render(),
            other_cold.render(),
            "independent cold runs must render identical frontiers"
        );
        assert_eq!(cold.eval_hits, 0, "cold run cannot hit");

        let warm = run_search(&cfg, &sweep, &OracleCache::at(dir.join("a")));
        assert_eq!(warm.render(), cold.render(), "warm rerun is byte-identical");
        assert_eq!(warm.eval_misses, 0, "warm rerun simulates nothing");
        assert_eq!(
            warm.eval_hits,
            cold.eval_misses + cold.eval_hits,
            "every evaluation replays from the store"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}
