//! One end-to-end simulation run: world + sensors + attacker + ADS.
//!
//! The loop reproduces the paper's testbed timing (§V-B): the base physics
//! tick is 30 Hz; the camera fires at 15 Hz, LiDAR at 10 Hz, GPS/IMU at
//! 12.5 Hz and the planner at 10 Hz through the multi-rate scheduler. Every
//! camera frame passes through the attacker's man-in-the-middle hook before
//! the ADS sees it. Ground-truth safety (δ, target gap) is sampled at every
//! planning cycle, and the run halts on contact — the LGSVL behavior the
//! paper works around with its 4 m accident threshold.

use av_defense::ids::{Alarm, Ids, IdsConfig};
use av_faults::{FaultInjector, FaultPlan, FaultStats};
use av_perception::calibration::DetectorCalibration;
use av_planning::ads::{Ads, AdsConfig};
use av_planning::safety::{ground_truth_delta, SafetyConfig};
use av_sensing::camera::Camera;
use av_sensing::frame::capture;
use av_sensing::gps::GpsImu;
use av_sensing::lidar::Lidar;
use av_sensing::tap::{CameraTapVerdict, SensorTap};
use av_simkit::recorder::{Event, RunRecord, Sample};
use av_simkit::rng::run_rng;
use av_simkit::scenario::{Scenario, ScenarioId};
use av_simkit::units::{CAMERA_HZ, GPS_HZ, LIDAR_HZ, PLANNER_HZ, SIM_DT};
use rand::rngs::StdRng;
use robotack::baseline::{NoAttacker, RandomAttacker};
use robotack::malware::{Attacker, RoboTack, RoboTackConfig, TimingPolicy};
use robotack::safety_hijacker::{AttackFeatures, KinematicOracle, NnOracle, SafetyOracle};
use robotack::vector::AttackVector;
use std::sync::Arc;

/// Free-road horizon used when no obstacle is in path (m).
pub const HORIZON_M: f64 = 200.0;

/// The oracle driving the safety hijacker in a run.
#[derive(Debug, Clone)]
pub enum OracleSpec {
    /// Closed-form kinematic oracle (no training required).
    Kinematic,
    /// A trained per-vector neural oracle (shared across runs).
    Nn(Arc<NnOracle>),
}

impl SafetyOracle for OracleSpec {
    fn predict_delta(&self, features: &AttackFeatures, k: u32) -> f64 {
        match self {
            OracleSpec::Kinematic => KinematicOracle::default().predict_delta(features, k),
            OracleSpec::Nn(nn) => nn.predict_delta(features, k),
        }
    }
}

/// Which attacker rides along on this run.
#[derive(Debug, Clone)]
pub enum AttackerSpec {
    /// Golden run: no attacker.
    None,
    /// The Baseline-Random attacker (§VI-B).
    Random,
    /// Full RoboTack with the safety hijacker.
    RoboTack {
        /// Campaign vector (None = Table I heuristic).
        vector: Option<AttackVector>,
        /// The oracle to use.
        oracle: OracleSpec,
    },
    /// RoboTack without the safety hijacker ("R w/o SH"): scenario matcher +
    /// trajectory hijacker, random timing, K ∈ [15, 85].
    RoboTackNoSh {
        /// Campaign vector (None = Table I heuristic).
        vector: Option<AttackVector>,
    },
    /// Training-data collection: attack when δ crosses `delta_inject`, hold
    /// `k` frames (§IV-B).
    AtDelta {
        /// Campaign vector.
        vector: Option<AttackVector>,
        /// Launch threshold on δ (m).
        delta_inject: f64,
        /// Attack duration (frames).
        k: u32,
    },
}

/// Configuration of a single run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The driving scenario.
    pub scenario: ScenarioId,
    /// Run seed (world jitter, every noise source, attacker sampling).
    pub seed: u64,
    /// Detector noise calibration for both the ADS and the malware replica.
    pub calibration: DetectorCalibration,
    /// Safety model for ground-truth recording.
    pub safety: SafetyConfig,
    /// ADS fusion configuration (ablations sweep the registration delay).
    pub fusion: av_perception::fusion::FusionConfig,
    /// Fraction of the ±1σ noise gate the trajectory hijacker uses per
    /// frame (ablations sweep the stealth/speed trade-off).
    pub sigma_fraction: f64,
    /// Safety-hijacker thresholds (ablations sweep γ).
    pub sh: robotack::safety_hijacker::SafetyHijackerConfig,
    /// Sensor faults injected between capture and delivery. The empty plan
    /// is bit-transparent: the run is identical with or without it.
    pub faults: FaultPlan,
}

impl RunConfig {
    /// Standard configuration for a scenario + seed.
    pub fn new(scenario: ScenarioId, seed: u64) -> Self {
        RunConfig {
            scenario,
            seed,
            calibration: DetectorCalibration::paper(),
            safety: SafetyConfig::default(),
            fusion: av_perception::fusion::FusionConfig::default(),
            sigma_fraction: 1.0,
            sh: robotack::safety_hijacker::SafetyHijackerConfig::default(),
            faults: FaultPlan::none(),
        }
    }

    /// The same configuration with a fault plan attached.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Everything a campaign wants to know about one finished run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Scenario that was run.
    pub scenario: ScenarioId,
    /// Seed that was run.
    pub seed: u64,
    /// Full time-series record.
    pub record: RunRecord,
    /// Attacker bookkeeping.
    pub attack: robotack::malware::AttackStats,
    /// Ground-truth contact occurred (simulator halt).
    pub collided: bool,
    /// The paper's accident definition: min ground-truth δ after attack
    /// start < 4 m.
    pub accident: bool,
    /// Emergency braking entered at/after the attack started.
    pub eb_after_attack: bool,
    /// Any emergency braking during the run.
    pub eb_any: bool,
    /// Min ground-truth δ from attack start to run end (m).
    pub min_delta_post_attack: Option<f64>,
    /// Min ground-truth δ within the attack window plus a 3 s consequence
    /// tail (m) — the quantity the safety-hijacker NN predicts (`δ_{t+k}`).
    pub min_delta_attack_window: Option<f64>,
    /// Ground-truth δ w.r.t. the scripted target at attack end.
    pub target_delta_at_attack_end: Option<f64>,
    /// Minimum *perceived* in-path δ (from the ADS world model) since the
    /// attack started — the quantity a Move_In attack reduces (the real δ
    /// is untouched; the EV brakes for a phantom).
    pub min_perceived_delta_post_attack: Option<f64>,
    /// `K′` measured from the ADS world model (frames from attack start
    /// until the perceived target left/entered the lane or vanished).
    pub k_prime_ads: Option<u32>,
    /// Alarms raised by the onboard intrusion-detection system.
    pub ids_alarms: Vec<Alarm>,
    /// Simulated seconds executed.
    pub sim_seconds: f64,
    /// What the fault injector actually did (all zeros for an empty plan).
    pub faults: FaultStats,
    /// Camera frames the ADS perception rejected as stale (frozen feed).
    pub stale_frames: u64,
    /// Peak distance (m) between the malware replica's and the ADS's
    /// ego-relative estimate of the scripted target — the mirrored-replica
    /// divergence the resilience experiments measure. `None` when the
    /// attacker keeps no replica or the target was never co-visible.
    pub replica_divergence: Option<f64>,
}

impl AttackerSpec {
    /// Builds the per-run attacker.
    fn build(
        &self,
        scenario: &Scenario,
        config: &RunConfig,
        rng: &mut StdRng,
    ) -> Box<dyn Attacker> {
        let calibration = config.calibration;
        let mut rt_config = RoboTackConfig::default();
        rt_config.perception.calibration = calibration;
        rt_config.th.calibration = calibration;
        rt_config.th.sigma_fraction = config.sigma_fraction;
        rt_config.sh = config.sh;
        match self {
            AttackerSpec::None => Box::new(NoAttacker::new()),
            AttackerSpec::Random => {
                let horizon_frames = (scenario.duration * CAMERA_HZ) as u32;
                Box::new(RandomAttacker::new(rt_config.th, horizon_frames, rng))
            }
            AttackerSpec::RoboTack { vector, oracle } => {
                rt_config.vector_preference = *vector;
                rt_config.timing = TimingPolicy::SafetyHijacker;
                Box::new(RoboTack::new(rt_config, oracle.clone()))
            }
            AttackerSpec::RoboTackNoSh { vector } => {
                rt_config.vector_preference = *vector;
                let horizon_frames = (scenario.duration * CAMERA_HZ) as u32;
                rt_config.timing = TimingPolicy::RandomAfterMatch {
                    warmup: rng.random_range(0..horizon_frames.max(2) / 2),
                    k: rng.random_range(15..=85),
                };
                Box::new(RoboTack::new(rt_config, OracleSpec::Kinematic))
            }
            AttackerSpec::AtDelta {
                vector,
                delta_inject,
                k,
            } => {
                rt_config.vector_preference = *vector;
                rt_config.timing = TimingPolicy::AtDelta {
                    delta_inject: *delta_inject,
                    k: *k,
                };
                Box::new(RoboTack::new(rt_config, OracleSpec::Kinematic))
            }
        }
    }
}

/// Tracks when the ADS world model reflects the hijacked trajectory (the
/// Fig. 7 `K′` measurement).
fn k_prime_reached(vector: AttackVector, ads: &Ads, target_truth: av_simkit::math::Vec2) -> bool {
    let world = ads.world_model();
    let perceived = world
        .iter()
        .find(|o| o.provenance == Some(av_simkit::scenario::TARGET_ID));
    match vector {
        AttackVector::Disappear => {
            // Gone when nothing is published near the true position.
            !world
                .iter()
                .any(|o| o.position.distance(target_truth) < 3.0)
        }
        AttackVector::MoveOut => perceived
            .map(|o| (o.position.y - target_truth.y).abs() >= 1.6)
            .unwrap_or(true),
        AttackVector::MoveIn => perceived
            .map(|o| o.position.y.abs() <= 1.25)
            .unwrap_or(false),
    }
}

/// Executes one full simulation run.
pub fn run_once(config: &RunConfig, attacker_spec: &AttackerSpec) -> RunOutcome {
    let scenario = Scenario::build(config.scenario, config.seed);
    let mut rng = run_rng(config.seed, 0xA77ACC);
    let mut attacker = attacker_spec.build(&scenario, config, &mut rng);
    // The injector draws from its own seeded stream, so the main run RNG
    // sequence is identical whether or not faults fire.
    let mut tap = FaultInjector::new(config.faults.clone(), config.seed);

    let mut ads_config = AdsConfig::default();
    ads_config.perception.calibration = config.calibration;
    ads_config.perception.fusion = config.fusion;
    ads_config.planner.cruise_speed = scenario.cruise_speed;
    let mut ads = Ads::new(ads_config);

    let camera = Camera::default();
    let lidar = Lidar::default();
    let gps = GpsImu::default();

    let mut ids = Ids::new(IdsConfig {
        calibration: config.calibration,
        ..IdsConfig::default()
    });

    let mut scheduler = av_simkit::scheduler::Scheduler::new();
    let task_gps = scheduler.add_task_hz("gps", GPS_HZ);
    let task_camera = scheduler.add_task_hz("camera", CAMERA_HZ);
    let task_lidar = scheduler.add_task_hz("lidar", LIDAR_HZ);
    let task_planner = scheduler.add_task_hz("planner", PLANNER_HZ);

    let mut world = scenario.world.clone();
    let mut record = RunRecord::new();
    let mut seq: u64 = 0;
    let mut collided = false;
    let mut attack_seen = false;
    let mut k_prime_ads: Option<u32> = None;
    let mut frames_since_launch: u32 = 0;
    let mut target_delta_at_attack_end = None;
    let mut min_perceived_delta: Option<f64> = None;
    let mut replica_divergence: Option<f64> = None;
    // Rolling window so one-tick phantom dips don't pollute the minimum.
    let mut perceived_window: [f64; 3] = [f64::INFINITY; 3];
    let mut perceived_idx = 0usize;

    let steps = (scenario.duration / SIM_DT).ceil() as u64;
    for _ in 0..steps {
        for task in scheduler.advance_to(world.time_us()) {
            if task == task_gps {
                let mut fix = gps.fix(&world, &mut rng);
                tap.on_gps(&mut fix);
                ads.on_gps(fix);
            } else if task == task_camera {
                let mut frame = capture(&camera, &world, seq, false);
                seq += 1;
                // Faults act on the sensor side of the E/E network: a
                // dropped frame never reaches the attacker's MITM hook, and
                // a rewritten frame is what the malware replica sees too.
                if tap.on_camera(&mut frame) == CameraTapVerdict::Drop {
                    continue;
                }
                attacker.process_frame(&mut frame, world.ego().speed, &mut rng);
                ads.on_camera_frame(&frame, &mut rng);
                ids.on_camera(world.time(), ads.perception().last_detections());

                // Attack bookkeeping at camera rate.
                let stats = attacker.stats();
                if let Some(t0) = stats.launched_at {
                    if !attack_seen {
                        attack_seen = true;
                        record.push_event(t0, Event::AttackStarted);
                    }
                    frames_since_launch += 1;
                    if k_prime_ads.is_none() {
                        if let (Some(vector), Some(target)) = (stats.vector, stats.target) {
                            if let Some(truth) = world.actor(target) {
                                if k_prime_reached(vector, &ads, truth.pose.position) {
                                    k_prime_ads = Some(frames_since_launch);
                                }
                            }
                        }
                    }
                    // Label for the SH training set: δ w.r.t. the target at
                    // the frame the attack window closes.
                    if target_delta_at_attack_end.is_none() && stats.frames_perturbed >= stats.k {
                        record.push_event(world.time(), Event::AttackEnded);
                        target_delta_at_attack_end = av_planning::safety::target_delta(
                            &config.safety,
                            &world,
                            scenario.target,
                        );
                    }
                }
            } else if task == task_lidar {
                let mut scan = lidar.scan(&world, &mut rng);
                if tap.on_lidar(&mut scan) {
                    ads.on_lidar(&scan);
                    ids.on_lidar(world.time(), &scan, &ads.world_model());
                }
            } else if task == task_planner {
                let entered_eb = ads.plan_tick_at(world.time());
                // Mirrored-replica divergence: both models estimate the
                // scripted target ego-relative; track the worst disagreement.
                if let Some(replica) = attacker.replica_world() {
                    let ego = ads.ego_position();
                    let ads_rel = ads
                        .world_model()
                        .iter()
                        .find(|o| o.provenance == Some(av_simkit::scenario::TARGET_ID))
                        .map(|o| o.position - ego);
                    let rep_rel = replica
                        .iter()
                        .find(|o| o.provenance == Some(av_simkit::scenario::TARGET_ID))
                        .map(|o| o.position);
                    if let (Some(a), Some(r)) = (ads_rel, rep_rel) {
                        let d = a.distance(r);
                        replica_divergence = Some(replica_divergence.map_or(d, |m: f64| m.max(d)));
                    }
                }
                if entered_eb {
                    record.push_event(world.time(), Event::EmergencyBrake);
                }
                if attack_seen {
                    let d = perceived_in_path_delta(&ads, &config.safety).unwrap_or(f64::INFINITY);
                    perceived_window[perceived_idx % 3] = d;
                    perceived_idx += 1;
                    if perceived_idx >= 3 {
                        // A dip only counts if it persisted 3 planner ticks.
                        let sustained = perceived_window.iter().copied().fold(f64::MIN, f64::max);
                        if sustained.is_finite() {
                            min_perceived_delta = Some(
                                min_perceived_delta.map_or(sustained, |m: f64| m.min(sustained)),
                            );
                        }
                    }
                }
                let (delta, _) = ground_truth_delta(&config.safety, &world, HORIZON_M);
                let target_gap = world
                    .separation_to_ego(scenario.target)
                    .unwrap_or(f64::INFINITY);
                record.push_sample(Sample {
                    t: world.time(),
                    ego_speed: world.ego().speed,
                    ego_accel: ads.plan().accel,
                    delta,
                    target_gap,
                    attack_active: attacker.attacking(),
                    emergency_braking: ads.emergency_braking(),
                });
            }
        }

        let accel = ads.control_tick(SIM_DT);
        world.step(SIM_DT, accel);

        // Contact halt (the LGSVL behavior): bumper-to-bumper contact with
        // an in-path obstacle.
        if let Some(o) = world.in_path_obstacle(0.0) {
            if o.gap <= 0.05 && o.closing_speed > -0.1 {
                record.push_event(world.time(), Event::Collision);
                collided = true;
                break;
            }
        }
    }

    // If the attack window never closed (run ended first), take the label at
    // the end of the run.
    let stats = *attacker.stats();
    if stats.launched_at.is_some() && target_delta_at_attack_end.is_none() {
        target_delta_at_attack_end =
            av_planning::safety::target_delta(&config.safety, &world, scenario.target);
    }

    let min_delta_post_attack = stats.launched_at.and_then(|t0| record.min_delta_since(t0));
    let attack_end_t = record
        .first_event(Event::AttackEnded)
        .unwrap_or(world.time());
    let min_delta_attack_window = stats.launched_at.map(|t0| {
        record
            .samples
            .iter()
            .filter(|s| s.t >= t0 && s.t <= attack_end_t + 3.0)
            .map(|s| s.delta)
            .fold(f64::INFINITY, f64::min)
    });
    let accident = collided || min_delta_post_attack.is_some_and(|d| config.safety.is_accident(d));
    let eb_after_attack = stats.launched_at.is_some_and(|t0| {
        record
            .events
            .iter()
            .any(|(t, e)| *e == Event::EmergencyBrake && *t >= t0 - 1e-9)
    });
    let eb_any = record.has_event(Event::EmergencyBrake);

    RunOutcome {
        scenario: config.scenario,
        seed: config.seed,
        sim_seconds: world.time(),
        record,
        attack: stats,
        collided,
        accident,
        eb_after_attack,
        eb_any,
        min_delta_post_attack,
        min_delta_attack_window,
        target_delta_at_attack_end,
        min_perceived_delta_post_attack: min_perceived_delta,
        k_prime_ads,
        ids_alarms: ids.alarms().to_vec(),
        faults: *tap.stats(),
        stale_frames: ads.perception().stale_frames(),
        replica_divergence,
    }
}

/// The EV's perceived in-path safety potential: nearest world-model object
/// overlapping the ego corridor, minus the stopping distance.
fn perceived_in_path_delta(ads: &Ads, safety: &SafetyConfig) -> Option<f64> {
    let ego = ads.ego_position();
    let v = ads.ego_speed();
    let ego_front = ego.x + 2.3;
    let (cy0, cy1) = (ego.y - 1.25, ego.y + 1.25);
    ads.world_model()
        .iter()
        .filter_map(|o| {
            let (oy0, oy1) = o.lateral_extent();
            if av_simkit::math::interval_overlap(cy0, cy1, oy0, oy1) <= 0.0 {
                return None;
            }
            let (ox0, ox1) = o.longitudinal_extent();
            if ox1 < ego_front {
                return None;
            }
            Some((ox0 - ego_front).max(0.0))
        })
        .fold(None, |acc: Option<f64>, g| {
            Some(acc.map_or(g, |a| a.min(g)))
        })
        .map(|gap| safety.delta(gap, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_ds1_is_safe() {
        let out = run_once(&RunConfig::new(ScenarioId::Ds1, 3), &AttackerSpec::None);
        assert!(!out.collided, "golden DS-1 must not collide");
        assert!(!out.eb_any, "golden DS-1 must not emergency brake");
        assert!(out.attack.launched_at.is_none());
        assert!(out.record.samples.len() > 100);
    }

    #[test]
    fn golden_ds2_stops_for_pedestrian() {
        let out = run_once(&RunConfig::new(ScenarioId::Ds2, 3), &AttackerSpec::None);
        assert!(!out.collided, "golden DS-2 must not hit the pedestrian");
        // The EV must have actually slowed down substantially at some point.
        let min_speed = out
            .record
            .samples
            .iter()
            .map(|s| s.ego_speed)
            .fold(f64::INFINITY, f64::min);
        assert!(min_speed < 2.0, "EV braked for the pedestrian: {min_speed}");
    }

    #[test]
    fn golden_ds3_passes_parked_car() {
        let out = run_once(&RunConfig::new(ScenarioId::Ds3, 3), &AttackerSpec::None);
        assert!(!out.collided);
        assert!(!out.eb_any, "parked car out of lane must not trigger EB");
        // Maintains cruise: mean speed close to 45 kph.
        let speeds: Vec<f64> = out.record.samples.iter().map(|s| s.ego_speed).collect();
        assert!(crate::stats::mean(&speeds) > 10.0, "kept moving");
    }

    #[test]
    fn golden_runs_are_reproducible() {
        let a = run_once(&RunConfig::new(ScenarioId::Ds1, 7), &AttackerSpec::None);
        let b = run_once(&RunConfig::new(ScenarioId::Ds1, 7), &AttackerSpec::None);
        assert_eq!(a.record.samples.len(), b.record.samples.len());
        let last_a = a.record.samples.last().unwrap();
        let last_b = b.record.samples.last().unwrap();
        assert_eq!(last_a.ego_speed, last_b.ego_speed);
        assert_eq!(last_a.delta, last_b.delta);
    }

    #[test]
    fn kinematic_robotack_attacks_ds1() {
        let out = run_once(
            &RunConfig::new(ScenarioId::Ds1, 11),
            &AttackerSpec::RoboTack {
                vector: Some(AttackVector::MoveOut),
                oracle: OracleSpec::Kinematic,
            },
        );
        assert!(out.attack.launched_at.is_some(), "attack launched");
        assert!(out.min_delta_post_attack.is_some());
    }
}
