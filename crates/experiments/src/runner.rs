//! Run-level types: configuration, attacker spec, outcome.
//!
//! The simulation loop itself lives in [`crate::session`]; construct a
//! [`crate::session::SimSession`] via its builder — it is the only entry
//! point for executing a run.

use av_defense::ids::Alarm;
use av_faults::{FaultPlan, FaultStats};
use av_perception::calibration::DetectorCalibration;
use av_planning::safety::SafetyConfig;
use av_simkit::recorder::RunRecord;
use av_simkit::scenario::{Scenario, ScenarioId};
use av_simkit::units::CAMERA_HZ;
use rand::rngs::StdRng;
use robotack::baseline::{NoAttacker, RandomAttacker};
use robotack::malware::{Attacker, RoboTack, RoboTackConfig, TimingPolicy};
use robotack::safety_hijacker::{AttackFeatures, KinematicOracle, NnOracle, SafetyOracle};
use robotack::vector::AttackVector;
use std::sync::Arc;

/// Free-road horizon used when no obstacle is in path (m).
pub const HORIZON_M: f64 = 200.0;

/// The oracle driving the safety hijacker in a run.
#[derive(Debug, Clone)]
pub enum OracleSpec {
    /// Closed-form kinematic oracle (no training required).
    Kinematic,
    /// A trained per-vector neural oracle (shared across runs).
    Nn(Arc<NnOracle>),
}

impl SafetyOracle for OracleSpec {
    fn predict_delta(&self, features: &AttackFeatures, k: u32) -> f64 {
        match self {
            OracleSpec::Kinematic => KinematicOracle::default().predict_delta(features, k),
            OracleSpec::Nn(nn) => nn.predict_delta(features, k),
        }
    }
}

/// Which attacker rides along on this run.
#[derive(Debug, Clone)]
pub enum AttackerSpec {
    /// Golden run: no attacker.
    None,
    /// The Baseline-Random attacker (§VI-B).
    Random,
    /// Full RoboTack with the safety hijacker.
    RoboTack {
        /// Campaign vector (None = Table I heuristic).
        vector: Option<AttackVector>,
        /// The oracle to use.
        oracle: OracleSpec,
    },
    /// RoboTack without the safety hijacker ("R w/o SH"): scenario matcher +
    /// trajectory hijacker, random timing, K ∈ [15, 85].
    RoboTackNoSh {
        /// Campaign vector (None = Table I heuristic).
        vector: Option<AttackVector>,
    },
    /// Training-data collection: attack when δ crosses `delta_inject`, hold
    /// `k` frames (§IV-B).
    AtDelta {
        /// Campaign vector.
        vector: Option<AttackVector>,
        /// Launch threshold on δ (m).
        delta_inject: f64,
        /// Attack duration (frames).
        k: u32,
    },
}

/// Configuration of a single run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The driving scenario.
    pub scenario: ScenarioId,
    /// For generated scenarios ([`ScenarioId::Gen`]): the spec the world is
    /// sampled from, carried out of band because a `Gen` id is a content
    /// hash, not a build recipe. `None` for the fixed DS-1..5 scenarios,
    /// whose recipes live in [`Scenario::build`]. Sampling draws from the
    /// same seeded RNG stream `build` uses, so fixed scenarios expressed as
    /// specs replay bit-identically either way.
    pub spec: Option<Arc<av_scenarios::ScenarioSpec>>,
    /// Run seed (world jitter, every noise source, attacker sampling).
    pub seed: u64,
    /// Detector noise calibration for both the ADS and the malware replica.
    pub calibration: DetectorCalibration,
    /// Safety model for ground-truth recording.
    pub safety: SafetyConfig,
    /// ADS fusion configuration (ablations sweep the registration delay).
    pub fusion: av_perception::fusion::FusionConfig,
    /// Fraction of the ±1σ noise gate the trajectory hijacker uses per
    /// frame (ablations sweep the stealth/speed trade-off).
    pub sigma_fraction: f64,
    /// Safety-hijacker thresholds (ablations sweep γ).
    pub sh: robotack::safety_hijacker::SafetyHijackerConfig,
    /// Sensor faults injected between capture and delivery. The empty plan
    /// is bit-transparent: the run is identical with or without it.
    pub faults: FaultPlan,
}

impl RunConfig {
    /// Standard configuration for a scenario + seed.
    pub fn new(scenario: ScenarioId, seed: u64) -> Self {
        RunConfig {
            scenario,
            spec: None,
            seed,
            calibration: DetectorCalibration::paper(),
            safety: SafetyConfig::default(),
            fusion: av_perception::fusion::FusionConfig::default(),
            sigma_fraction: 1.0,
            sh: robotack::safety_hijacker::SafetyHijackerConfig::default(),
            faults: FaultPlan::none(),
        }
    }

    /// Standard configuration for a generated scenario: the run carries the
    /// spec and is identified by [`av_scenarios::ScenarioSpec::scenario_id`]
    /// (the spec's content hash).
    pub fn generated(spec: Arc<av_scenarios::ScenarioSpec>, seed: u64) -> Self {
        let mut config = RunConfig::new(spec.scenario_id(), seed);
        config.spec = Some(spec);
        config
    }

    /// Builds the run's scenario world: sampled from the carried spec when
    /// one is present, otherwise via the fixed recipe in [`Scenario::build`].
    pub fn build_scenario(&self) -> Scenario {
        match &self.spec {
            Some(spec) => spec.sample(self.seed),
            None => Scenario::build(self.scenario, self.seed),
        }
    }

    /// The same configuration with a fault plan attached.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Everything a campaign wants to know about one finished run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Scenario that was run.
    pub scenario: ScenarioId,
    /// Seed that was run.
    pub seed: u64,
    /// Full time-series record.
    pub record: RunRecord,
    /// Attacker bookkeeping.
    pub attack: robotack::malware::AttackStats,
    /// Ground-truth contact occurred (simulator halt).
    pub collided: bool,
    /// The paper's accident definition: min ground-truth δ after attack
    /// start < 4 m.
    pub accident: bool,
    /// Emergency braking entered at/after the attack started.
    pub eb_after_attack: bool,
    /// Any emergency braking during the run.
    pub eb_any: bool,
    /// Min ground-truth δ from attack start to run end (m).
    pub min_delta_post_attack: Option<f64>,
    /// Min ground-truth δ within the attack window plus a 3 s consequence
    /// tail (m) — the quantity the safety-hijacker NN predicts (`δ_{t+k}`).
    pub min_delta_attack_window: Option<f64>,
    /// Ground-truth δ w.r.t. the scripted target at attack end.
    pub target_delta_at_attack_end: Option<f64>,
    /// Minimum *perceived* in-path δ (from the ADS world model) since the
    /// attack started — the quantity a Move_In attack reduces (the real δ
    /// is untouched; the EV brakes for a phantom).
    pub min_perceived_delta_post_attack: Option<f64>,
    /// `K′` measured from the ADS world model (frames from attack start
    /// until the perceived target left/entered the lane or vanished).
    pub k_prime_ads: Option<u32>,
    /// Alarms raised by the onboard intrusion-detection system.
    pub ids_alarms: Vec<Alarm>,
    /// Simulated seconds executed.
    pub sim_seconds: f64,
    /// What the fault injector actually did (all zeros for an empty plan).
    pub faults: FaultStats,
    /// Camera frames the ADS perception rejected as stale (frozen feed).
    pub stale_frames: u64,
    /// Peak distance (m) between the malware replica's and the ADS's
    /// ego-relative estimate of the scripted target — the mirrored-replica
    /// divergence the resilience experiments measure. `None` when the
    /// attacker keeps no replica or the target was never co-visible.
    pub replica_divergence: Option<f64>,
}

impl AttackerSpec {
    /// Builds the per-run attacker.
    pub(crate) fn build(
        &self,
        scenario: &Scenario,
        config: &RunConfig,
        rng: &mut StdRng,
    ) -> Box<dyn Attacker> {
        let calibration = config.calibration;
        let mut rt_config = RoboTackConfig::default();
        rt_config.perception.calibration = calibration;
        rt_config.th.calibration = calibration;
        rt_config.th.sigma_fraction = config.sigma_fraction;
        rt_config.sh = config.sh;
        match self {
            AttackerSpec::None => Box::new(NoAttacker::new()),
            AttackerSpec::Random => {
                let horizon_frames = (scenario.duration * CAMERA_HZ) as u32;
                Box::new(RandomAttacker::new(rt_config.th, horizon_frames, rng))
            }
            AttackerSpec::RoboTack { vector, oracle } => {
                rt_config.vector_preference = *vector;
                rt_config.timing = TimingPolicy::SafetyHijacker;
                Box::new(RoboTack::new(rt_config, oracle.clone()))
            }
            AttackerSpec::RoboTackNoSh { vector } => {
                rt_config.vector_preference = *vector;
                let horizon_frames = (scenario.duration * CAMERA_HZ) as u32;
                rt_config.timing = TimingPolicy::RandomAfterMatch {
                    warmup: rng.random_range(0..horizon_frames.max(2) / 2),
                    k: rng.random_range(15..=85),
                };
                Box::new(RoboTack::new(rt_config, OracleSpec::Kinematic))
            }
            AttackerSpec::AtDelta {
                vector,
                delta_inject,
                k,
            } => {
                rt_config.vector_preference = *vector;
                rt_config.timing = TimingPolicy::AtDelta {
                    delta_inject: *delta_inject,
                    k: *k,
                };
                Box::new(RoboTack::new(rt_config, OracleSpec::Kinematic))
            }
        }
    }
}
