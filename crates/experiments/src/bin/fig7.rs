//! Regenerates Fig. 7: time-steps K′ needed to move the perceived object
//! in/out by Ω, on vehicles (DS-1/DS-3) and pedestrians (DS-2/DS-4).
//!
//! Thin wrapper over [`av_experiments::jobs::fig7`] — the `suite`
//! orchestrator runs the same function, so its stdout is byte-identical.

use av_experiments::jobs;
use av_experiments::suite::Args;

fn main() {
    let args = Args::parse();
    let cache = args.oracle_cache();
    print!("{}", jobs::fig7(&args, &cache));
}
