//! Regenerates Fig. 7: time-steps K′ needed to move the perceived object
//! in/out by Ω, on vehicles (DS-1/DS-3) and pedestrians (DS-2/DS-4).

use av_experiments::report::render_fig7_panel;
use av_experiments::suite::{oracle_for, report_cache, run_r_campaign, Args};
use av_simkit::scenario::ScenarioId;
use robotack::vector::AttackVector;

fn main() {
    let args = Args::parse();
    let sweep = args.sweep();
    let cache = args.oracle_cache();
    let run = |scenario, vector, name: &str| {
        eprintln!("campaign {name} ...");
        let (oracle, _) = oracle_for(scenario, vector, &sweep, &cache);
        run_r_campaign(name, scenario, vector, oracle, args.runs, args.seed).k_primes()
    };
    let veh = [
        (
            "Disappear",
            run(ScenarioId::Ds1, AttackVector::Disappear, "DS-1-Disappear"),
            13.0,
        ),
        (
            "Move_Out",
            run(ScenarioId::Ds1, AttackVector::MoveOut, "DS-1-Move_Out"),
            6.0,
        ),
        (
            "Move_In",
            run(ScenarioId::Ds3, AttackVector::MoveIn, "DS-3-Move_In"),
            10.0,
        ),
    ];
    let ped = [
        (
            "Disappear",
            run(ScenarioId::Ds2, AttackVector::Disappear, "DS-2-Disappear"),
            4.0,
        ),
        (
            "Move_Out",
            run(ScenarioId::Ds2, AttackVector::MoveOut, "DS-2-Move_Out"),
            5.0,
        ),
        (
            "Move_In",
            run(ScenarioId::Ds4, AttackVector::MoveIn, "DS-4-Move_In"),
            3.0,
        ),
    ];
    println!("Fig. 7: K′ (frames) to move the perceived object by Ω\n");
    println!(
        "{}",
        render_fig7_panel("(a) on vehicles (DS-1, DS-3)", &veh)
    );
    println!(
        "{}",
        render_fig7_panel("(b) on pedestrians (DS-2, DS-4)", &ped)
    );
    report_cache(&cache);
}
