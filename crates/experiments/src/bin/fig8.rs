//! Regenerates Fig. 8: safety-hijacker NN quality — (a) attack success
//! probability vs binned prediction error; (b) predicted vs ground-truth δ
//! after k attacked frames (DS-1 Move_Out).
//!
//! Thin wrapper over [`av_experiments::jobs::fig8`] — the `suite`
//! orchestrator runs the same function, so its stdout is byte-identical.

use av_experiments::jobs;
use av_experiments::suite::Args;

fn main() {
    let args = Args::parse();
    let cache = args.oracle_cache();
    print!("{}", jobs::fig8(&args, &cache));
}
