//! Regenerates Fig. 8: safety-hijacker NN quality — (a) attack success
//! probability vs binned prediction error; (b) predicted vs ground-truth δ
//! after k attacked frames (DS-1 Move_Out).

use av_experiments::prelude::*;
use av_experiments::report::{render_fig8a, render_fig8b};
use av_experiments::suite::{oracle_for, report_cache, run_r_campaign, Args};
use robotack::safety_hijacker::SafetyOracle;

fn main() {
    let args = Args::parse();
    let sweep = args.sweep();
    let cache = args.oracle_cache();

    // Panel (a): per-run |predicted δ − realized min δ| vs success.
    eprintln!("training DS-1 / DS-2 Move_Out oracles ...");
    let (oracle_ds1, desc1) = oracle_for(ScenarioId::Ds1, AttackVector::MoveOut, &sweep, &cache);
    eprintln!("  DS-1: {desc1}");
    let (oracle_ds2, desc2) = oracle_for(ScenarioId::Ds2, AttackVector::MoveOut, &sweep, &cache);
    eprintln!("  DS-2: {desc2}");
    report_cache(&cache);
    let mut samples: Vec<(f64, bool)> = Vec::new();
    for (scenario, oracle) in [
        (ScenarioId::Ds1, oracle_ds1.clone()),
        (ScenarioId::Ds2, oracle_ds2),
    ] {
        let result = run_r_campaign(
            "fig8a",
            scenario,
            AttackVector::MoveOut,
            oracle,
            args.runs,
            args.seed,
        );
        for outcome in result.launched() {
            if let (Some(pred), Some(actual)) = (
                outcome.attack.predicted_delta,
                outcome.min_delta_attack_window,
            ) {
                // One-sided error: how much the attack under-delivered
                // (did worse, i.e. left a larger δ, than the NN promised).
                samples.push(((actual - pred).max(0.0), outcome.accident));
            }
        }
    }
    // The paper's bin edges: 0.67 m steps up to 6.7 m.
    let mut bins = Vec::new();
    for i in 1..=10 {
        let upper = 0.67 * f64::from(i);
        let lower = upper - 0.67;
        let in_bin: Vec<&(f64, bool)> = samples
            .iter()
            .filter(|(e, _)| *e >= lower && *e < upper)
            .collect();
        if !in_bin.is_empty() {
            let p = in_bin.iter().filter(|(_, s)| *s).count() as f64 / in_bin.len() as f64;
            bins.push((upper, p, in_bin.len()));
        }
    }
    println!("{}", render_fig8a(&bins));

    // Panel (b): δ0 ≈ 41 m, sweep k, compare prediction to ground truth.
    let delta0 = 41.0;
    let ks: Vec<u32> = if args.quick {
        vec![20, 50, 80]
    } else {
        vec![10, 20, 30, 40, 50, 60, 70, 80, 90]
    };
    let mut rows = Vec::new();
    for k in ks {
        let outcome = SimSession::builder(ScenarioId::Ds1)
            .seed(args.seed + u64::from(k))
            .attacker(AttackerSpec::AtDelta {
                vector: Some(AttackVector::MoveOut),
                delta_inject: delta0,
                k,
            })
            .build()
            .run();
        if let (Some(features), Some(actual)) = (
            outcome.attack.features_at_launch,
            outcome.min_delta_attack_window,
        ) {
            let predicted = match &oracle_ds1 {
                OracleSpec::Nn(nn) => nn.predict_delta(&features, k),
                OracleSpec::Kinematic => robotack::safety_hijacker::KinematicOracle::default()
                    .predict_delta(&features, k),
            };
            rows.push((k, predicted, actual));
        }
    }
    println!("{}", render_fig8b(&rows, delta0));
}
