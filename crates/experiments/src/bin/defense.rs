//! The countermeasure study: how well does an onboard IDS (innovation
//! CUSUM, misdetection-streak envelope, cross-sensor consistency, kinematic
//! plausibility — `av-defense`) see RoboTack?
//!
//! Three questions, mirroring the paper's stealthiness claims (§III-A,
//! §IV-B/C, §VI-E) and its future-work countermeasure direction (§VIII):
//!
//! 1. **False positives** — golden runs must stay quiet.
//! 2. **Evasion** — RoboTack's within-envelope perturbations should slip
//!    past the noise-envelope monitors (innovation, streak).
//! 3. **Countermeasure** — which monitor *does* catch which vector, and at
//!    what point of the attack.

use av_defense::ids::AlarmKind;
use av_experiments::prelude::*;
use av_experiments::suite::{oracle_for, report_cache, Args, ARMS};

fn main() {
    let args = Args::parse();
    let runs = args.runs.min(60);
    let sweep = args.sweep();
    let cache = args.oracle_cache();

    println!("=== IDS false positives (golden runs, {runs} runs/scenario) ===\n");
    println!("scenario | runs w/ any alarm | innovation | streak | cross-sensor | kinematics");
    for scenario in ScenarioId::ALL {
        let mut any = 0u64;
        let mut by_kind = [0u64; 4];
        for seed in 0..runs {
            let out = SimSession::builder(scenario).seed(seed).build().run();
            any += u64::from(!out.ids_alarms.is_empty());
            for a in &out.ids_alarms {
                let idx = match a.kind {
                    AlarmKind::Innovation => 0,
                    AlarmKind::Streak => 1,
                    AlarmKind::CrossSensor => 2,
                    AlarmKind::Kinematics => 3,
                };
                by_kind[idx] += 1;
            }
        }
        println!(
            "{:<8} | {:>17} | {:>10} | {:>6} | {:>12} | {:>10}",
            scenario.name(),
            any,
            by_kind[0],
            by_kind[1],
            by_kind[2],
            by_kind[3]
        );
    }

    println!("\n=== IDS vs RoboTack ({runs} runs/arm) ===\n");
    println!("arm                  | launched | flagged during attack | by monitor");
    for (scenario, vector, name) in ARMS {
        let (oracle, _) = oracle_for(scenario, vector, &sweep, &cache);
        let mut launched = 0u64;
        let mut flagged = 0u64;
        let mut kinds: std::collections::HashMap<AlarmKind, u64> = Default::default();
        for seed in 0..runs {
            let out = SimSession::builder(scenario)
                .seed(7000 + seed)
                .attacker(AttackerSpec::RoboTack {
                    vector: Some(vector),
                    oracle: oracle.clone(),
                })
                .build()
                .run();
            let Some(t0) = out.attack.launched_at else {
                continue;
            };
            launched += 1;
            let t1 = t0 + f64::from(out.attack.k) / 15.0 + 1.0;
            let during: Vec<_> = out
                .ids_alarms
                .iter()
                .filter(|a| a.t >= t0 && a.t <= t1)
                .collect();
            flagged += u64::from(!during.is_empty());
            for a in during {
                *kinds.entry(a.kind).or_default() += 1;
            }
        }
        let mut kind_list: Vec<String> = kinds.iter().map(|(k, n)| format!("{k:?}×{n}")).collect();
        kind_list.sort();
        println!(
            "{name:<20} | {launched:>8} | {:>11} ({:>5.1}%) | {}",
            flagged,
            100.0 * flagged as f64 / launched.max(1) as f64,
            kind_list.join(", ")
        );
    }

    report_cache(&cache);

    println!("\n=== IDS vs a non-stealthy attacker ===\n");
    println!(
        "A naive Disappear that ignores the misdetection envelope (K = 62 \
             frames on a pedestrian, envelope 31):"
    );
    let mut flagged = 0u64;
    for seed in 0..runs {
        let out = SimSession::builder(ScenarioId::Ds2)
            .seed(seed)
            .attacker(AttackerSpec::AtDelta {
                vector: Some(AttackVector::Disappear),
                delta_inject: 24.0,
                k: 62,
            })
            .build()
            .run();
        if out.attack.launched_at.is_some() {
            flagged += u64::from(out.ids_alarms.iter().any(|a| a.kind == AlarmKind::Streak));
        }
    }
    println!("  streak-flagged in {flagged}/{runs} runs");
}
