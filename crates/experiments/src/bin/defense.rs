//! The countermeasure study: how well does an onboard IDS (innovation
//! CUSUM, misdetection-streak envelope, cross-sensor consistency, kinematic
//! plausibility — `av-defense`) see RoboTack?
//!
//! Thin wrapper over [`av_experiments::jobs::defense`] — the `suite`
//! orchestrator runs the same function, so its stdout is byte-identical.

use av_experiments::jobs;
use av_experiments::suite::Args;

fn main() {
    let args = Args::parse();
    let cache = args.oracle_cache();
    print!("{}", jobs::defense(&args, &cache));
}
