//! Regenerates Table II: attack summary for the six RoboTack campaigns plus
//! the DS-5 random baseline, with the paper's reference numbers inline.

use av_experiments::report::{render_table2, Table2Reference};
use av_experiments::suite::{
    oracle_for, report_cache, run_baseline_campaign, run_r_campaign, Args, ARMS,
};

fn main() {
    let args = Args::parse();
    let sweep = args.sweep();
    let cache = args.oracle_cache();
    eprintln!("table2: {} runs/campaign (quick={})", args.runs, args.quick);

    let references = [
        Table2Reference {
            k: "48",
            eb_pct: "53.5%",
            crash_pct: "31.7%",
        },
        Table2Reference {
            k: "14",
            eb_pct: "94.4%",
            crash_pct: "82.6%",
        },
        Table2Reference {
            k: "65",
            eb_pct: "37.3%",
            crash_pct: "17.3%",
        },
        Table2Reference {
            k: "32",
            eb_pct: "97.8%",
            crash_pct: "84.1%",
        },
        Table2Reference {
            k: "48",
            eb_pct: "94.6%",
            crash_pct: "—",
        },
        Table2Reference {
            k: "24",
            eb_pct: "78.5%",
            crash_pct: "—",
        },
    ];

    let mut rows = Vec::new();
    for ((scenario, vector, name), reference) in ARMS.iter().zip(references) {
        eprintln!("training oracle for {name} ...");
        let (oracle, desc) = oracle_for(*scenario, *vector, &sweep, &cache);
        eprintln!("  {desc}");
        eprintln!("running campaign {name} ...");
        let result = run_r_campaign(name, *scenario, *vector, oracle, args.runs, args.seed);
        let crashes_apply = !name.contains("Move_In");
        rows.push((result, reference, crashes_apply));
    }

    report_cache(&cache);
    eprintln!("running DS-5-Baseline-Random ...");
    let baseline = run_baseline_campaign(args.runs.max(24), args.seed + 5000);

    println!("{}", render_table2(&rows, &baseline));
}
