//! Regenerates Table II: attack summary for the six RoboTack campaigns plus
//! the DS-5 random baseline, with the paper's reference numbers inline.
//!
//! Thin wrapper over [`av_experiments::jobs::table2`] — the `suite`
//! orchestrator runs the same function, so its stdout is byte-identical.

use av_experiments::jobs;
use av_experiments::suite::Args;

fn main() {
    let args = Args::parse();
    let cache = args.oracle_cache();
    print!("{}", jobs::table2(&args, &cache));
}
