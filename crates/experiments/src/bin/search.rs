//! Coverage-guided boundary search over generated scenarios.
//!
//! Runs the same [`av_experiments::search::run_search`] the `suite`
//! orchestrator runs for its `search:⟨vector⟩` jobs, so stdout here is
//! byte-identical to the suite's; evaluation-cache counters go to stderr.
//!
//! Shared options (`--runs`, `--quick`, `--seed`, `--cache-dir`,
//! `--no-cache`, `--batch`) behave as in every other experiment binary;
//! `--vector NAME` (`Move_Out` | `Move_In` | `Disappear`, repeatable)
//! selects which searches run. Default: all three.

use av_experiments::search::{run_search, SearchConfig};
use av_experiments::suite::Args;
use robotack::vector::AttackVector;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (args, rest) = Args::parse_known(&argv);

    let mut vectors = Vec::new();
    let mut iter = rest.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--vector" => match iter.next().map(String::as_str) {
                Some("Move_Out") => vectors.push(AttackVector::MoveOut),
                Some("Move_In") => vectors.push(AttackVector::MoveIn),
                Some("Disappear") => vectors.push(AttackVector::Disappear),
                other => {
                    eprintln!("unknown vector {other:?} (Move_Out | Move_In | Disappear)");
                    std::process::exit(2);
                }
            },
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    if vectors.is_empty() {
        vectors.extend(AttackVector::ALL);
    }

    let cache = args.oracle_cache();
    let sweep = args.sweep();
    for vector in vectors {
        let config = SearchConfig::for_args(vector, &args);
        let report = run_search(&config, &sweep, &cache);
        print!("{}", report.render());
        eprintln!(
            "search eval: hits={} misses={} [{}]",
            report.eval_hits,
            report.eval_misses,
            vector.name()
        );
    }
}
