//! Replays one fully-instrumented simulation run: the structured event
//! stream goes out as JSONL (stdout or `--out FILE`), the per-stage latency
//! table and a one-line outcome summary go to stderr.
//!
//! Defaults to the paper's highest-impact case — DS-2 (crossing pedestrian)
//! under a timed Move_Out attack — so a bare `cargo run --bin trace` shows
//! every layer of the pipeline reporting: scheduler ticks, sensor samples,
//! detector output, track updates, the attack launch and phase changes,
//! planner mode transitions, and the emergency stop.
//!
//! ```text
//! trace [--scenario ds1..ds5] [--seed N] [--golden] [--out FILE]
//! ```

use av_experiments::prelude::*;
use std::io::Write;

struct TraceArgs {
    scenario: ScenarioId,
    seed: u64,
    golden: bool,
    out: Option<String>,
}

fn parse_scenario(s: &str) -> Option<ScenarioId> {
    match s.to_ascii_lowercase().as_str() {
        "ds1" | "ds-1" => Some(ScenarioId::Ds1),
        "ds2" | "ds-2" => Some(ScenarioId::Ds2),
        "ds3" | "ds-3" => Some(ScenarioId::Ds3),
        "ds4" | "ds-4" => Some(ScenarioId::Ds4),
        "ds5" | "ds-5" => Some(ScenarioId::Ds5),
        _ => None,
    }
}

fn parse_args() -> TraceArgs {
    let mut args = TraceArgs {
        scenario: ScenarioId::Ds2,
        seed: 0,
        golden: false,
        out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--scenario" => {
                if let Some(s) = iter.next().as_deref().and_then(parse_scenario) {
                    args.scenario = s;
                } else {
                    eprintln!("--scenario expects ds1..ds5");
                }
            }
            "--seed" => {
                if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                    args.seed = v;
                }
            }
            "--golden" => args.golden = true,
            "--out" => args.out = iter.next(),
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let attacker = if args.golden {
        AttackerSpec::None
    } else {
        // A timed Move_Out attack that reliably launches without any oracle
        // training (the same configuration the integration tests pin).
        AttackerSpec::AtDelta {
            vector: Some(AttackVector::MoveOut),
            delta_inject: 24.0,
            k: 60,
        }
    };

    let writer: Box<dyn Write + Send> = match &args.out {
        Some(path) => Box::new(std::fs::File::create(path).expect("create --out file")),
        None => Box::new(std::io::stdout()),
    };
    let telemetry = Telemetry::with_sink(JsonlSink::new(std::io::BufWriter::new(writer)));

    let outcome = SimSession::builder(args.scenario)
        .seed(args.seed)
        .attacker(attacker)
        .telemetry(telemetry.clone())
        .build()
        .run();

    eprintln!(
        "trace: {} seed {} — {:.1} s simulated, digest {}, attack launch {:?}, \
         EB {}, collision {}",
        args.scenario.name(),
        args.seed,
        outcome.sim_seconds,
        outcome.record.digest(),
        outcome.attack.launched_at,
        outcome.eb_any,
        outcome.collided,
    );
    if let Some(snapshot) = telemetry.metrics() {
        eprintln!("\n{}", snapshot.render_latency_table());
    }
}
