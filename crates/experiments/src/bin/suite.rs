//! The evaluation-service orchestrator: runs the whole paper — Table II,
//! Figs. 5–8, the ablations, the defense and resilience studies — as one
//! job DAG on a shared worker pool over one content-addressed artifact
//! store.
//!
//! Three modes, all executing the same typed `EvalRequest`:
//!
//! - **One-shot** (no subcommand): parse the flags into a request, build
//!   its DAG, execute it in-process with the resumable JSONL manifest.
//! - **`suite serve`**: run as a daemon on a Unix socket. Clients send
//!   newline-delimited JSON requests; each streams back events and a
//!   terminal response. All requests share one artifact store, so
//!   concurrent identical oracle trainings coalesce onto a single job.
//! - **`suite request`**: the client — send one request to a running
//!   daemon, mirror its progress to stderr, print the reassembled report
//!   stdout (byte-identical to the one-shot binary's stdout for the same
//!   subgraph). `suite request --shutdown` stops the daemon.
//!
//! Dataset collection and oracle training are explicit preparation jobs,
//! so the six 〈scenario, vector〉 arms are collected and trained exactly
//! once per store no matter how many figures consume them. Each report
//! job's stdout is byte-identical to its standalone binary (CI diffs
//! them); everything else — progress, scorecards, summaries — goes to
//! stderr.
//!
//! Flags (on top of the shared experiment flags): `--jobs N` worker
//! threads, `--only JOB` (repeatable), `--list` (print the DAG and exit),
//! `--manifest FILE`, `--no-resume`, `--socket PATH` (serve/request),
//! `--request-slots N` (serve), `--priority interactive|batch`,
//! `--id NAME` and `--shutdown` (request).

use av_experiments::jobs::PaperEvalService;
use av_experiments::suite::SuiteArgs;
use av_suite::serve::{request_over_unix, send_shutdown, serve_unix, EvalService};
use av_suite::{execute, Dag, EvalEvent, EvalResponse, ExecOptions, ServeOptions};
use std::sync::Arc;
use std::time::Duration;

fn list(dag: &Dag) {
    println!("suite: {} jobs", dag.len());
    for job in dag.jobs() {
        let stdout = if job.is_stdout_job() { " [stdout]" } else { "" };
        println!("  {}{stdout}", job.id());
        if !job.dep_ids().is_empty() {
            println!("    after: {}", job.dep_ids().join(", "));
        }
        if !job.declared_inputs().is_empty() {
            println!("    reads: {}", job.declared_inputs().join(", "));
        }
        if !job.declared_outputs().is_empty() {
            println!("    writes: {}", job.declared_outputs().join(", "));
        }
    }
}

/// One-shot mode: build the request's DAG and execute it in-process with
/// the resumable manifest — the same request type and validation path the
/// daemon uses.
fn one_shot(argv: &[String]) {
    let args = SuiteArgs::parse_from(argv);
    let store = Arc::new(args.base.artifact_store());
    let service = PaperEvalService::new(args.base.clone(), store);

    let request = args.to_request();
    let dag = match service.dag_for(&request) {
        Ok(dag) => dag,
        Err((_code, message)) => {
            eprintln!("suite: {message}");
            std::process::exit(2);
        }
    };

    if args.list {
        list(&dag);
        return;
    }

    let opts = ExecOptions::new()
        .workers(request.jobs)
        .manifest(args.manifest_path())
        .resume(!args.no_resume)
        .config_key(args.base.config_key());
    eprintln!(
        "suite: {} jobs, {} workers, manifest {}",
        dag.len(),
        request.jobs,
        args.manifest_path().display()
    );

    match execute(&dag, &opts) {
        Ok(report) => {
            for job in report.jobs.iter().filter(|j| j.emits_stdout) {
                print!("{}", job.stdout);
            }
            eprint!("{}", report.render_summary());
        }
        Err(e) => {
            eprintln!("suite: {e}");
            std::process::exit(1);
        }
    }
}

/// Daemon mode: serve evaluation requests on the Unix socket until a
/// shutdown sentinel arrives, then print the greppable summary.
fn serve_main(argv: &[String]) {
    let args = SuiteArgs::parse_from(argv);
    let store = Arc::new(args.base.artifact_store());
    let service = PaperEvalService::new(args.base.clone(), store);
    let opts = ServeOptions {
        request_slots: args.request_slots,
        // `--jobs` in serve mode is the per-request worker-pool cap.
        max_workers: args.jobs,
        ..ServeOptions::default()
    };

    let socket = args.socket_path();
    eprintln!(
        "[serve] listening on {} ({} request slots, {} workers/request max)",
        socket.display(),
        opts.request_slots,
        opts.max_workers
    );
    match serve_unix(&socket, &service, &opts) {
        Ok(report) => eprintln!("{}", report.render_summary(service.dedup_counters())),
        Err(e) => {
            eprintln!("suite serve: {e}");
            std::process::exit(1);
        }
    }
}

/// Client mode: send one request (or the shutdown sentinel) to a running
/// daemon, mirror progress to stderr, print the reassembled stdout.
fn request_main(argv: &[String]) {
    let args = SuiteArgs::parse_from(argv);
    let socket = args.socket_path();
    let timeout = Duration::from_secs(30);

    if args.shutdown {
        if let Err(e) = send_shutdown(&socket, timeout) {
            eprintln!("suite request: {e}");
            std::process::exit(1);
        }
        eprintln!("[request] shutdown sent to {}", socket.display());
        return;
    }

    let mut request = args.to_request();
    if request.id.is_empty() {
        request.id = format!("cli-{}", std::process::id());
    }

    let outcome = request_over_unix(&socket, &request, timeout, |event| match event {
        EvalEvent::Accepted { request, jobs } => {
            eprintln!("[request {request}] accepted: {jobs} jobs");
        }
        EvalEvent::JobStarted { request, job } => {
            eprintln!("[request {request}] start {job}");
        }
        EvalEvent::JobFinished {
            request,
            job,
            wall_ms,
            skipped,
            ..
        } => {
            let tag = if *skipped { " (skipped)" } else { "" };
            eprintln!("[request {request}] done {job} in {wall_ms} ms{tag}");
        }
        EvalEvent::StdoutChunk { .. } | EvalEvent::Response(_) => {}
    });
    match outcome {
        Ok(outcome) => match &outcome.response {
            EvalResponse::Done {
                jobs_run,
                jobs_skipped,
                dedup_led,
                dedup_coalesced,
                wall_ms,
                ..
            } => {
                print!("{}", outcome.stdout);
                eprintln!(
                    "[request {}] done: jobs_run={jobs_run} jobs_skipped={jobs_skipped} \
                     dedup led={dedup_led} coalesced={dedup_coalesced} wall_ms={wall_ms}",
                    request.id
                );
            }
            EvalResponse::Error {
                code,
                message,
                request,
            } => {
                eprintln!("suite request [{request}]: {}: {message}", code.name());
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("suite request: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => serve_main(&argv[1..]),
        Some("request") => request_main(&argv[1..]),
        _ => one_shot(&argv),
    }
}
