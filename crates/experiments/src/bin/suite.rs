//! The evaluation-service orchestrator: runs the whole paper — Table II,
//! Figs. 5–8, the ablations, the defense and resilience studies — as one
//! job DAG on a shared worker pool over one content-addressed artifact
//! store.
//!
//! Dataset collection and oracle training are explicit preparation jobs,
//! so the six 〈scenario, vector〉 arms are collected and trained exactly
//! once per store no matter how many figures consume them. Each report
//! job's stdout is byte-identical to its standalone binary (CI diffs
//! them); everything else — progress, scorecards, the end-of-run summary
//! table — goes to stderr. Completed jobs are appended to a JSONL run
//! manifest as they finish, and a rerun with the same configuration skips
//! them, so an interrupted suite resumes where it stopped.
//!
//! Flags (on top of the shared experiment flags): `--jobs N` worker
//! threads, `--only JOB` (repeatable; runs the job plus its transitive
//! dependencies), `--list` (print the DAG and exit), `--manifest FILE`,
//! `--no-resume`.

use av_experiments::jobs::paper_dag;
use av_experiments::suite::SuiteArgs;
use av_suite::{execute, Dag, ExecOptions};
use std::sync::Arc;

fn list(dag: &Dag) {
    println!("suite: {} jobs", dag.len());
    for job in dag.jobs() {
        let stdout = if job.is_stdout_job() { " [stdout]" } else { "" };
        println!("  {}{stdout}", job.id());
        if !job.dep_ids().is_empty() {
            println!("    after: {}", job.dep_ids().join(", "));
        }
        if !job.declared_inputs().is_empty() {
            println!("    reads: {}", job.declared_inputs().join(", "));
        }
        if !job.declared_outputs().is_empty() {
            println!("    writes: {}", job.declared_outputs().join(", "));
        }
    }
}

fn main() {
    let args = SuiteArgs::parse();
    let store = Arc::new(args.base.artifact_store());

    let dag = match paper_dag(&args.base, &store) {
        Ok(dag) => dag,
        Err(e) => {
            eprintln!("suite: invalid job DAG: {e}");
            std::process::exit(2);
        }
    };
    let dag = if args.only.is_empty() {
        dag
    } else {
        match dag.subgraph(&args.only) {
            Ok(dag) => dag,
            Err(e) => {
                eprintln!("suite: {e}");
                std::process::exit(2);
            }
        }
    };

    if args.list {
        list(&dag);
        return;
    }

    let opts = ExecOptions {
        workers: args.jobs,
        manifest: Some(args.manifest_path()),
        resume: !args.no_resume,
        config_key: args.base.config_key(),
        ..ExecOptions::default()
    };
    eprintln!(
        "suite: {} jobs, {} workers, manifest {}",
        dag.len(),
        opts.workers,
        args.manifest_path().display()
    );

    match execute(&dag, &opts) {
        Ok(report) => {
            for job in report.jobs.iter().filter(|j| j.emits_stdout) {
                print!("{}", job.stdout);
            }
            eprint!("{}", report.render_summary());
        }
        Err(e) => {
            eprintln!("suite: {e}");
            std::process::exit(1);
        }
    }
}
