//! Regenerates Fig. 6: min safety potential boxplots, RoboTack vs RoboTack
//! without the safety hijacker, for DS-1/DS-2 × Disappear/Move_Out.

use av_experiments::report::render_fig6_panel;
use av_experiments::suite::{oracle_for, report_cache, run_nosh_campaign, run_r_campaign, Args};
use av_simkit::scenario::ScenarioId;
use robotack::vector::AttackVector;

fn main() {
    let args = Args::parse();
    let sweep = args.sweep();
    let cache = args.oracle_cache();
    let panels = [
        (
            ScenarioId::Ds1,
            AttackVector::Disappear,
            "(a) DS-1-Disappear",
            (19.0, 9.0),
        ),
        (
            ScenarioId::Ds1,
            AttackVector::MoveOut,
            "(b) DS-1-Move_Out",
            (19.0, 13.0),
        ),
        (
            ScenarioId::Ds2,
            AttackVector::Disappear,
            "(c) DS-2-Disappear",
            (7.0, 3.0),
        ),
        (
            ScenarioId::Ds2,
            AttackVector::MoveOut,
            "(d) DS-2-Move_Out",
            (9.0, 3.0),
        ),
    ];
    println!("Fig. 6: impact of attack timing on min safety potential δ (m)\n");
    for (scenario, vector, label, paper) in panels {
        eprintln!("training oracle for {label} ...");
        let (oracle, desc) = oracle_for(scenario, vector, &sweep, &cache);
        eprintln!("  {desc}");
        let with_sh = run_r_campaign("R", scenario, vector, oracle, args.runs, args.seed);
        let without_sh = run_nosh_campaign("R w/o SH", scenario, vector, args.runs, args.seed + 77);
        println!("{}", render_fig6_panel(label, &without_sh, &with_sh, paper));
        let (eb_n, eb_w) = (with_sh.eb().1, without_sh.eb().1);
        let (cr_n, cr_w) = (with_sh.crashes().1, without_sh.crashes().1);
        println!(
            "  EB: {:.1}% vs {:.1}% (×{:.1}) | crashes: {:.1}% vs {:.1}% (×{:.1})\n",
            eb_n,
            eb_w,
            if eb_w > 0.0 { eb_n / eb_w } else { f64::NAN },
            cr_n,
            cr_w,
            if cr_w > 0.0 { cr_n / cr_w } else { f64::NAN },
        );
    }
    report_cache(&cache);
}
