//! Regenerates Fig. 6: min safety potential boxplots, RoboTack vs RoboTack
//! without the safety hijacker, for DS-1/DS-2 × Disappear/Move_Out.
//!
//! Thin wrapper over [`av_experiments::jobs::fig6`] — the `suite`
//! orchestrator runs the same function, so its stdout is byte-identical.

use av_experiments::jobs;
use av_experiments::suite::Args;

fn main() {
    let args = Args::parse();
    let cache = args.oracle_cache();
    print!("{}", jobs::fig6(&args, &cache));
}
