//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Noise gate** — how much of the ±1σ envelope the trajectory hijacker
//!    spends per frame (stealth vs shift speed).
//! 2. **Fusion registration delay** — the LiDAR-only (re-)registration gate
//!    that creates the paper's vehicle/pedestrian asymmetry.
//! 3. **SH launch threshold γ** — how deep the predicted δ must go before
//!    the malware commits its single shot.
//! 4. **K search** — binary (Eq. 2) vs linear; result equivalence.

use av_experiments::prelude::*;
use av_experiments::stats::median;
use av_experiments::suite::{oracle_for, report_cache, Args};
use robotack::safety_hijacker::{
    AttackFeatures, KinematicOracle, SafetyHijacker, SafetyHijackerConfig,
};
use robotack::vector::AttackVector;

fn main() {
    let args = Args::parse();
    let runs = args.runs.min(40);

    println!("=== Ablation 1: trajectory-hijacker noise gate (σ fraction) ===");
    println!("(DS-3 Move_In, fixed timing; smaller gate → slower shift → larger K')\n");
    println!("σ fraction | K' median (frames) | EB rate");
    for sigma in [0.25, 0.5, 1.0, 1.5] {
        let mut kprimes = Vec::new();
        let mut eb = 0u64;
        for seed in 0..runs {
            let mut cfg = RunConfig::new(ScenarioId::Ds3, seed);
            cfg.sigma_fraction = sigma;
            let out = SimSession::builder(ScenarioId::Ds3)
                .config(cfg)
                .attacker(AttackerSpec::AtDelta {
                    vector: Some(AttackVector::MoveIn),
                    delta_inject: 8.0,
                    k: 40,
                })
                .build()
                .run();
            if let Some(kp) = out.k_prime_ads {
                kprimes.push(f64::from(kp));
            }
            eb += u64::from(out.eb_after_attack);
        }
        println!(
            "  {sigma:>7.2}  | {:>18.0} | {:>5.1}%",
            median(&kprimes),
            100.0 * eb as f64 / runs as f64
        );
    }

    println!("\n=== Ablation 2: fusion LiDAR registration delay ===");
    println!("(DS-1 Move_Out, fixed timing; fast re-registration defeats vehicle attacks)\n");
    println!("register (scans) | accident rate | min-δ median");
    for register in [5u32, 15, 40, 80] {
        let mut accidents = 0u64;
        let mut deltas = Vec::new();
        for seed in 0..runs {
            let mut cfg = RunConfig::new(ScenarioId::Ds1, seed);
            cfg.fusion.lidar_register = register;
            let out = SimSession::builder(ScenarioId::Ds1)
                .config(cfg)
                .attacker(AttackerSpec::AtDelta {
                    vector: Some(AttackVector::MoveOut),
                    delta_inject: 30.0,
                    k: 90,
                })
                .build()
                .run();
            accidents += u64::from(out.accident);
            if let Some(d) = out.min_delta_post_attack {
                deltas.push(d);
            }
        }
        println!(
            "  {register:>14} | {:>12.1}% | {:>8.1} m",
            100.0 * accidents as f64 / runs as f64,
            median(&deltas)
        );
    }

    println!("\n=== Ablation 3: safety-hijacker launch threshold γ ===");
    println!("(DS-2 Move_Out with the trained NN oracle)\n");
    let cache = args.oracle_cache();
    let (oracle, desc) = oracle_for(
        ScenarioId::Ds2,
        AttackVector::MoveOut,
        &args.sweep(),
        &cache,
    );
    report_cache(&cache);
    println!("oracle: {desc}\n");
    println!("γ (m) | launched | EB rate | accident rate");
    for gamma in [2.0, 4.0, 8.0] {
        let mut launched = 0u64;
        let mut eb = 0u64;
        let mut accidents = 0u64;
        for seed in 0..runs {
            let mut cfg = RunConfig::new(ScenarioId::Ds2, 4000 + seed);
            cfg.sh.gamma = gamma;
            let out = SimSession::builder(ScenarioId::Ds2)
                .config(cfg)
                .attacker(AttackerSpec::RoboTack {
                    vector: Some(AttackVector::MoveOut),
                    oracle: oracle.clone(),
                })
                .build()
                .run();
            launched += u64::from(out.attack.launched_at.is_some());
            eb += u64::from(out.eb_after_attack);
            accidents += u64::from(out.accident);
        }
        println!(
            "  {gamma:>3.0} | {launched:>8} | {:>6.1}% | {:>6.1}%",
            100.0 * eb as f64 / launched.max(1) as f64,
            100.0 * accidents as f64 / launched.max(1) as f64
        );
    }

    println!("\n=== Ablation 4: K search — binary (Eq. 2) vs linear ===\n");
    let sh = SafetyHijacker::new(KinematicOracle::default(), SafetyHijackerConfig::default());
    let mut agree = 0;
    let mut total = 0;
    for delta10 in 5..200 {
        let f = AttackFeatures {
            delta: f64::from(delta10) / 2.0,
            v_rel_lon: -5.0,
            v_rel_lat: 0.0,
            a_rel_lon: 0.0,
        };
        let b = sh.decide(&f).map(|d| d.k);
        let l = sh.decide_linear(&f).map(|d| d.k);
        agree += u64::from(b == l);
        total += 1;
    }
    println!("binary == linear on {agree}/{total} states (O(log K) vs O(K) oracle calls)");
}
