//! Ablation studies for the design choices DESIGN.md calls out: the
//! trajectory-hijacker noise gate, the fusion LiDAR registration delay, the
//! SH launch threshold γ, and binary-vs-linear K search.
//!
//! Thin wrapper over [`av_experiments::jobs::ablations`] — the `suite`
//! orchestrator runs the same function, so its stdout is byte-identical.

use av_experiments::jobs;
use av_experiments::suite::Args;

fn main() {
    let args = Args::parse();
    let cache = args.oracle_cache();
    print!("{}", jobs::ablations(&args, &cache));
}
