//! The resilience study: does the ADS degrade gracefully under sensor
//! faults, and does RoboTack's mirrored replica (§III-D) survive them?
//!
//! Thin wrapper over [`av_experiments::jobs::resilience`] — the `suite`
//! orchestrator runs the same function, so its stdout is byte-identical.
//! Like the other oracle-driven binaries it honors `--cache-dir` /
//! `--no-cache` and trains (or loads) the NN oracle per RoboTack arm.

use av_experiments::jobs;
use av_experiments::suite::Args;

fn main() {
    let args = Args::parse();
    let cache = args.oracle_cache();
    print!("{}", jobs::resilience(&args, &cache));
}
