//! The resilience study: does the ADS degrade gracefully under sensor
//! faults, and does RoboTack's mirrored replica (§III-D) survive them?
//!
//! RoboTack's stealth rests on the malware's replica perception pipeline
//! staying in lockstep with the ADS's — the trajectory hijacker perturbs
//! boxes relative to what it *believes* the ADS tracks. Sensor faults break
//! that assumption asymmetrically: the replica is camera-only, so LiDAR
//! dropout and GPS bias widen the gap between the two world models, while
//! camera faults hit both sides at once.
//!
//! The sweep runs fault intensity × scenario × attacker and reports, per
//! cell: attack-launch rate, EB/accident rates over valid runs, the peak
//! replica↔ADS disagreement on the scripted target, and what the injector
//! actually did.

use av_experiments::campaign::{run_campaign, Campaign};
use av_experiments::runner::{AttackerSpec, OracleSpec, RunOutcome};
use av_experiments::stats;
use av_experiments::suite::Args;
use av_faults::{FaultKind, FaultPlan, FaultSpec};
use av_simkit::scenario::ScenarioId;
use robotack::vector::AttackVector;

/// One fault-intensity level of the sweep.
struct Intensity {
    name: &'static str,
    plan: FaultPlan,
}

fn intensities() -> Vec<Intensity> {
    vec![
        Intensity {
            name: "healthy",
            plan: FaultPlan::none(),
        },
        Intensity {
            name: "mild",
            plan: FaultPlan::none()
                .with(FaultSpec::always(FaultKind::CameraFrameDrop {
                    probability: 0.05,
                }))
                .with(FaultSpec::always(FaultKind::CameraNoise { sigma_px: 1.0 })),
        },
        Intensity {
            name: "moderate",
            plan: FaultPlan::none()
                .with(FaultSpec::always(FaultKind::CameraFrameDrop {
                    probability: 0.15,
                }))
                .with(FaultSpec::always(FaultKind::CameraNoise { sigma_px: 2.5 }))
                .with(FaultSpec::always(FaultKind::LidarDropout {
                    probability: 0.15,
                }))
                .with(FaultSpec::always(FaultKind::GpsBias {
                    bias: 0.5,
                    drift_per_s: 0.02,
                })),
        },
        Intensity {
            name: "severe",
            plan: FaultPlan::none()
                .with(FaultSpec::always(FaultKind::CameraFrameDrop {
                    probability: 0.3,
                }))
                .with(FaultSpec::always(FaultKind::CameraFreeze {
                    probability: 0.02,
                    mean_frames: 6.0,
                }))
                .with(FaultSpec::always(FaultKind::CameraNoise { sigma_px: 4.0 }))
                .with(FaultSpec::always(FaultKind::LidarDropout {
                    probability: 0.4,
                }))
                .with(FaultSpec::always(FaultKind::GpsBias {
                    bias: 1.5,
                    drift_per_s: 0.05,
                }))
                .with(FaultSpec::always(FaultKind::DetectorBlackout {
                    probability: 0.01,
                    mean_frames: 4.0,
                })),
        },
    ]
}

/// The sweep's 〈scenario, attacker〉 arms. Kinematic oracle throughout — the
/// question is replica tracking under faults, not oracle quality.
fn arms() -> Vec<(&'static str, ScenarioId, AttackerSpec)> {
    vec![
        ("DS-1-golden", ScenarioId::Ds1, AttackerSpec::None),
        (
            "DS-1-Disappear-R",
            ScenarioId::Ds1,
            AttackerSpec::RoboTack {
                vector: Some(AttackVector::Disappear),
                oracle: OracleSpec::Kinematic,
            },
        ),
        (
            "DS-2-Disappear-R",
            ScenarioId::Ds2,
            AttackerSpec::RoboTack {
                vector: Some(AttackVector::Disappear),
                oracle: OracleSpec::Kinematic,
            },
        ),
        (
            "DS-3-Move_In-R",
            ScenarioId::Ds3,
            AttackerSpec::RoboTack {
                vector: Some(AttackVector::MoveIn),
                oracle: OracleSpec::Kinematic,
            },
        ),
    ]
}

fn divergences(outcomes: &[RunOutcome]) -> Vec<f64> {
    outcomes
        .iter()
        .filter_map(|o| o.replica_divergence)
        .collect()
}

fn main() {
    let args = Args::parse();
    let runs = if args.quick {
        args.runs.min(8)
    } else {
        args.runs.min(60)
    };

    println!(
        "## Sensor-fault resilience ({runs} runs/cell, base seed {})\n",
        args.seed
    );
    println!(
        "| arm | faults | launched | EB % | accident % | mean div (m) | max div (m) \
         | frames lost | stale frames |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|");

    for (name, scenario, attacker) in arms() {
        for intensity in intensities() {
            let campaign = Campaign::new(
                format!("{name}/{}", intensity.name),
                scenario,
                attacker.clone(),
                runs,
                args.seed,
            )
            .with_faults(intensity.plan.clone());
            let result = run_campaign(&campaign);

            let launched = result.n_launched();
            let (_, eb_pct) = result.eb();
            let (_, acc_pct) = result.crashes();
            let divs = divergences(&result.outcomes);
            let (mean_div, max_div) = if divs.is_empty() {
                ("-".to_string(), "-".to_string())
            } else {
                (
                    format!("{:.2}", stats::mean(&divs)),
                    format!("{:.2}", divs.iter().copied().fold(f64::MIN, f64::max)),
                )
            };
            let lost: u64 = result
                .outcomes
                .iter()
                .map(|o| {
                    u64::from(o.faults.camera_frames_dropped)
                        + u64::from(o.faults.camera_frames_frozen)
                })
                .sum();
            let stale: u64 = result.outcomes.iter().map(|o| o.stale_frames).sum();

            println!(
                "| {name} | {} | {launched}/{runs} | {eb_pct:.0} | {acc_pct:.0} \
                 | {mean_div} | {max_div} | {lost} | {stale} |",
                intensity.name
            );
        }
    }

    println!(
        "\nDivergence is the peak distance (m) between the ADS's and the \
         malware replica's ego-relative estimate of the scripted target; '-' \
         means the attacker keeps no replica or the target was never tracked \
         by both. 'frames lost' counts camera frames the injector dropped or \
         froze across all runs; 'stale frames' counts frozen replays the ADS \
         perception rejected (coasting instead of corrupting its tracker)."
    );
}
