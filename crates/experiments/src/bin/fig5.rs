//! Regenerates Fig. 5: detector noise characterization (misdetection streak
//! distributions and normalized bbox-center error fits, per class).

use av_experiments::characterize::characterize_detector;
use av_experiments::report::render_fig5;
use av_experiments::suite::Args;

fn main() {
    let args = Args::parse();
    // The paper characterizes ~10 minutes of 15 Hz video (~9000 frames).
    let frames = if args.quick { 2_000 } else { 9_000 };
    let c = characterize_detector(frames, args.seed);
    println!("{}", render_fig5(&c));
}
