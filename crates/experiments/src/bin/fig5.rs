//! Regenerates Fig. 5: detector noise characterization (misdetection streak
//! distributions and normalized bbox-center error fits, per class).
//!
//! Thin wrapper over [`av_experiments::jobs::fig5`] — the `suite`
//! orchestrator runs the same function, so its stdout is byte-identical.

use av_experiments::jobs;
use av_experiments::suite::Args;

fn main() {
    let args = Args::parse();
    print!("{}", jobs::fig5(&args));
}
