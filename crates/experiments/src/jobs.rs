//! The paper's experiments as library functions plus the suite job DAG.
//!
//! Every `src/bin` experiment binary is a ~10-line wrapper around one
//! function here: the function builds the complete stdout report as a
//! `String` (progress and scorecards still go to stderr), the binary
//! `print!`s it. The `suite` orchestrator runs the *same* functions as
//! [`av_suite::Job`]s on a shared worker pool — so a job's stdout inside
//! the suite is byte-identical to its standalone binary's stdout, and CI
//! diffs the two.
//!
//! [`paper_dag`] declares the whole evaluation as one DAG over a shared
//! [`ArtifactStore`]:
//!
//! ```text
//! dataset:⟨scenario⟩:⟨vector⟩   (6 jobs: collect the δ_inject × k sweep)
//!    └─ oracle:⟨scenario⟩:⟨vector⟩   (6 jobs: train + snapshot the NN oracle)
//!          └─ table2, fig6, fig7, fig8, ablations, defense, resilience
//!          └─ search:⟨vector⟩   (3 jobs: coverage-guided boundary search)
//! fig5   (independent: detector characterization, no oracle)
//! ```
//!
//! Report jobs only *read* oracles the preparation jobs already stored, so
//! any worker count yields the same bytes; each job gets its own
//! [`OracleCache`] view over the shared store, which is what makes the
//! per-job hit/miss scorecards in the run summary exact.

use crate::characterize::characterize_detector;
use crate::oracle_cache::{dataset_digest, oracle_digest, OracleCache};
use crate::prelude::*;
use crate::report::{
    render_fig5, render_fig6_panel, render_fig7_panel, render_fig8a, render_fig8b, render_table2,
    Table2Reference,
};
use crate::stats;
use crate::stats::median;
use crate::suite::{
    oracle_for, report_cache, run_baseline_campaign, run_nosh_campaign, run_r_campaign, Args, ARMS,
};
use av_defense::ids::AlarmKind;
use av_faults::{FaultKind, FaultPlan, FaultSpec};
use av_suite::api::{ErrorCode, EvalRequest};
use av_suite::serve::EvalService;
use av_suite::{ArtifactStore, Dag, DagError, Job, JobOutcome};
use robotack::safety_hijacker::{
    AttackFeatures, KinematicOracle, SafetyHijacker, SafetyHijackerConfig, SafetyOracle,
};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Table II: the six RoboTack campaigns plus the DS-5 random baseline,
/// with the paper's reference numbers inline.
pub fn table2(args: &Args, cache: &OracleCache) -> String {
    let sweep = args.sweep();
    eprintln!("table2: {} runs/campaign (quick={})", args.runs, args.quick);

    let references = [
        Table2Reference {
            k: "48",
            eb_pct: "53.5%",
            crash_pct: "31.7%",
        },
        Table2Reference {
            k: "14",
            eb_pct: "94.4%",
            crash_pct: "82.6%",
        },
        Table2Reference {
            k: "65",
            eb_pct: "37.3%",
            crash_pct: "17.3%",
        },
        Table2Reference {
            k: "32",
            eb_pct: "97.8%",
            crash_pct: "84.1%",
        },
        Table2Reference {
            k: "48",
            eb_pct: "94.6%",
            crash_pct: "—",
        },
        Table2Reference {
            k: "24",
            eb_pct: "78.5%",
            crash_pct: "—",
        },
    ];

    let mut rows = Vec::new();
    for ((scenario, vector, name), reference) in ARMS.iter().zip(references) {
        eprintln!("training oracle for {name} ...");
        let (oracle, desc) = oracle_for(*scenario, *vector, &sweep, cache);
        eprintln!("  {desc}");
        eprintln!("running campaign {name} ...");
        let result = run_r_campaign(
            name,
            *scenario,
            *vector,
            oracle,
            args.runs,
            args.seed,
            args.dispatch,
        );
        let crashes_apply = !name.contains("Move_In");
        rows.push((result, reference, crashes_apply));
    }

    report_cache(cache);
    eprintln!("running DS-5-Baseline-Random ...");
    let baseline = run_baseline_campaign(args.runs.max(24), args.seed + 5000, args.dispatch);

    let mut out = String::new();
    writeln!(out, "{}", render_table2(&rows, &baseline)).unwrap();
    out
}

/// Fig. 5: detector noise characterization (misdetection streak
/// distributions and normalized bbox-center error fits, per class).
pub fn fig5(args: &Args) -> String {
    // The paper characterizes ~10 minutes of 15 Hz video (~9000 frames).
    let frames = if args.quick { 2_000 } else { 9_000 };
    let c = characterize_detector(frames, args.seed);
    let mut out = String::new();
    writeln!(out, "{}", render_fig5(&c)).unwrap();
    out
}

/// Fig. 6: min safety potential boxplots, RoboTack vs RoboTack without the
/// safety hijacker, for DS-1/DS-2 × Disappear/Move_Out.
pub fn fig6(args: &Args, cache: &OracleCache) -> String {
    let sweep = args.sweep();
    let panels = [
        (
            ScenarioId::Ds1,
            AttackVector::Disappear,
            "(a) DS-1-Disappear",
            (19.0, 9.0),
        ),
        (
            ScenarioId::Ds1,
            AttackVector::MoveOut,
            "(b) DS-1-Move_Out",
            (19.0, 13.0),
        ),
        (
            ScenarioId::Ds2,
            AttackVector::Disappear,
            "(c) DS-2-Disappear",
            (7.0, 3.0),
        ),
        (
            ScenarioId::Ds2,
            AttackVector::MoveOut,
            "(d) DS-2-Move_Out",
            (9.0, 3.0),
        ),
    ];
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 6: impact of attack timing on min safety potential δ (m)\n"
    )
    .unwrap();
    for (scenario, vector, label, paper) in panels {
        eprintln!("training oracle for {label} ...");
        let (oracle, desc) = oracle_for(scenario, vector, &sweep, cache);
        eprintln!("  {desc}");
        let with_sh = run_r_campaign(
            "R",
            scenario,
            vector,
            oracle,
            args.runs,
            args.seed,
            args.dispatch,
        );
        let without_sh = run_nosh_campaign(
            "R w/o SH",
            scenario,
            vector,
            args.runs,
            args.seed + 77,
            args.dispatch,
        );
        writeln!(
            out,
            "{}",
            render_fig6_panel(label, &without_sh, &with_sh, paper)
        )
        .unwrap();
        let (eb_n, eb_w) = (with_sh.eb().1, without_sh.eb().1);
        let (cr_n, cr_w) = (with_sh.crashes().1, without_sh.crashes().1);
        writeln!(
            out,
            "  EB: {:.1}% vs {:.1}% (×{:.1}) | crashes: {:.1}% vs {:.1}% (×{:.1})\n",
            eb_n,
            eb_w,
            if eb_w > 0.0 { eb_n / eb_w } else { f64::NAN },
            cr_n,
            cr_w,
            if cr_w > 0.0 { cr_n / cr_w } else { f64::NAN },
        )
        .unwrap();
    }
    report_cache(cache);
    out
}

/// Fig. 7: time-steps K′ needed to move the perceived object in/out by Ω,
/// on vehicles (DS-1/DS-3) and pedestrians (DS-2/DS-4).
pub fn fig7(args: &Args, cache: &OracleCache) -> String {
    let sweep = args.sweep();
    let run = |scenario, vector, name: &str| {
        eprintln!("campaign {name} ...");
        let (oracle, _) = oracle_for(scenario, vector, &sweep, cache);
        run_r_campaign(
            name,
            scenario,
            vector,
            oracle,
            args.runs,
            args.seed,
            args.dispatch,
        )
        .k_primes()
    };
    let veh = [
        (
            "Disappear",
            run(ScenarioId::Ds1, AttackVector::Disappear, "DS-1-Disappear"),
            13.0,
        ),
        (
            "Move_Out",
            run(ScenarioId::Ds1, AttackVector::MoveOut, "DS-1-Move_Out"),
            6.0,
        ),
        (
            "Move_In",
            run(ScenarioId::Ds3, AttackVector::MoveIn, "DS-3-Move_In"),
            10.0,
        ),
    ];
    let ped = [
        (
            "Disappear",
            run(ScenarioId::Ds2, AttackVector::Disappear, "DS-2-Disappear"),
            4.0,
        ),
        (
            "Move_Out",
            run(ScenarioId::Ds2, AttackVector::MoveOut, "DS-2-Move_Out"),
            5.0,
        ),
        (
            "Move_In",
            run(ScenarioId::Ds4, AttackVector::MoveIn, "DS-4-Move_In"),
            3.0,
        ),
    ];
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 7: K′ (frames) to move the perceived object by Ω\n"
    )
    .unwrap();
    writeln!(
        out,
        "{}",
        render_fig7_panel("(a) on vehicles (DS-1, DS-3)", &veh)
    )
    .unwrap();
    writeln!(
        out,
        "{}",
        render_fig7_panel("(b) on pedestrians (DS-2, DS-4)", &ped)
    )
    .unwrap();
    report_cache(cache);
    out
}

/// Fig. 8: safety-hijacker NN quality — (a) attack success probability vs
/// binned prediction error; (b) predicted vs ground-truth δ after k
/// attacked frames (DS-1 Move_Out).
pub fn fig8(args: &Args, cache: &OracleCache) -> String {
    let sweep = args.sweep();
    let mut out = String::new();

    // Panel (a): per-run |predicted δ − realized min δ| vs success.
    eprintln!("training DS-1 / DS-2 Move_Out oracles ...");
    let (oracle_ds1, desc1) = oracle_for(ScenarioId::Ds1, AttackVector::MoveOut, &sweep, cache);
    eprintln!("  DS-1: {desc1}");
    let (oracle_ds2, desc2) = oracle_for(ScenarioId::Ds2, AttackVector::MoveOut, &sweep, cache);
    eprintln!("  DS-2: {desc2}");
    report_cache(cache);
    let mut samples: Vec<(f64, bool)> = Vec::new();
    for (scenario, oracle) in [
        (ScenarioId::Ds1, oracle_ds1.clone()),
        (ScenarioId::Ds2, oracle_ds2),
    ] {
        let result = run_r_campaign(
            "fig8a",
            scenario,
            AttackVector::MoveOut,
            oracle,
            args.runs,
            args.seed,
            args.dispatch,
        );
        for outcome in result.launched() {
            if let (Some(pred), Some(actual)) = (
                outcome.attack.predicted_delta,
                outcome.min_delta_attack_window,
            ) {
                // One-sided error: how much the attack under-delivered
                // (did worse, i.e. left a larger δ, than the NN promised).
                samples.push(((actual - pred).max(0.0), outcome.accident));
            }
        }
    }
    // The paper's bin edges: 0.67 m steps up to 6.7 m.
    let mut bins = Vec::new();
    for i in 1..=10 {
        let upper = 0.67 * f64::from(i);
        let lower = upper - 0.67;
        let in_bin: Vec<&(f64, bool)> = samples
            .iter()
            .filter(|(e, _)| *e >= lower && *e < upper)
            .collect();
        if !in_bin.is_empty() {
            let p = in_bin.iter().filter(|(_, s)| *s).count() as f64 / in_bin.len() as f64;
            bins.push((upper, p, in_bin.len()));
        }
    }
    writeln!(out, "{}", render_fig8a(&bins)).unwrap();

    // Panel (b): δ0 ≈ 41 m, sweep k, compare prediction to ground truth.
    let delta0 = 41.0;
    let ks: Vec<u32> = if args.quick {
        vec![20, 50, 80]
    } else {
        vec![10, 20, 30, 40, 50, 60, 70, 80, 90]
    };
    let mut rows = Vec::new();
    for k in ks {
        let outcome = SimSession::builder(ScenarioId::Ds1)
            .seed(args.seed + u64::from(k))
            .attacker(AttackerSpec::AtDelta {
                vector: Some(AttackVector::MoveOut),
                delta_inject: delta0,
                k,
            })
            .build()
            .run();
        if let (Some(features), Some(actual)) = (
            outcome.attack.features_at_launch,
            outcome.min_delta_attack_window,
        ) {
            let predicted = match &oracle_ds1 {
                OracleSpec::Nn(nn) => nn.predict_delta(&features, k),
                OracleSpec::Kinematic => KinematicOracle::default().predict_delta(&features, k),
            };
            rows.push((k, predicted, actual));
        }
    }
    writeln!(out, "{}", render_fig8b(&rows, delta0)).unwrap();
    out
}

/// Ablation studies for the design choices DESIGN.md calls out: the
/// trajectory-hijacker noise gate, the fusion LiDAR registration delay, the
/// SH launch threshold γ, and binary-vs-linear K search.
pub fn ablations(args: &Args, cache: &OracleCache) -> String {
    let runs = args.runs.min(40);
    let mut out = String::new();

    writeln!(
        out,
        "=== Ablation 1: trajectory-hijacker noise gate (σ fraction) ==="
    )
    .unwrap();
    writeln!(
        out,
        "(DS-3 Move_In, fixed timing; smaller gate → slower shift → larger K')\n"
    )
    .unwrap();
    writeln!(out, "σ fraction | K' median (frames) | EB rate").unwrap();
    for sigma in [0.25, 0.5, 1.0, 1.5] {
        let mut kprimes = Vec::new();
        let mut eb = 0u64;
        for seed in 0..runs {
            let mut cfg = RunConfig::new(ScenarioId::Ds3, seed);
            cfg.sigma_fraction = sigma;
            let out = SimSession::builder(ScenarioId::Ds3)
                .config(cfg)
                .attacker(AttackerSpec::AtDelta {
                    vector: Some(AttackVector::MoveIn),
                    delta_inject: 8.0,
                    k: 40,
                })
                .build()
                .run();
            if let Some(kp) = out.k_prime_ads {
                kprimes.push(f64::from(kp));
            }
            eb += u64::from(out.eb_after_attack);
        }
        writeln!(
            out,
            "  {sigma:>7.2}  | {:>18.0} | {:>5.1}%",
            median(&kprimes),
            100.0 * eb as f64 / runs as f64
        )
        .unwrap();
    }

    writeln!(out, "\n=== Ablation 2: fusion LiDAR registration delay ===").unwrap();
    writeln!(
        out,
        "(DS-1 Move_Out, fixed timing; fast re-registration defeats vehicle attacks)\n"
    )
    .unwrap();
    writeln!(out, "register (scans) | accident rate | min-δ median").unwrap();
    for register in [5u32, 15, 40, 80] {
        let mut accidents = 0u64;
        let mut deltas = Vec::new();
        for seed in 0..runs {
            let mut cfg = RunConfig::new(ScenarioId::Ds1, seed);
            cfg.fusion.lidar_register = register;
            let out = SimSession::builder(ScenarioId::Ds1)
                .config(cfg)
                .attacker(AttackerSpec::AtDelta {
                    vector: Some(AttackVector::MoveOut),
                    delta_inject: 30.0,
                    k: 90,
                })
                .build()
                .run();
            accidents += u64::from(out.accident);
            if let Some(d) = out.min_delta_post_attack {
                deltas.push(d);
            }
        }
        writeln!(
            out,
            "  {register:>14} | {:>12.1}% | {:>8.1} m",
            100.0 * accidents as f64 / runs as f64,
            median(&deltas)
        )
        .unwrap();
    }

    writeln!(
        out,
        "\n=== Ablation 3: safety-hijacker launch threshold γ ==="
    )
    .unwrap();
    writeln!(out, "(DS-2 Move_Out with the trained NN oracle)\n").unwrap();
    let (oracle, desc) = oracle_for(ScenarioId::Ds2, AttackVector::MoveOut, &args.sweep(), cache);
    report_cache(cache);
    writeln!(out, "oracle: {desc}\n").unwrap();
    writeln!(out, "γ (m) | launched | EB rate | accident rate").unwrap();
    for gamma in [2.0, 4.0, 8.0] {
        let mut launched = 0u64;
        let mut eb = 0u64;
        let mut accidents = 0u64;
        for seed in 0..runs {
            let mut cfg = RunConfig::new(ScenarioId::Ds2, 4000 + seed);
            cfg.sh.gamma = gamma;
            let out = SimSession::builder(ScenarioId::Ds2)
                .config(cfg)
                .attacker(AttackerSpec::RoboTack {
                    vector: Some(AttackVector::MoveOut),
                    oracle: oracle.clone(),
                })
                .build()
                .run();
            launched += u64::from(out.attack.launched_at.is_some());
            eb += u64::from(out.eb_after_attack);
            accidents += u64::from(out.accident);
        }
        writeln!(
            out,
            "  {gamma:>3.0} | {launched:>8} | {:>6.1}% | {:>6.1}%",
            100.0 * eb as f64 / launched.max(1) as f64,
            100.0 * accidents as f64 / launched.max(1) as f64
        )
        .unwrap();
    }

    writeln!(
        out,
        "\n=== Ablation 4: K search — binary (Eq. 2) vs linear ===\n"
    )
    .unwrap();
    let sh = SafetyHijacker::new(KinematicOracle::default(), SafetyHijackerConfig::default());
    let mut agree = 0;
    let mut total = 0;
    for delta10 in 5..200 {
        let f = AttackFeatures {
            delta: f64::from(delta10) / 2.0,
            v_rel_lon: -5.0,
            v_rel_lat: 0.0,
            a_rel_lon: 0.0,
        };
        let b = sh.decide(&f).map(|d| d.k);
        let l = sh.decide_linear(&f).map(|d| d.k);
        agree += u64::from(b == l);
        total += 1;
    }
    writeln!(
        out,
        "binary == linear on {agree}/{total} states (O(log K) vs O(K) oracle calls)"
    )
    .unwrap();
    out
}

/// The countermeasure study: IDS false positives on golden runs, IDS vs
/// RoboTack's stealthy perturbations, and IDS vs a naive non-stealthy
/// attacker.
pub fn defense(args: &Args, cache: &OracleCache) -> String {
    let runs = args.runs.min(60);
    let sweep = args.sweep();
    let mut out = String::new();

    writeln!(
        out,
        "=== IDS false positives (golden runs, {runs} runs/scenario) ===\n"
    )
    .unwrap();
    writeln!(
        out,
        "scenario | runs w/ any alarm | innovation | streak | cross-sensor | kinematics"
    )
    .unwrap();
    for scenario in ScenarioId::ALL {
        let mut any = 0u64;
        let mut by_kind = [0u64; 4];
        for seed in 0..runs {
            let run_out = SimSession::builder(scenario).seed(seed).build().run();
            any += u64::from(!run_out.ids_alarms.is_empty());
            for a in &run_out.ids_alarms {
                let idx = match a.kind {
                    AlarmKind::Innovation => 0,
                    AlarmKind::Streak => 1,
                    AlarmKind::CrossSensor => 2,
                    AlarmKind::Kinematics => 3,
                };
                by_kind[idx] += 1;
            }
        }
        writeln!(
            out,
            "{:<8} | {:>17} | {:>10} | {:>6} | {:>12} | {:>10}",
            scenario.name(),
            any,
            by_kind[0],
            by_kind[1],
            by_kind[2],
            by_kind[3]
        )
        .unwrap();
    }

    writeln!(out, "\n=== IDS vs RoboTack ({runs} runs/arm) ===\n").unwrap();
    writeln!(
        out,
        "arm                  | launched | flagged during attack | by monitor"
    )
    .unwrap();
    for (scenario, vector, name) in ARMS {
        let (oracle, _) = oracle_for(scenario, vector, &sweep, cache);
        let mut launched = 0u64;
        let mut flagged = 0u64;
        let mut kinds: std::collections::HashMap<AlarmKind, u64> = Default::default();
        for seed in 0..runs {
            let run_out = SimSession::builder(scenario)
                .seed(7000 + seed)
                .attacker(AttackerSpec::RoboTack {
                    vector: Some(vector),
                    oracle: oracle.clone(),
                })
                .build()
                .run();
            let Some(t0) = run_out.attack.launched_at else {
                continue;
            };
            launched += 1;
            let t1 = t0 + f64::from(run_out.attack.k) / 15.0 + 1.0;
            let during: Vec<_> = run_out
                .ids_alarms
                .iter()
                .filter(|a| a.t >= t0 && a.t <= t1)
                .collect();
            flagged += u64::from(!during.is_empty());
            for a in during {
                *kinds.entry(a.kind).or_default() += 1;
            }
        }
        let mut kind_list: Vec<String> = kinds.iter().map(|(k, n)| format!("{k:?}×{n}")).collect();
        kind_list.sort();
        writeln!(
            out,
            "{name:<20} | {launched:>8} | {:>11} ({:>5.1}%) | {}",
            flagged,
            100.0 * flagged as f64 / launched.max(1) as f64,
            kind_list.join(", ")
        )
        .unwrap();
    }

    report_cache(cache);

    writeln!(out, "\n=== IDS vs a non-stealthy attacker ===\n").unwrap();
    writeln!(
        out,
        "A naive Disappear that ignores the misdetection envelope (K = 62 \
             frames on a pedestrian, envelope 31):"
    )
    .unwrap();
    let mut flagged = 0u64;
    for seed in 0..runs {
        let run_out = SimSession::builder(ScenarioId::Ds2)
            .seed(seed)
            .attacker(AttackerSpec::AtDelta {
                vector: Some(AttackVector::Disappear),
                delta_inject: 24.0,
                k: 62,
            })
            .build()
            .run();
        if run_out.attack.launched_at.is_some() {
            flagged += u64::from(
                run_out
                    .ids_alarms
                    .iter()
                    .any(|a| a.kind == AlarmKind::Streak),
            );
        }
    }
    writeln!(out, "  streak-flagged in {flagged}/{runs} runs").unwrap();
    out
}

/// One fault-intensity level of the resilience sweep.
struct Intensity {
    name: &'static str,
    plan: FaultPlan,
}

fn intensities() -> Vec<Intensity> {
    vec![
        Intensity {
            name: "healthy",
            plan: FaultPlan::none(),
        },
        Intensity {
            name: "mild",
            plan: FaultPlan::none()
                .with(FaultSpec::always(FaultKind::CameraFrameDrop {
                    probability: 0.05,
                }))
                .with(FaultSpec::always(FaultKind::CameraNoise { sigma_px: 1.0 })),
        },
        Intensity {
            name: "moderate",
            plan: FaultPlan::none()
                .with(FaultSpec::always(FaultKind::CameraFrameDrop {
                    probability: 0.15,
                }))
                .with(FaultSpec::always(FaultKind::CameraNoise { sigma_px: 2.5 }))
                .with(FaultSpec::always(FaultKind::LidarDropout {
                    probability: 0.15,
                }))
                .with(FaultSpec::always(FaultKind::GpsBias {
                    bias: 0.5,
                    drift_per_s: 0.02,
                })),
        },
        Intensity {
            name: "severe",
            plan: FaultPlan::none()
                .with(FaultSpec::always(FaultKind::CameraFrameDrop {
                    probability: 0.3,
                }))
                .with(FaultSpec::always(FaultKind::CameraFreeze {
                    probability: 0.02,
                    mean_frames: 6.0,
                }))
                .with(FaultSpec::always(FaultKind::CameraNoise { sigma_px: 4.0 }))
                .with(FaultSpec::always(FaultKind::LidarDropout {
                    probability: 0.4,
                }))
                .with(FaultSpec::always(FaultKind::GpsBias {
                    bias: 1.5,
                    drift_per_s: 0.05,
                }))
                .with(FaultSpec::always(FaultKind::DetectorBlackout {
                    probability: 0.01,
                    mean_frames: 4.0,
                })),
        },
    ]
}

fn divergences(outcomes: &[RunOutcome]) -> Vec<f64> {
    outcomes
        .iter()
        .filter_map(|o| o.replica_divergence)
        .collect()
}

/// The resilience study: does the ADS degrade gracefully under sensor
/// faults, and does RoboTack's mirrored replica (§III-D) survive them?
///
/// The RoboTack arms run with the same trained NN oracle the other
/// experiments use (cache-aware, honoring `--cache-dir`/`--no-cache`),
/// falling back to the kinematic oracle only when training data is scarce.
pub fn resilience(args: &Args, cache: &OracleCache) -> String {
    let runs = if args.quick {
        args.runs.min(8)
    } else {
        args.runs.min(60)
    };
    let sweep = args.sweep();

    // The sweep's 〈scenario, attacker〉 arms, each RoboTack arm with its
    // trained oracle.
    let mut arms: Vec<(&'static str, ScenarioId, AttackerSpec)> =
        vec![("DS-1-golden", ScenarioId::Ds1, AttackerSpec::None)];
    for (name, scenario, vector) in [
        ("DS-1-Disappear-R", ScenarioId::Ds1, AttackVector::Disappear),
        ("DS-2-Disappear-R", ScenarioId::Ds2, AttackVector::Disappear),
        ("DS-3-Move_In-R", ScenarioId::Ds3, AttackVector::MoveIn),
    ] {
        eprintln!("training oracle for {name} ...");
        let (oracle, desc) = oracle_for(scenario, vector, &sweep, cache);
        eprintln!("  {desc}");
        arms.push((
            name,
            scenario,
            AttackerSpec::RoboTack {
                vector: Some(vector),
                oracle,
            },
        ));
    }
    report_cache(cache);

    let mut out = String::new();
    writeln!(
        out,
        "## Sensor-fault resilience ({runs} runs/cell, base seed {})\n",
        args.seed
    )
    .unwrap();
    writeln!(
        out,
        "| arm | faults | launched | EB % | accident % | mean div (m) | max div (m) \
         | frames lost | stale frames |"
    )
    .unwrap();
    writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|---:|").unwrap();

    for (name, scenario, attacker) in arms {
        for intensity in intensities() {
            let campaign = Campaign::new(
                format!("{name}/{}", intensity.name),
                scenario,
                attacker.clone(),
                runs,
                args.seed,
            )
            .with_faults(intensity.plan.clone());
            let result = run_campaign_dispatch(&campaign, default_threads(), args.dispatch)
                .expect("default_threads() is nonzero");

            let launched = result.n_launched();
            let (_, eb_pct) = result.eb();
            let (_, acc_pct) = result.crashes();
            let divs = divergences(&result.outcomes);
            let (mean_div, max_div) = if divs.is_empty() {
                ("-".to_string(), "-".to_string())
            } else {
                (
                    format!("{:.2}", stats::mean(&divs)),
                    format!("{:.2}", divs.iter().copied().fold(f64::MIN, f64::max)),
                )
            };
            let lost: u64 = result
                .outcomes
                .iter()
                .map(|o| {
                    u64::from(o.faults.camera_frames_dropped)
                        + u64::from(o.faults.camera_frames_frozen)
                })
                .sum();
            let stale: u64 = result.outcomes.iter().map(|o| o.stale_frames).sum();

            writeln!(
                out,
                "| {name} | {} | {launched}/{runs} | {eb_pct:.0} | {acc_pct:.0} \
                 | {mean_div} | {max_div} | {lost} | {stale} |",
                intensity.name
            )
            .unwrap();
        }
    }

    writeln!(
        out,
        "\nDivergence is the peak distance (m) between the ADS's and the \
         malware replica's ego-relative estimate of the scripted target; '-' \
         means the attacker keeps no replica or the target was never tracked \
         by both. 'frames lost' counts camera frames the injector dropped or \
         froze across all runs; 'stale frames' counts frozen replays the ADS \
         perception rejected (coasting instead of corrupting its tracker)."
    )
    .unwrap();
    out
}

/// The coverage-guided boundary search for one attack vector
/// ([`crate::search`]): renders the deterministic frontier report. The
/// suite's `search:⟨vector⟩` jobs and the `search` binary both run this.
pub fn search_report(vector: AttackVector, args: &Args, cache: &OracleCache) -> String {
    let config = crate::search::SearchConfig::for_args(vector, args);
    crate::search::run_search(&config, &args.sweep(), cache).render()
}

/// The six 〈scenario, vector〉 oracle arms the report jobs share — exactly
/// the Table II matrix.
fn oracle_arms() -> [(ScenarioId, AttackVector); 6] {
    [
        (ScenarioId::Ds1, AttackVector::Disappear),
        (ScenarioId::Ds2, AttackVector::Disappear),
        (ScenarioId::Ds1, AttackVector::MoveOut),
        (ScenarioId::Ds2, AttackVector::MoveOut),
        (ScenarioId::Ds3, AttackVector::MoveIn),
        (ScenarioId::Ds4, AttackVector::MoveIn),
    ]
}

fn dataset_job_id(scenario: ScenarioId, vector: AttackVector) -> String {
    format!("dataset:{}:{}", scenario.name(), vector.name())
}

fn oracle_job_id(scenario: ScenarioId, vector: AttackVector) -> String {
    format!("oracle:{}:{}", scenario.name(), vector.name())
}

fn search_job_id(vector: AttackVector) -> String {
    format!("search:{}", vector.name())
}

fn oracle_deps(arms: &[(ScenarioId, AttackVector)]) -> Vec<String> {
    arms.iter().map(|&(s, v)| oracle_job_id(s, v)).collect()
}

/// Wraps one report function as a stdout-emitting suite job with its own
/// cache view over the shared store.
fn report_job(
    id: &str,
    args: &Args,
    store: &Arc<ArtifactStore>,
    render: impl Fn(&Args, &OracleCache) -> String + Send + Sync + 'static,
) -> Job {
    let args = args.clone();
    let store = store.clone();
    Job::new(id, move || {
        let cache = OracleCache::over(store.clone());
        let stdout = render(&args, &cache);
        let (artifact_hits, artifact_misses) = cache.artifact_totals();
        JobOutcome {
            stdout,
            artifact_hits,
            artifact_misses,
            artifacts: Vec::new(),
        }
    })
    .emits_stdout()
}

/// The full evaluation DAG over a shared artifact store: dataset collection
/// and oracle training as explicit preparation jobs, then every paper
/// artifact as a stdout-emitting report job (declared in the order their
/// reports should print).
pub fn paper_dag(args: &Args, store: &Arc<ArtifactStore>) -> Result<Dag, DagError> {
    let sweep = args.sweep();
    let mut jobs = Vec::new();

    for (scenario, vector) in oracle_arms() {
        let id = dataset_job_id(scenario, vector);
        let store_ = store.clone();
        let sweep_ = sweep.clone();
        jobs.push(
            Job::new(id.clone(), move || {
                let cache = OracleCache::over(store_.clone());
                let data = cache.dataset_for(scenario, vector, &sweep_);
                let (artifact_hits, artifact_misses) = cache.artifact_totals();
                JobOutcome {
                    stdout: String::new(),
                    artifact_hits,
                    artifact_misses,
                    artifacts: vec![(dataset_job_id(scenario, vector), dataset_digest(&data))],
                }
            })
            .input(format!("sweep:{}:{}", scenario.name(), vector.name()))
            .output(id),
        );
    }

    for (scenario, vector) in oracle_arms() {
        let id = oracle_job_id(scenario, vector);
        let dataset_id = dataset_job_id(scenario, vector);
        let store_ = store.clone();
        let sweep_ = sweep.clone();
        jobs.push(
            Job::new(id.clone(), move || {
                let cache = OracleCache::over(store_.clone());
                let trained = cache.oracle_for(scenario, vector, &sweep_);
                let (artifact_hits, artifact_misses) = cache.artifact_totals();
                JobOutcome {
                    stdout: String::new(),
                    artifact_hits,
                    artifact_misses,
                    artifacts: trained
                        .map(|t| vec![(oracle_job_id(scenario, vector), oracle_digest(&t))])
                        .unwrap_or_default(),
                }
            })
            .dep(dataset_id.clone())
            .input(dataset_id)
            .output(id),
        );
    }

    let all = oracle_arms();
    let fig6_arms = [
        (ScenarioId::Ds1, AttackVector::Disappear),
        (ScenarioId::Ds1, AttackVector::MoveOut),
        (ScenarioId::Ds2, AttackVector::Disappear),
        (ScenarioId::Ds2, AttackVector::MoveOut),
    ];
    let fig8_arms = [
        (ScenarioId::Ds1, AttackVector::MoveOut),
        (ScenarioId::Ds2, AttackVector::MoveOut),
    ];
    let ablations_arms = [(ScenarioId::Ds2, AttackVector::MoveOut)];
    let resilience_arms = [
        (ScenarioId::Ds1, AttackVector::Disappear),
        (ScenarioId::Ds2, AttackVector::Disappear),
        (ScenarioId::Ds3, AttackVector::MoveIn),
    ];

    jobs.push(
        report_job("table2", args, store, table2)
            .deps(oracle_deps(&all))
            .output("report:table2"),
    );
    {
        let args_ = args.clone();
        jobs.push(
            Job::new("fig5", move || JobOutcome {
                stdout: fig5(&args_),
                ..JobOutcome::default()
            })
            .emits_stdout()
            .input("detector noise model")
            .output("report:fig5"),
        );
    }
    jobs.push(
        report_job("fig6", args, store, fig6)
            .deps(oracle_deps(&fig6_arms))
            .output("report:fig6"),
    );
    jobs.push(
        report_job("fig7", args, store, fig7)
            .deps(oracle_deps(&all))
            .output("report:fig7"),
    );
    jobs.push(
        report_job("fig8", args, store, fig8)
            .deps(oracle_deps(&fig8_arms))
            .output("report:fig8"),
    );
    jobs.push(
        report_job("ablations", args, store, ablations)
            .deps(oracle_deps(&ablations_arms))
            .output("report:ablations"),
    );
    jobs.push(
        report_job("defense", args, store, defense)
            .deps(oracle_deps(&all))
            .output("report:defense"),
    );
    jobs.push(
        report_job("resilience", args, store, resilience)
            .deps(oracle_deps(&resilience_arms))
            .output("report:resilience"),
    );

    // Boundary search, one job per vector. A search uses the trained NN
    // oracle only for the Table II arms under its vector (off-matrix roots
    // fall back to the kinematic oracle), so those oracle jobs are its
    // preparation dependencies.
    for vector in AttackVector::ALL {
        let search_arms: Vec<(ScenarioId, AttackVector)> = oracle_arms()
            .iter()
            .copied()
            .filter(|&(_, v)| v == vector)
            .collect();
        let id = search_job_id(vector);
        let args_ = args.clone();
        let store_ = store.clone();
        jobs.push(
            Job::new(id.clone(), move || {
                let cache = OracleCache::over(store_.clone());
                let config = crate::search::SearchConfig::for_args(vector, &args_);
                let report = crate::search::run_search(&config, &args_.sweep(), &cache);
                // The scorecard counts the search's evaluation-summary
                // lookups alongside the oracle/dataset ones: a warm store
                // replays the whole search as artifact hits.
                let (artifact_hits, artifact_misses) = cache.artifact_totals();
                JobOutcome {
                    stdout: report.render(),
                    artifact_hits: artifact_hits + report.eval_hits,
                    artifact_misses: artifact_misses + report.eval_misses,
                    artifacts: Vec::new(),
                }
            })
            .emits_stdout()
            .deps(oracle_deps(&search_arms))
            .output(format!("report:{id}")),
        );
    }

    Dag::new(jobs)
}

/// Maps a wire [`EvalRequest`] onto the experiment options it describes —
/// the inverse of [`crate::suite::SuiteArgs::to_request`]. Run shape
/// (`runs`/`quick`/`seed`/`batch`) comes from the request; cache placement
/// (`cache_dir`/`no_cache`) stays with the daemon's `base`, because the
/// store is the shared resource requests dedup against, not something a
/// client may relocate.
pub fn request_args(req: &EvalRequest, base: &Args) -> Args {
    Args {
        runs: req.runs,
        quick: req.quick,
        seed: req.seed,
        cache_dir: base.cache_dir.clone(),
        no_cache: base.no_cache,
        dispatch: match req.batch {
            Some(batch_size) => DispatchMode::Batched { batch_size },
            None => DispatchMode::WorkStealing,
        },
    }
}

/// The [`EvalService`] the `suite` binary serves: [`paper_dag`] subgraphs
/// over one shared [`ArtifactStore`]. Canonical DAGs are cached per
/// configuration key, so concurrent requests with the same run shape
/// validate against one DAG instead of rebuilding it per request.
pub struct PaperEvalService {
    base: Args,
    store: Arc<ArtifactStore>,
    dags: Mutex<HashMap<u64, Arc<Dag>>>,
}

impl PaperEvalService {
    /// A service executing requests against `store`, with `base` supplying
    /// the per-daemon options requests don't carry (cache placement).
    pub fn new(base: Args, store: Arc<ArtifactStore>) -> PaperEvalService {
        PaperEvalService {
            base,
            store,
            dags: Mutex::new(HashMap::new()),
        }
    }

    /// The shared store every request executes against.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    fn canonical_dag(&self, args: &Args) -> Result<Arc<Dag>, DagError> {
        let mut dags = self.dags.lock().expect("canonical DAG cache lock");
        match dags.get(&args.config_key()) {
            Some(dag) => Ok(dag.clone()),
            None => {
                let dag = Arc::new(paper_dag(args, &self.store)?);
                dags.insert(args.config_key(), dag.clone());
                Ok(dag)
            }
        }
    }
}

impl EvalService for PaperEvalService {
    fn dag_for(&self, req: &EvalRequest) -> Result<Dag, (ErrorCode, String)> {
        let args = request_args(req, &self.base);
        let canonical = self
            .canonical_dag(&args)
            .map_err(|e| (ErrorCode::BadRequest, e.to_string()))?;
        if req.only.is_empty() {
            return Ok((*canonical).clone());
        }
        canonical.subgraph(&req.only).map_err(|e| match e {
            DagError::UnknownTarget(_) => (ErrorCode::UnknownJob, e.to_string()),
            other => (ErrorCode::BadRequest, other.to_string()),
        })
    }

    fn dedup_counters(&self) -> (u64, u64) {
        self.store.dedup_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dag_has_the_expected_shape() {
        let args = Args {
            runs: 2,
            quick: true,
            ..Args::default()
        };
        let store = Arc::new(ArtifactStore::disabled());
        let dag = paper_dag(&args, &store).expect("valid DAG");
        assert_eq!(dag.len(), 6 + 6 + 8 + 3);

        let stdout_jobs: Vec<&str> = dag
            .jobs()
            .iter()
            .filter(|j| j.is_stdout_job())
            .map(Job::id)
            .collect();
        assert_eq!(
            stdout_jobs,
            [
                "table2",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "ablations",
                "defense",
                "resilience",
                "search:Move_Out",
                "search:Move_In",
                "search:Disappear"
            ],
            "report order is the paper's artifact order, then the searches"
        );

        // Every oracle job depends on its dataset job.
        for (scenario, vector) in oracle_arms() {
            let i = dag
                .position(&oracle_job_id(scenario, vector))
                .expect("oracle job exists");
            assert_eq!(
                dag.jobs()[i].dep_ids(),
                [dataset_job_id(scenario, vector)],
                "oracle trains on its collected dataset"
            );
        }

        // fig5 is the only report with no oracle dependency.
        let i = dag.position("fig5").expect("fig5 exists");
        assert!(dag.jobs()[i].dep_ids().is_empty());
        let i = dag.position("table2").expect("table2 exists");
        assert_eq!(dag.jobs()[i].dep_ids().len(), 6);

        // Each search depends on exactly its vector's Table II oracles.
        let i = dag.position("search:Move_Out").expect("search exists");
        assert_eq!(
            dag.jobs()[i].dep_ids(),
            ["oracle:DS-1:Move_Out", "oracle:DS-2:Move_Out"],
            "search preparation is the vector's oracle arms"
        );
    }

    #[test]
    fn only_table2_subgraph_is_datasets_oracles_table2() {
        let args = Args::default();
        let store = Arc::new(ArtifactStore::disabled());
        let dag = paper_dag(&args, &store)
            .expect("valid DAG")
            .subgraph(&["table2".into()])
            .expect("subgraph");
        assert_eq!(dag.len(), 13, "6 datasets + 6 oracles + table2");
        assert!(dag.position("fig5").is_none());
    }

    #[test]
    fn request_args_carries_run_shape_and_keeps_daemon_cache_placement() {
        let base = Args {
            cache_dir: Some(std::path::PathBuf::from("/tmp/daemon-cache")),
            no_cache: false,
            ..Args::default()
        };
        let req = EvalRequest {
            runs: 7,
            quick: true,
            seed: 99,
            batch: Some(4),
            ..EvalRequest::default()
        };
        let args = request_args(&req, &base);
        assert_eq!((args.runs, args.quick, args.seed), (7, true, 99));
        assert!(matches!(
            args.dispatch,
            DispatchMode::Batched { batch_size: 4 }
        ));
        assert_eq!(args.cache_dir, base.cache_dir, "store stays the daemon's");

        // The round trip through SuiteArgs::to_request is lossless for the
        // request-carried fields.
        let suite = crate::suite::SuiteArgs {
            base: args.clone(),
            jobs: 3,
            ..crate::suite::SuiteArgs::default()
        };
        let back = suite.to_request();
        assert_eq!(
            (back.runs, back.quick, back.seed, back.batch, back.jobs),
            (7, true, 99, Some(4), 3)
        );
    }

    #[test]
    fn service_validates_requests_into_subgraphs_with_typed_errors() {
        let service = PaperEvalService::new(Args::default(), Arc::new(ArtifactStore::disabled()));

        let full = service
            .dag_for(&EvalRequest::default())
            .expect("full DAG for an unrestricted request");
        assert_eq!(full.len(), 6 + 6 + 8 + 3);

        let search = service
            .dag_for(&EvalRequest {
                only: vec!["search:Move_In".into()],
                ..EvalRequest::default()
            })
            .expect("search subgraph");
        assert_eq!(
            search.len(),
            5,
            "2 datasets + 2 oracles + the Move_In search"
        );

        let table2 = service
            .dag_for(&EvalRequest {
                only: vec!["table2".into()],
                ..EvalRequest::default()
            })
            .expect("table2 subgraph");
        assert_eq!(table2.len(), 13);

        let (code, message) = service
            .dag_for(&EvalRequest {
                only: vec!["fig99".into()],
                ..EvalRequest::default()
            })
            .expect_err("unknown job is rejected");
        assert_eq!(code, ErrorCode::UnknownJob);
        assert!(message.contains("fig99"), "names the offender: {message}");

        // Same run shape → one cached canonical DAG; different shape → two.
        assert_eq!(service.dags.lock().unwrap().len(), 1);
        service
            .dag_for(&EvalRequest {
                quick: true,
                ..EvalRequest::default()
            })
            .expect("quick DAG");
        assert_eq!(service.dags.lock().unwrap().len(), 2);
    }
}
