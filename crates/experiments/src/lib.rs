//! # av-experiments — evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VI):
//!
//! - [`session`]: the [`SimSession`] builder — one end-to-end simulation run
//!   (scenario world, multi-rate sensor scheduling, the man-in-the-middle
//!   attacker on the camera link, the ADS, ground-truth safety recording,
//!   the collision halt) with an optional `av-telemetry` handle observing
//!   every pipeline stage.
//! - [`runner`]: the run-level types (configuration, attacker spec,
//!   outcome); [`SimSession`] is the only entry point for executing a run.
//! - [`campaign`]: seeded batches of runs with the Table II / Fig. 6 / Fig. 7
//!   metrics, parallelized with crossbeam; per-worker metrics registries are
//!   merged into the campaign result.
//! - [`prelude`]: one-stop imports for experiment binaries.
//! - [`train_sh`]: the safety-hijacker training pipeline (§IV-B) — δ_inject/k
//!   sweeps to collect the ADS-response dataset, then Adam training of the
//!   per-vector NN oracle.
//! - [`oracle_cache`]: views over a content-addressed artifact store of
//!   trained oracles *and* collected sweep datasets, so the suite binaries
//!   collect and train each 〈scenario, vector〉 arm once instead of once
//!   per figure.
//! - [`jobs`]: every table/figure as a library function returning its
//!   stdout report, plus the full evaluation as an `av-suite` job DAG over
//!   one shared artifact store (the `suite` binary runs it; the per-figure
//!   binaries are thin wrappers over the same functions).
//! - [`search`]: coverage-guided boundary search over generated scenarios
//!   (`av-scenarios` specs): a seeded MAP-elites loop that mutates spec
//!   parameters toward the attack-success / safety-violation boundary,
//!   evaluating candidates as batched campaigns with store-cached
//!   evaluation summaries. Surfaced as the suite's `search:*` jobs and the
//!   `search` binary.
//! - [`stats`]: distribution fitting (exponential / normal, as in Fig. 5),
//!   percentiles and box-plot summaries.
//! - [`report`]: plain-text renderers that print each table/figure in the
//!   paper's shape next to the paper's reference numbers.
//!
//! Binaries: `table2`, `fig5`, `fig6`, `fig7`, `fig8`, `ablations`,
//! `defense`, `resilience` (one per experiment), `suite` (the whole
//! evaluation as one resumable job DAG on a shared worker pool) and `trace`
//! (replay one run with full telemetry: JSONL event stream + per-stage
//! latency table).

#![warn(missing_docs)]

pub mod batch;
pub mod campaign;
pub mod characterize;
pub mod jobs;
pub mod oracle_cache;
pub mod prelude;
pub mod report;
pub mod runner;
pub mod search;
pub mod session;
pub mod stats;
pub mod suite;
pub mod train_sh;

pub use batch::LanePool;
pub use campaign::{Campaign, CampaignError, CampaignResult};
pub use oracle_cache::{cache_key, OracleCache};
pub use runner::{AttackerSpec, RunConfig, RunOutcome};
pub use search::{run_search, SearchConfig, SearchReport};
pub use session::{SessionWorker, SimSession, SimSessionBuilder};
pub use train_sh::{train_oracle, TrainedOracle};
