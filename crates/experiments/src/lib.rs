//! # av-experiments — evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VI):
//!
//! - [`runner`]: one end-to-end simulation run — scenario world, multi-rate
//!   sensor scheduling, the man-in-the-middle attacker on the camera link,
//!   the ADS, ground-truth safety recording, and the collision halt.
//! - [`campaign`]: seeded batches of runs with the Table II / Fig. 6 / Fig. 7
//!   metrics, parallelized with crossbeam.
//! - [`train_sh`]: the safety-hijacker training pipeline (§IV-B) — δ_inject/k
//!   sweeps to collect the ADS-response dataset, then Adam training of the
//!   per-vector NN oracle.
//! - [`stats`]: distribution fitting (exponential / normal, as in Fig. 5),
//!   percentiles and box-plot summaries.
//! - [`report`]: plain-text renderers that print each table/figure in the
//!   paper's shape next to the paper's reference numbers.
//!
//! Binaries: `table2`, `fig5`, `fig6`, `fig7`, `fig8` (one per experiment).

#![warn(missing_docs)]

pub mod campaign;
pub mod characterize;
pub mod report;
pub mod runner;
pub mod stats;
pub mod suite;
pub mod train_sh;

pub use campaign::{Campaign, CampaignResult};
pub use runner::{run_once, AttackerSpec, RunConfig, RunOutcome};
pub use train_sh::{train_oracle, TrainedOracle};
