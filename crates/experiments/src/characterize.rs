//! Detector characterization drive (Fig. 5, §VI-A).
//!
//! The paper generates ten minutes of driving video and measures (a) how many
//! consecutive frames objects go misdetected (IoU < 60 %) and (b) the
//! distribution of bounding-box-center errors normalized by box size. This
//! module reproduces the measurement over the simulated detector: a static
//! characterization scene with vehicles and pedestrians at representative
//! distances, observed for the requested number of frames.
//!
//! Measurement conventions (documented deviations from the paper's §VI-A
//! wording, chosen so the measured fits recover the *injected* Fig. 5
//! distributions): a "misdetection" is a frame where the detector emits no
//! box for the object (detection failure), and center errors are taken for
//! every emitted detection matched to its object — the paper's
//! "overlapping boxes only" filter would truncate the pedestrian
//! distribution (σ_x ≈ 2 box widths means most detections do not overlap
//! their ground truth box at all).

use av_perception::calibration::DetectorCalibration;
use av_perception::detector::Detector;
use av_sensing::camera::Camera;
use av_sensing::frame::capture;
use av_simkit::actor::{Actor, ActorId, ActorKind};
use av_simkit::behavior::Behavior;
use av_simkit::math::Vec2;
use av_simkit::rng::run_rng;
use av_simkit::road::Road;
use av_simkit::world::World;
use std::collections::HashMap;

/// Raw characterization measurements, per class.
#[derive(Debug, Clone, Default)]
pub struct DetectorCharacterization {
    /// Continuous misdetection streak lengths for pedestrians (frames).
    pub ped_streaks: Vec<f64>,
    /// Continuous misdetection streak lengths for vehicles (frames).
    pub veh_streaks: Vec<f64>,
    /// Normalized bbox-center x errors, vehicles.
    pub veh_dx: Vec<f64>,
    /// Normalized bbox-center y errors, vehicles.
    pub veh_dy: Vec<f64>,
    /// Normalized bbox-center x errors, pedestrians.
    pub ped_dx: Vec<f64>,
    /// Normalized bbox-center y errors, pedestrians.
    pub ped_dy: Vec<f64>,
    /// Camera frames observed.
    pub frames: u64,
}

/// Builds the characterization scene: vehicles and pedestrians at the
/// distances where the scenario interactions happen.
fn characterization_world() -> World {
    let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 0.0, Behavior::Ego);
    let mut world = World::new(Road::default(), ego);
    let actors = [
        (1, ActorKind::Car, 25.0, 0.0),
        (2, ActorKind::Car, 45.0, 3.5),
        (3, ActorKind::Truck, 70.0, -3.5),
        (4, ActorKind::Pedestrian, 20.0, 3.0),
        (5, ActorKind::Pedestrian, 35.0, -4.5),
        (6, ActorKind::Pedestrian, 50.0, 5.0),
    ];
    for (id, kind, x, y) in actors {
        world
            .add_actor(Actor::new(
                ActorId(id),
                kind,
                Vec2::new(x, y),
                0.0,
                Behavior::Parked,
            ))
            .expect("unique ids");
    }
    world
}

/// Observes the detector for `frames` camera frames and collects the Fig. 5
/// measurements. Deterministic per `seed`.
pub fn characterize_detector(frames: u64, seed: u64) -> DetectorCharacterization {
    let world = characterization_world();
    let camera = Camera::default();
    let mut detector = Detector::new(DetectorCalibration::paper());
    let mut rng = run_rng(seed, 0xF165);

    let mut result = DetectorCharacterization {
        frames,
        ..Default::default()
    };
    // Per-actor running streak length.
    let mut streaks: HashMap<ActorId, u64> = HashMap::new();

    for seq in 0..frames {
        let frame = capture(&camera, &world, seq, false);
        let detections = detector.detect(&frame, &mut rng);
        for tb in &frame.truth {
            let det = detections.iter().find(|d| d.provenance == Some(tb.actor));
            if det.is_some() {
                if let Some(len) = streaks.remove(&tb.actor) {
                    let out = if tb.kind.is_vehicle() {
                        &mut result.veh_streaks
                    } else {
                        &mut result.ped_streaks
                    };
                    out.push(len as f64);
                }
            } else {
                *streaks.entry(tb.actor).or_insert(0) += 1;
            }
            // Center errors over every matched detection (see module docs).
            if let Some(d) = det {
                let (dcx, dcy) = d.bbox.center();
                let (tcx, tcy) = tb.bbox.center();
                let dx = (dcx - tcx) / tb.bbox.width();
                let dy = (dcy - tcy) / tb.bbox.height();
                if tb.kind.is_vehicle() {
                    result.veh_dx.push(dx);
                    result.veh_dy.push(dy);
                } else {
                    result.ped_dx.push(dx);
                    result.ped_dy.push(dy);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{fit_exponential, fit_normal};

    #[test]
    fn characterization_recovers_injected_noise() {
        let c = characterize_detector(12_000, 7);
        // Vehicle x error: Normal(0.023, 0.464) within tolerance.
        let veh_x = fit_normal(&c.veh_dx).unwrap();
        assert!((veh_x.mean - 0.023).abs() < 0.05, "mean {}", veh_x.mean);
        assert!(
            (veh_x.std_dev - 0.464).abs() < 0.05,
            "std {}",
            veh_x.std_dev
        );
        // Pedestrian x error is far wider than vehicles (σ ≈ 2.0).
        let ped_x = fit_normal(&c.ped_dx).unwrap();
        assert!(
            ped_x.std_dev > 3.0 * veh_x.std_dev,
            "ped σ {}",
            ped_x.std_dev
        );
    }

    #[test]
    fn streaks_fit_shifted_exponentials() {
        let c = characterize_detector(12_000, 7);
        assert!(
            c.veh_streaks.len() > 50,
            "veh streaks {}",
            c.veh_streaks.len()
        );
        assert!(
            c.ped_streaks.len() > 50,
            "ped streaks {}",
            c.ped_streaks.len()
        );
        let veh = fit_exponential(&c.veh_streaks).unwrap();
        let ped = fit_exponential(&c.ped_streaks).unwrap();
        assert!(veh.loc >= 1.0);
        // Vehicles misdetect in longer streaks than pedestrians
        // (λ_veh = 0.327 < λ_ped = 0.717), hence a smaller fitted λ.
        assert!(
            veh.lambda < ped.lambda,
            "veh λ {} ped λ {}",
            veh.lambda,
            ped.lambda
        );
    }

    #[test]
    fn characterization_is_deterministic() {
        let a = characterize_detector(500, 3);
        let b = characterize_detector(500, 3);
        assert_eq!(a.veh_dx, b.veh_dx);
        assert_eq!(a.ped_streaks, b.ped_streaks);
    }
}
