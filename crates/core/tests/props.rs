//! Property-based tests for the attack stack.

use av_simkit::actor::ActorKind;
use proptest::prelude::*;
use robotack::safety_hijacker::{
    AttackFeatures, SafetyHijacker, SafetyHijackerConfig, SafetyOracle,
};
use robotack::scenario_matcher::{ScenarioMatcher, TrajectoryClass};
use robotack::vector::AttackVector;

/// A parameterized monotone oracle: δ decreases by `rate` per frame.
struct RateOracle(f64);
impl SafetyOracle for RateOracle {
    fn predict_delta(&self, f: &AttackFeatures, k: u32) -> f64 {
        f.delta - self.0 * f64::from(k)
    }
}

fn features(delta: f64) -> AttackFeatures {
    AttackFeatures {
        delta,
        v_rel_lon: -5.0,
        v_rel_lat: 0.0,
        a_rel_lon: 0.0,
    }
}

fn arb_kind() -> impl Strategy<Value = ActorKind> {
    prop_oneof![
        Just(ActorKind::Car),
        Just(ActorKind::Truck),
        Just(ActorKind::Pedestrian)
    ]
}

fn arb_traj() -> impl Strategy<Value = TrajectoryClass> {
    prop_oneof![
        Just(TrajectoryClass::MovingIn),
        Just(TrajectoryClass::Keep),
        Just(TrajectoryClass::MovingOut)
    ]
}

proptest! {
    /// For any monotone oracle, the binary search returns the *minimal*
    /// sufficient K — Eq. (2)'s argmin.
    #[test]
    fn sh_binary_search_is_exact_argmin(delta in 4.0..60.0f64, rate in 0.05..2.0f64) {
        let sh = SafetyHijacker::new(RateOracle(rate), SafetyHijackerConfig::default());
        let f = features(delta);
        match sh.decide(&f) {
            Some(d) => {
                let cfg = sh.config();
                prop_assert!(d.predicted_delta <= cfg.gamma + 1e-9);
                // Minimality: one frame less does not reach γ (unless at k_min).
                if d.k > cfg.k_min {
                    let one_less = delta - rate * f64::from(d.k - 1);
                    prop_assert!(one_less > cfg.gamma);
                }
            }
            None => {
                // Only valid when even k_max stays above the firing level.
                let cfg = sh.config();
                let at_max = delta - rate * f64::from(cfg.k_max);
                prop_assert!(at_max > cfg.gamma - cfg.confidence_margin);
            }
        }
    }

    /// Binary and linear searches agree everywhere.
    #[test]
    fn sh_binary_equals_linear(delta in 0.0..80.0f64, rate in 0.05..2.0f64) {
        let sh = SafetyHijacker::new(RateOracle(rate), SafetyHijackerConfig::default());
        let f = features(delta);
        let b = sh.decide(&f).map(|d| d.k);
        let l = sh.decide_linear(&f).map(|d| d.k);
        prop_assert_eq!(b, l);
    }

    /// Table I soundness: the returned vector always *flips* the EV-relevant
    /// conclusion ("will this object occupy my lane soon?"). An attack that
    /// fakes the conclusion the EV would reach anyway is a no-op, and the
    /// matcher must never pick one (§IV-A).
    #[test]
    fn scenario_matcher_always_flips_the_conclusion(
        in_lane in any::<bool>(), traj in arb_traj(), kind in arb_kind()
    ) {
        let sm = ScenarioMatcher::default();
        // Reality: will the object occupy the EV lane in the near future?
        let really_in_lane_soon = match traj {
            TrajectoryClass::MovingIn => true,
            TrajectoryClass::Keep => in_lane,
            TrajectoryClass::MovingOut => false,
        };
        if let Some(v) = sm.select(in_lane, traj, kind, None) {
            // What the hijacked trajectory would make the EV believe.
            let faked_in_lane_soon = match v {
                AttackVector::MoveIn => true,
                AttackVector::MoveOut | AttackVector::Disappear => false,
            };
            prop_assert_ne!(faked_in_lane_soon, really_in_lane_soon,
                "vector {} restates reality for in_lane={}, traj={:?}", v, in_lane, traj);
        } else {
            // The matcher only abstains when the object is leaving (or
            // entering) regardless — the two "—" cells of Table I.
            let abstain_cell = matches!(
                (traj, in_lane),
                (TrajectoryClass::MovingIn, true) | (TrajectoryClass::MovingOut, false)
            );
            prop_assert!(abstain_cell);
        }
    }

    /// Honoring a preference never yields a different vector.
    #[test]
    fn scenario_matcher_preference_is_sound(
        in_lane in any::<bool>(), traj in arb_traj(), kind in arb_kind(),
        pref in prop_oneof![
            Just(AttackVector::MoveOut),
            Just(AttackVector::MoveIn),
            Just(AttackVector::Disappear)
        ]
    ) {
        let sm = ScenarioMatcher::default();
        if let Some(v) = sm.select(in_lane, traj, kind, Some(pref)) {
            prop_assert_eq!(v, pref, "preference honored or rejected, never substituted");
        }
    }

    /// Trajectory classification is scale-consistent: doubling both y and vy
    /// magnitudes never flips in/out.
    #[test]
    fn trajectory_classification_sign_consistency(
        y in -6.0f64..6.0, vy in -3.0f64..3.0
    ) {
        prop_assume!(y.abs() > 0.1 && vy.abs() > 1.0);
        let a = TrajectoryClass::classify(y, vy, 0.9);
        let b = TrajectoryClass::classify(2.0 * y, vy, 0.9);
        prop_assert_eq!(a, b);
    }
}
