//! Safety hijacker ("SH", §IV-B): deciding *when* to attack and for *how
//! long*.
//!
//! The SH owns an oracle `f_α(v_rel, a_rel, δ_t, k) → δ_{t+k}` predicting the
//! safety potential the EV would be left with after `k` consecutive attacked
//! frames under vector `α`. The paper approximates `f_α` with a shallow
//! feed-forward network (3 hidden layers 100/100/50, ReLU, dropout 0.1)
//! trained per attack vector; [`NnOracle`] is that network, and
//! [`KinematicOracle`] is a closed-form constant-acceleration baseline used
//! in tests and as a sanity reference.
//!
//! Because `f_α` is non-increasing in `k` for the scenarios of interest
//! (§IV-B), the minimal sufficient attack length `K` (Eq. 2) is found by
//! binary search in `O(log K_max)` oracle evaluations.

use av_neural::matrix::Matrix;
use av_neural::mlp::Mlp;
use av_neural::train::Normalizer;
use serde::{Deserialize, Serialize};

/// Kinematic features the malware extracts from its perception replica at
/// decision time (relative to the EV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackFeatures {
    /// Current safety potential w.r.t. the target object (m).
    pub delta: f64,
    /// Longitudinal relative velocity of the target (m/s; negative = closing).
    pub v_rel_lon: f64,
    /// Lateral relative velocity of the target (m/s).
    pub v_rel_lat: f64,
    /// Longitudinal relative acceleration of the target (m/s²).
    pub a_rel_lon: f64,
}

impl AttackFeatures {
    /// Flattens features plus the candidate `k` into the NN input vector.
    pub fn to_input(self, k: u32) -> Vec<f64> {
        self.input_array(k).to_vec()
    }

    /// Allocation-free form of [`AttackFeatures::to_input`].
    pub fn input_array(self, k: u32) -> [f64; Self::INPUT_DIM] {
        [
            self.delta,
            self.v_rel_lon,
            self.v_rel_lat,
            self.a_rel_lon,
            f64::from(k),
        ]
    }

    /// The NN input dimension.
    pub const INPUT_DIM: usize = 5;
}

/// An oracle for the post-attack safety potential `δ_{t+k}`.
pub trait SafetyOracle {
    /// Predicts `δ_{t+k}` for launching the attack now and holding it `k`
    /// frames.
    fn predict_delta(&self, features: &AttackFeatures, k: u32) -> f64;
}

/// The paper's learned oracle: a per-vector MLP over normalized features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnOracle {
    net: Mlp,
    normalizer: Normalizer,
}

impl NnOracle {
    /// Wraps a trained network and its input normalizer.
    pub fn new(net: Mlp, normalizer: Normalizer) -> Self {
        assert_eq!(
            net.input_dim(),
            AttackFeatures::INPUT_DIM,
            "oracle input dim"
        );
        NnOracle { net, normalizer }
    }

    /// The underlying network (for diagnostics).
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// The input normalizer (for diagnostics and snapshotting).
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Answers a batch of `(features, k)` queries with one GEMM per network
    /// layer, appending one prediction per query to `out` (cleared first).
    ///
    /// Each output row is bit-identical to the corresponding
    /// [`SafetyOracle::predict_delta`] call — see
    /// [`Mlp::forward_batch_into`] for why — so a batch engine may coalesce
    /// queries from many sessions without perturbing any session's decision.
    pub fn predict_delta_batch(&self, queries: &[(AttackFeatures, u32)], out: &mut Vec<f64>) {
        // A batch engine calls this once per k-search round on a hot loop;
        // per-worker scratch keeps every round allocation-free.
        thread_local! {
            static SCRATCH: std::cell::RefCell<(Matrix, Matrix, Matrix)> = std::cell::RefCell::new((
                Matrix::zeros(0, 0),
                Matrix::zeros(0, 0),
                Matrix::zeros(0, 0),
            ));
        }
        out.clear();
        if queries.is_empty() {
            return;
        }
        SCRATCH.with(|cell| {
            let (input, scratch, y) = &mut *cell.borrow_mut();
            input.reshape(queries.len(), AttackFeatures::INPUT_DIM);
            for (r, (features, k)) in queries.iter().enumerate() {
                self.normalizer
                    .apply_into(&features.input_array(*k), input.row_mut(r));
            }
            self.net.forward_batch_into(input, scratch, y);
            out.extend((0..queries.len()).map(|r| y.get(r, 0)));
        });
    }
}

impl SafetyOracle for NnOracle {
    fn predict_delta(&self, features: &AttackFeatures, k: u32) -> f64 {
        let input = self.normalizer.apply(&features.to_input(k));
        self.net.forward(&input)[0]
    }
}

/// Closed-form constant-acceleration oracle: assumes the EV accelerates
/// toward its cruise speed for the attack's duration (the world-model object
/// is gone/moved, so the planner releases the brake) while the target keeps
/// its current kinematics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KinematicOracle {
    /// Assumed EV acceleration while blinded (m/s²).
    pub ev_accel: f64,
    /// EV speed headroom to the cruise target (m/s) — caps the speed gain.
    pub speed_headroom: f64,
    /// Camera frame period (s).
    pub frame_dt: f64,
}

impl Default for KinematicOracle {
    fn default() -> Self {
        KinematicOracle {
            ev_accel: 1.5,
            speed_headroom: 5.5,
            frame_dt: 1.0 / 15.0,
        }
    }
}

impl SafetyOracle for KinematicOracle {
    fn predict_delta(&self, features: &AttackFeatures, k: u32) -> f64 {
        let t = f64::from(k) * self.frame_dt;
        // The EV accelerates until it exhausts its speed headroom.
        let t_cap = (self.speed_headroom / self.ev_accel).min(t);
        let speedup_closure =
            0.5 * self.ev_accel * t_cap * t_cap + self.ev_accel * t_cap * (t - t_cap);
        // Existing relative motion: v_rel < 0 means the target approaches.
        let relative_closure = -features.v_rel_lon * t - 0.5 * features.a_rel_lon * t * t;
        features.delta - (speedup_closure + relative_closure)
    }
}

/// Safety hijacker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyHijackerConfig {
    /// Crash-level safety potential `γ` (m): the attack length is the
    /// minimal `k` whose predicted `δ_{t+k} ≤ γ`. The paper uses 4 m.
    pub gamma: f64,
    /// Launch threshold (m): attack only if the achievable `δ` drops below
    /// this (the paper uses 10 m — emergency-braking territory).
    pub launch_threshold: f64,
    /// Confidence margin (m) subtracted from γ for the *launch* decision:
    /// with an imperfect oracle, firing only when the predicted δ is
    /// comfortably below γ avoids wasting the single shot on marginal
    /// states. K is still chosen against γ itself.
    pub confidence_margin: f64,
    /// Minimum attack length (frames).
    pub k_min: u32,
    /// Maximum attack length `K_max` (frames): for Disappear this is the
    /// 99th percentile of natural misdetection streaks (§IV-B).
    pub k_max: u32,
}

impl Default for SafetyHijackerConfig {
    fn default() -> Self {
        SafetyHijackerConfig {
            gamma: 4.0,
            launch_threshold: 10.0,
            confidence_margin: 1.5,
            k_min: 5,
            k_max: 90,
        }
    }
}

/// The decision the safety hijacker returns when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackDecision {
    /// Number of frames to perturb.
    pub k: u32,
    /// Predicted safety potential after those frames.
    pub predicted_delta: f64,
}

/// Resumable Eq. 2 search: the gate check plus binary search that
/// [`SafetyHijacker::decide_capped`] runs, expressed as a state machine whose
/// oracle evaluations are performed by the *caller*.
///
/// This inversion lets a batch engine gather the pending query from many
/// concurrent sessions, answer them all with one GEMM
/// ([`NnOracle::predict_delta_batch`]), and feed the predictions back — while
/// producing exactly the same sequence of (features, k) queries, and
/// therefore exactly the same decision, as the inline search.
#[derive(Debug, Clone)]
pub struct KSearch {
    cfg: SafetyHijackerConfig,
    state: KState,
}

#[derive(Debug, Clone)]
enum KState {
    /// Evaluating `k_max`: reject unless even the longest attack is
    /// confidently below γ.
    Gate,
    /// Binary search over `[lo, hi]` for the minimal sufficient k.
    Bisect { lo: u32, hi: u32 },
    /// Re-evaluating the chosen k for the reported `predicted_delta`.
    Final { k: u32 },
    /// Terminal: the decision (or `None` for hold-fire).
    Done(Option<AttackDecision>),
}

impl KSearch {
    /// Starts a search under `config` with the per-vector cap `k_max`
    /// (clamped to at least `config.k_min`, as in
    /// [`SafetyHijacker::decide_capped`]).
    pub fn new(config: SafetyHijackerConfig, k_max: u32) -> Self {
        let mut cfg = config;
        cfg.k_max = k_max.max(cfg.k_min);
        KSearch {
            cfg,
            state: KState::Gate,
        }
    }

    /// The `k` the oracle should be evaluated at next, or `None` once the
    /// search has terminated.
    pub fn pending_k(&self) -> Option<u32> {
        match self.state {
            KState::Gate => Some(self.cfg.k_max),
            KState::Bisect { lo, hi } => Some(lo + (hi - lo) / 2),
            KState::Final { k } => Some(k),
            KState::Done(_) => None,
        }
    }

    /// Feeds the oracle's prediction for the pending `k` and advances the
    /// search. Ignored once terminal.
    pub fn feed(&mut self, predicted_delta: f64) {
        let cfg = &self.cfg;
        self.state = match self.state {
            KState::Gate => {
                if predicted_delta > cfg.gamma - cfg.confidence_margin {
                    // Even the longest admissible attack would not push δ to
                    // crash level — wait for a more opportune state. (The
                    // 10 m launch threshold of §IV-B is enforced through the
                    // training labels: states that only yield emergency
                    // braking produce labels near the stop margin, below γ
                    // only when the EV is forced into a hard stop.)
                    KState::Done(None)
                } else if cfg.k_min >= cfg.k_max {
                    KState::Final { k: cfg.k_min }
                } else {
                    KState::Bisect {
                        lo: cfg.k_min,
                        hi: cfg.k_max,
                    }
                }
            }
            KState::Bisect { lo, hi } => {
                let mid = lo + (hi - lo) / 2;
                let (lo, hi) = if predicted_delta <= cfg.gamma {
                    (lo, mid)
                } else {
                    (mid + 1, hi)
                };
                if lo >= hi {
                    KState::Final { k: lo }
                } else {
                    KState::Bisect { lo, hi }
                }
            }
            KState::Final { k } => KState::Done(Some(AttackDecision { k, predicted_delta })),
            KState::Done(d) => KState::Done(d),
        };
    }

    /// Whether the search has terminated.
    pub fn is_done(&self) -> bool {
        matches!(self.state, KState::Done(_))
    }

    /// The terminal decision. Panics if the search is still pending.
    pub fn into_decision(self) -> Option<AttackDecision> {
        match self.state {
            KState::Done(d) => d,
            _ => panic!("KSearch still has a pending oracle query"),
        }
    }
}

/// A safety-hijacker launch decision whose oracle evaluations have been
/// handed to the caller: the features to evaluate plus the in-flight
/// [`KSearch`].
///
/// Returned by `Attacker::begin_frame` when the attacker needs oracle
/// predictions it does not want to compute inline (so a batch engine can
/// coalesce them across sessions); resolved by feeding predictions until
/// [`DeferredDecision::pending`] returns `None`, then passing
/// [`DeferredDecision::into_decision`] to `Attacker::finish_frame`.
#[derive(Debug, Clone)]
pub struct DeferredDecision {
    features: AttackFeatures,
    search: KSearch,
}

impl DeferredDecision {
    /// Starts a deferred decision for `features` under `config` / `k_max`.
    pub fn new(features: AttackFeatures, config: SafetyHijackerConfig, k_max: u32) -> Self {
        DeferredDecision {
            features,
            search: KSearch::new(config, k_max),
        }
    }

    /// The next oracle query as (features, k), or `None` once resolved.
    pub fn pending(&self) -> Option<(AttackFeatures, u32)> {
        self.search.pending_k().map(|k| (self.features, k))
    }

    /// Feeds the oracle's prediction for the pending query.
    pub fn feed(&mut self, predicted_delta: f64) {
        self.search.feed(predicted_delta);
    }

    /// The resolved decision. Panics if queries are still pending.
    pub fn into_decision(self) -> Option<AttackDecision> {
        self.search.into_decision()
    }
}

/// Safety hijacker: oracle + Eq. 2 search + launch policy.
#[derive(Debug, Clone)]
pub struct SafetyHijacker<O> {
    oracle: O,
    config: SafetyHijackerConfig,
}

impl<O: SafetyOracle> SafetyHijacker<O> {
    /// Creates a safety hijacker.
    pub fn new(oracle: O, config: SafetyHijackerConfig) -> Self {
        SafetyHijacker { oracle, config }
    }

    /// The configuration.
    pub fn config(&self) -> &SafetyHijackerConfig {
        &self.config
    }

    /// The oracle (for diagnostics / Fig. 8).
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    /// Decides whether to launch now. Returns the attack length `K` and the
    /// predicted post-attack `δ`, or `None` when the attack would not be
    /// damaging enough yet.
    pub fn decide(&self, features: &AttackFeatures) -> Option<AttackDecision> {
        self.decide_capped(features, self.config.k_max)
    }

    /// [`SafetyHijacker::decide`] with a caller-provided `K_max` (Disappear
    /// attacks are capped at the class's natural misdetection 99th
    /// percentile, §IV-B).
    pub fn decide_capped(&self, features: &AttackFeatures, k_max: u32) -> Option<AttackDecision> {
        // Gate at k_max, binary search for the minimal k with predicted
        // δ ≤ γ (valid since f_α is non-increasing in k here), then one
        // final evaluation at the chosen k. The query sequence lives in
        // [`KSearch`] so the batch engine's deferred path is this exact
        // search by construction.
        let mut search = KSearch::new(self.config, k_max);
        while let Some(k) = search.pending_k() {
            search.feed(self.oracle.predict_delta(features, k));
        }
        search.into_decision()
    }

    /// Exhaustive (linear) version of [`SafetyHijacker::decide`] — used by
    /// the `ablation_k_search` bench to validate the binary search.
    pub fn decide_linear(&self, features: &AttackFeatures) -> Option<AttackDecision> {
        let cfg = &self.config;
        if self.oracle.predict_delta(features, cfg.k_max) > cfg.gamma - cfg.confidence_margin {
            return None;
        }
        for k in cfg.k_min..=cfg.k_max {
            let d = self.oracle.predict_delta(features, k);
            if d <= cfg.gamma {
                return Some(AttackDecision {
                    k,
                    predicted_delta: d,
                });
            }
        }
        unreachable!("k_max satisfied the predicate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic oracle: δ decreases by 0.5 m per attacked frame.
    struct LinearOracle;
    impl SafetyOracle for LinearOracle {
        fn predict_delta(&self, f: &AttackFeatures, k: u32) -> f64 {
            f.delta - 0.5 * f64::from(k)
        }
    }

    fn features(delta: f64) -> AttackFeatures {
        AttackFeatures {
            delta,
            v_rel_lon: -5.0,
            v_rel_lat: 0.0,
            a_rel_lon: 0.0,
        }
    }

    #[test]
    fn no_launch_when_far() {
        let sh = SafetyHijacker::new(LinearOracle, SafetyHijackerConfig::default());
        // δ after k_max=90 frames: 80 − 45 = 35 > γ → hold fire.
        assert!(sh.decide(&features(80.0)).is_none());
    }

    #[test]
    fn binary_search_finds_minimal_k() {
        let sh = SafetyHijacker::new(LinearOracle, SafetyHijackerConfig::default());
        // δ − 0.5k ≤ 4 → k ≥ 32 for δ = 20.
        let d = sh.decide(&features(20.0)).unwrap();
        assert_eq!(d.k, 32);
        assert!(d.predicted_delta <= 4.0);
    }

    #[test]
    fn binary_matches_linear_search() {
        let sh = SafetyHijacker::new(LinearOracle, SafetyHijackerConfig::default());
        for delta in [8.0, 12.0, 20.0, 30.0, 44.9, 45.0, 48.0, 49.0] {
            let a = sh.decide(&features(delta));
            let b = sh.decide_linear(&features(delta));
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(x.k, y.k, "delta {delta}"),
                (None, None) => {}
                other => panic!("mismatch at delta {delta}: {other:?}"),
            }
        }
    }

    #[test]
    fn k_min_respected() {
        let sh = SafetyHijacker::new(LinearOracle, SafetyHijackerConfig::default());
        // Already nearly crashed: even k_min suffices.
        let d = sh.decide(&features(4.2)).unwrap();
        assert_eq!(d.k, 5);
    }

    #[test]
    fn damaging_but_not_crash_level_waits() {
        let sh = SafetyHijacker::new(LinearOracle, SafetyHijackerConfig::default());
        // δ(k_max) = 49.5 − 45 = 4.5 > γ − margin: hold fire even though the
        // state is already emergency-braking territory.
        assert!(sh.decide(&features(49.5)).is_none());
        // Marginally crash-level (4.0) still waits: the confidence margin
        // demands a comfortably-below-γ prediction.
        assert!(sh.decide(&features(49.0)).is_none());
        // Confidently below γ fires, with K chosen against γ itself.
        let d = sh.decide(&features(47.0)).unwrap();
        assert_eq!(d.k, 86);
        assert!(d.predicted_delta <= 4.0);
    }

    /// Oracle that records the sequence of k values it is asked about.
    struct RecordingOracle(std::cell::RefCell<Vec<u32>>);
    impl SafetyOracle for RecordingOracle {
        fn predict_delta(&self, f: &AttackFeatures, k: u32) -> f64 {
            self.0.borrow_mut().push(k);
            f.delta - 0.5 * f64::from(k)
        }
    }

    #[test]
    fn ksearch_replays_decide_capped_query_sequence() {
        for delta in [4.2, 8.0, 20.0, 44.9, 47.0, 49.0, 49.5, 80.0] {
            for k_max in [1u32, 3, 5, 28, 59, 90] {
                let sh = SafetyHijacker::new(
                    RecordingOracle(std::cell::RefCell::new(Vec::new())),
                    SafetyHijackerConfig::default(),
                );
                let inline = sh.decide_capped(&features(delta), k_max);
                let inline_ks = sh.oracle().0.borrow().clone();

                let mut search = KSearch::new(SafetyHijackerConfig::default(), k_max);
                let mut deferred_ks = Vec::new();
                while let Some(k) = search.pending_k() {
                    deferred_ks.push(k);
                    search.feed(delta - 0.5 * f64::from(k));
                }
                assert_eq!(
                    deferred_ks, inline_ks,
                    "query order diverged at delta {delta}, k_max {k_max}"
                );
                assert_eq!(search.into_decision(), inline);
            }
        }
    }

    #[test]
    fn deferred_decision_matches_inline() {
        let cfg = SafetyHijackerConfig::default();
        let sh = SafetyHijacker::new(LinearOracle, cfg);
        for delta in [8.0, 20.0, 47.0, 49.0] {
            let f = features(delta);
            let mut d = DeferredDecision::new(f, cfg, cfg.k_max);
            while let Some((qf, k)) = d.pending() {
                d.feed(LinearOracle.predict_delta(&qf, k));
            }
            assert_eq!(d.into_decision(), sh.decide(&f));
        }
    }

    #[test]
    fn nn_oracle_batch_matches_scalar_bitwise() {
        use av_neural::train::{Dataset, Normalizer};
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        let net = Mlp::paper_architecture(AttackFeatures::INPUT_DIM, &mut rng);
        let data = Dataset::from_rows((0..8).map(|i| {
            let x = f64::from(i);
            (vec![x, -x, 0.5 * x, x * x, x + 1.0], vec![x])
        }));
        let oracle = NnOracle::new(net, Normalizer::fit(&data));
        let queries: Vec<(AttackFeatures, u32)> = (0..17)
            .map(|i| {
                let x = f64::from(i);
                (
                    AttackFeatures {
                        delta: 30.0 - x,
                        v_rel_lon: -5.0 + 0.3 * x,
                        v_rel_lat: 0.1 * x,
                        a_rel_lon: -0.2 * x,
                    },
                    5 + i,
                )
            })
            .collect();
        let mut batched = Vec::new();
        oracle.predict_delta_batch(&queries, &mut batched);
        assert_eq!(batched.len(), queries.len());
        for ((f, k), b) in queries.iter().zip(&batched) {
            assert_eq!(
                b.to_bits(),
                oracle.predict_delta(f, *k).to_bits(),
                "batched prediction diverged at k={k}"
            );
        }
    }

    #[test]
    fn kinematic_oracle_monotone_in_k() {
        let o = KinematicOracle::default();
        let f = features(30.0);
        let mut last = f64::INFINITY;
        for k in (0..=90).step_by(5) {
            let d = o.predict_delta(&f, k);
            assert!(d <= last + 1e-9, "non-monotone at k={k}");
            last = d;
        }
    }

    #[test]
    fn features_flatten_into_nn_input() {
        let f = features(12.0);
        let input = f.to_input(7);
        assert_eq!(input.len(), AttackFeatures::INPUT_DIM);
        assert_eq!(input[0], 12.0);
        assert_eq!(input[4], 7.0);
    }
}
