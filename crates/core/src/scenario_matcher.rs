//! Scenario matcher ("SM", §IV-A): deciding *what* to attack.
//!
//! A deliberately rule-based module (Table I) so its execution cost is
//! negligible — the paper keeps it cheap to evade detection by
//! resource-usage monitors. Given the target object's lane occupancy and
//! lateral trajectory class, it returns the attack vector that would
//! actually change the EV's behavior (never, e.g., "move out" an object
//! that is already leaving the lane).

use crate::vector::AttackVector;
use av_simkit::actor::ActorKind;
use serde::{Deserialize, Serialize};

/// Lateral trajectory of the target object relative to the EV lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrajectoryClass {
    /// Moving toward the EV lane center.
    MovingIn,
    /// Keeping its lateral position.
    Keep,
    /// Moving away from the EV lane center.
    MovingOut,
}

impl TrajectoryClass {
    /// Classifies a lateral position/velocity pair: `y` is the lateral
    /// offset from the EV lane center, `vy` the lateral velocity;
    /// `threshold` is the minimum |vy| considered deliberate motion.
    pub fn classify(y: f64, vy: f64, threshold: f64) -> TrajectoryClass {
        let toward_center = -y.signum() * vy;
        if vy.abs() <= threshold || y == 0.0 {
            // An object already centered can only keep or leave; treat
            // centered motion as Keep unless it clearly departs.
            if y == 0.0 && vy.abs() > threshold {
                return TrajectoryClass::MovingOut;
            }
            return TrajectoryClass::Keep;
        }
        if toward_center > 0.0 {
            TrajectoryClass::MovingIn
        } else {
            TrajectoryClass::MovingOut
        }
    }
}

/// The Table I rule map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMatcher {
    /// Minimum |lateral velocity| (m/s) considered deliberate motion when
    /// classifying trajectories.
    pub vy_threshold: f64,
}

impl Default for ScenarioMatcher {
    fn default() -> Self {
        ScenarioMatcher { vy_threshold: 0.9 }
    }
}

impl ScenarioMatcher {
    /// Returns the admissible attack vector per Table I, or `None` when no
    /// attack is worthwhile.
    ///
    /// Where Table I offers "Move_Out/Disappear", `preference` (the
    /// campaign's vector under evaluation) picks among the admissible
    /// options; without a preference, the paper's heuristic applies:
    /// Disappear suits pedestrians (small attack window), Move_Out suits
    /// vehicles (§IV-A).
    pub fn select(
        &self,
        in_ev_lane: bool,
        trajectory: TrajectoryClass,
        kind: ActorKind,
        preference: Option<AttackVector>,
    ) -> Option<AttackVector> {
        use AttackVector::*;
        use TrajectoryClass::*;
        let admissible: &[AttackVector] = match (trajectory, in_ev_lane) {
            (MovingIn, true) => &[],
            (MovingIn, false) => &[MoveOut, Disappear],
            (Keep, true) => &[MoveOut, Disappear],
            (Keep, false) => &[MoveIn],
            (MovingOut, true) => &[MoveIn],
            (MovingOut, false) => &[],
        };
        if admissible.is_empty() {
            return None;
        }
        if let Some(p) = preference {
            return admissible.contains(&p).then_some(p);
        }
        if admissible.len() == 1 {
            return Some(admissible[0]);
        }
        // Move_Out vs Disappear: class heuristic from §IV-A / §VI.
        Some(if kind.is_vehicle() {
            MoveOut
        } else {
            Disappear
        })
    }

    /// Renders the Table I rule map as the paper prints it (for the
    /// quickstart example and the Table I bench).
    pub fn table(&self) -> String {
        use TrajectoryClass::*;
        let cell = |traj: TrajectoryClass, in_lane: bool| -> &'static str {
            match (traj, in_lane) {
                (MovingIn, true) | (MovingOut, false) => "—",
                (MovingIn, false) | (Keep, true) => "Move_Out/Disappear",
                (Keep, false) | (MovingOut, true) => "Move_In",
            }
        };
        let mut out = String::new();
        out.push_str("TO trajectory | TO in EV-lane      | TO not in EV-lane\n");
        out.push_str("------------- | ------------------ | ------------------\n");
        for (name, traj) in [
            ("Moving In", MovingIn),
            ("Keep", Keep),
            ("Moving Out", MovingOut),
        ] {
            out.push_str(&format!(
                "{name:<13} | {:<18} | {}\n",
                cell(traj, true),
                cell(traj, false)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AttackVector::*;
    use TrajectoryClass::*;

    const SM: ScenarioMatcher = ScenarioMatcher { vy_threshold: 0.9 };

    #[test]
    fn table1_in_lane_column() {
        // Moving In + in-lane: impossible/no-op.
        assert_eq!(SM.select(true, MovingIn, ActorKind::Car, None), None);
        // Keep + in-lane: hijack it out (vehicle → Move_Out).
        assert_eq!(SM.select(true, Keep, ActorKind::Car, None), Some(MoveOut));
        // Keep + in-lane pedestrian → Disappear by the class heuristic.
        assert_eq!(
            SM.select(true, Keep, ActorKind::Pedestrian, None),
            Some(Disappear)
        );
        // Moving Out + in-lane: pretend it moves in.
        assert_eq!(
            SM.select(true, MovingOut, ActorKind::Car, None),
            Some(MoveIn)
        );
    }

    #[test]
    fn table1_out_of_lane_column() {
        assert_eq!(
            SM.select(false, MovingIn, ActorKind::Pedestrian, None),
            Some(Disappear)
        );
        assert_eq!(SM.select(false, Keep, ActorKind::Car, None), Some(MoveIn));
        assert_eq!(SM.select(false, MovingOut, ActorKind::Car, None), None);
    }

    #[test]
    fn preference_is_honored_when_admissible() {
        assert_eq!(
            SM.select(true, Keep, ActorKind::Car, Some(Disappear)),
            Some(Disappear)
        );
        assert_eq!(
            SM.select(false, MovingIn, ActorKind::Car, Some(MoveOut)),
            Some(MoveOut)
        );
        // Inadmissible preference → no attack rather than a wrong attack.
        assert_eq!(SM.select(true, Keep, ActorKind::Car, Some(MoveIn)), None);
    }

    #[test]
    fn classify_crossing_pedestrian() {
        // Approaching the centerline from the right at walking speed.
        assert_eq!(TrajectoryClass::classify(-4.0, 1.4, 0.5), MovingIn);
        // Walking away on the left side.
        assert_eq!(TrajectoryClass::classify(3.0, 1.4, 0.5), MovingOut);
        // Longitudinal walker: no lateral motion.
        assert_eq!(TrajectoryClass::classify(-3.3, 0.0, 0.5), Keep);
        // Sub-threshold jitter is Keep.
        assert_eq!(TrajectoryClass::classify(-4.0, 0.3, 0.5), Keep);
    }

    #[test]
    fn classify_centered_object() {
        assert_eq!(TrajectoryClass::classify(0.0, 0.0, 0.5), Keep);
        assert_eq!(TrajectoryClass::classify(0.0, 1.0, 0.5), MovingOut);
    }

    #[test]
    fn table_rendering_contains_all_cells() {
        let t = ScenarioMatcher::default().table();
        assert!(t.contains("Move_Out/Disappear"));
        assert!(t.contains("Move_In"));
        assert!(t.contains("Moving Out"));
    }
}
