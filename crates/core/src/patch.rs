//! Pixel-space adversarial patch: realizing the bbox translation on the
//! raster.
//!
//! The campaigns apply the trajectory hijacker's translation `ω` directly to
//! the frame metadata (the fast path). This module demonstrates that the
//! same translation is *pixel-realizable*, as the paper's attack is
//! (§IV-C perturbs real camera pixels following Jia et al.): a simple
//! threshold-and-extent detector is driven off the raster, and a bounded
//! per-cell patch shifts — or suppresses — its output box.
//!
//! The patch obeys two budgets:
//! - **extent**: only cells inside (or adjacent to) the victim's bounding
//!   box are touched — Eq. (4)'s `IoU(o + ω, patch) ≥ γ` locality constraint;
//! - **amplitude**: per-cell luminance change is bounded by
//!   [`MAX_CELL_DELTA`].

use av_sensing::bbox::BBox;
use av_sensing::image::{Raster, RASTER_SCALE};

/// Luminance threshold of the raster detector.
pub const DETECT_THRESHOLD: f32 = 0.35;

/// Maximum per-cell luminance perturbation the patch may apply.
pub const MAX_CELL_DELTA: f32 = 0.5;

/// Detects the object region overlapping `roi` (camera-pixel coordinates)
/// by thresholding the raster and taking the extent of bright cells inside
/// a slightly expanded ROI. Returns the detected box in camera pixels.
pub fn detect(raster: &Raster, roi: &BBox) -> Option<BBox> {
    let expand = 1.5 * roi.width().max(40.0);
    let x0 = (((roi.x0 - expand) / RASTER_SCALE).floor().max(0.0)) as usize;
    let y0 = ((roi.y0 - 10.0) / RASTER_SCALE).floor().max(0.0) as usize;
    let x1 = (((roi.x1 + expand) / RASTER_SCALE).ceil() as usize).min(raster.width());
    let y1 = (((roi.y1 + 10.0) / RASTER_SCALE).ceil() as usize).min(raster.height());
    let mut found: Option<(usize, usize, usize, usize)> = None;
    for y in y0..y1 {
        for x in x0..x1 {
            if raster.get(x, y) > DETECT_THRESHOLD {
                found = Some(match found {
                    None => (x, y, x, y),
                    Some((ax0, ay0, ax1, ay1)) => (ax0.min(x), ay0.min(y), ax1.max(x), ay1.max(y)),
                });
            }
        }
    }
    found.map(|(ax0, ay0, ax1, ay1)| {
        BBox::new(
            ax0 as f64 * RASTER_SCALE,
            ay0 as f64 * RASTER_SCALE,
            (ax1 + 1) as f64 * RASTER_SCALE,
            (ay1 + 1) as f64 * RASTER_SCALE,
        )
    })
}

/// Applies a patch that shifts the detected box of the object at `bbox`
/// horizontally by `du` camera pixels: brightens a strip on the leading
/// edge (extending the detected extent) and darkens the trailing strip
/// below the detection threshold.
pub fn apply_shift(raster: &mut Raster, bbox: &BBox, du: f64) {
    if du.abs() < RASTER_SCALE / 2.0 {
        return; // below one raster cell; nothing to do
    }
    let cells = (du.abs() / RASTER_SCALE).round() as usize;
    let bx0 = (bbox.x0 / RASTER_SCALE).floor().max(0.0) as usize;
    let by0 = (bbox.y0 / RASTER_SCALE).floor().max(0.0) as usize;
    let bx1 = ((bbox.x1 / RASTER_SCALE).ceil() as usize).min(raster.width());
    let by1 = ((bbox.y1 / RASTER_SCALE).ceil() as usize).min(raster.height());
    if bx1 <= bx0 || by1 <= by0 {
        return;
    }
    let object_lum = raster.mean_in_camera_rect(bbox).max(0.45);
    for y in by0..by1 {
        for c in 0..cells {
            let (grow_x, shrink_x) = if du > 0.0 {
                (bx1 + c, bx0 + c)
            } else {
                (bx0.wrapping_sub(c + 1), bx1 - 1 - c)
            };
            // Brighten the leading strip just above threshold...
            if grow_x < raster.width() {
                let v = raster.get(grow_x, y);
                let target = (DETECT_THRESHOLD + 0.1).max(v);
                raster.set(grow_x, y, v + (target - v).min(MAX_CELL_DELTA));
            }
            // ...and darken the trailing strip just below it.
            if shrink_x < raster.width() {
                let v = raster.get(shrink_x, y);
                let target = (DETECT_THRESHOLD - 0.1).min(v);
                raster.set(shrink_x, y, v - (v - target).min(MAX_CELL_DELTA));
            }
            let _ = object_lum;
        }
    }
}

/// Applies a patch that suppresses detection of the object at `bbox`:
/// darkens its cells below the detection threshold (bounded per cell).
pub fn suppress(raster: &mut Raster, bbox: &BBox) {
    let bx0 = (bbox.x0 / RASTER_SCALE).floor().max(0.0) as usize;
    let by0 = (bbox.y0 / RASTER_SCALE).floor().max(0.0) as usize;
    let bx1 = ((bbox.x1 / RASTER_SCALE).ceil() as usize).min(raster.width());
    let by1 = ((bbox.y1 / RASTER_SCALE).ceil() as usize).min(raster.height());
    for y in by0..by1 {
        for x in bx0..bx1 {
            let v = raster.get(x, y);
            let target = DETECT_THRESHOLD - 0.1;
            if v > target {
                raster.set(x, y, v - (v - target).min(MAX_CELL_DELTA));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_sensing::frame::class_luminance;
    use av_simkit::actor::ActorKind;

    fn scene_with_car(bbox: &BBox) -> Raster {
        let mut raster = Raster::new(192, 108, 0.1);
        raster.fill_camera_rect(bbox, class_luminance(ActorKind::Car));
        raster
    }

    #[test]
    fn detect_recovers_rendered_box() {
        let truth = BBox::new(800.0, 500.0, 1000.0, 640.0);
        let raster = scene_with_car(&truth);
        let detected = detect(&raster, &truth).unwrap();
        assert!(detected.iou(&truth) > 0.8, "IoU = {}", detected.iou(&truth));
    }

    #[test]
    fn shift_moves_detected_box_right() {
        let truth = BBox::new(800.0, 500.0, 1000.0, 640.0);
        let mut raster = scene_with_car(&truth);
        apply_shift(&mut raster, &truth, 60.0);
        let detected = detect(&raster, &truth).unwrap();
        let (cx, _) = detected.center();
        let (tx, _) = truth.center();
        assert!(cx - tx > 40.0, "shifted by {} px", cx - tx);
    }

    #[test]
    fn shift_moves_detected_box_left() {
        let truth = BBox::new(800.0, 500.0, 1000.0, 640.0);
        let mut raster = scene_with_car(&truth);
        apply_shift(&mut raster, &truth, -60.0);
        let detected = detect(&raster, &truth).unwrap();
        let (cx, _) = detected.center();
        let (tx, _) = truth.center();
        assert!(tx - cx > 40.0, "shifted by {} px", tx - cx);
    }

    #[test]
    fn perturbation_amplitude_is_bounded() {
        let truth = BBox::new(800.0, 500.0, 1000.0, 640.0);
        let clean = scene_with_car(&truth);
        let mut patched = clean.clone();
        apply_shift(&mut patched, &truth, 60.0);
        for y in 0..clean.height() {
            for x in 0..clean.width() {
                let d = (clean.get(x, y) - patched.get(x, y)).abs();
                assert!(d <= MAX_CELL_DELTA + 1e-6, "cell ({x},{y}) changed by {d}");
            }
        }
    }

    #[test]
    fn perturbation_is_local_to_the_object() {
        let truth = BBox::new(800.0, 500.0, 1000.0, 640.0);
        let clean = scene_with_car(&truth);
        let mut patched = clean.clone();
        apply_shift(&mut patched, &truth, 60.0);
        // Cells far from the box are untouched.
        assert_eq!(clean.get(10, 10), patched.get(10, 10));
        assert_eq!(clean.get(150, 90), patched.get(150, 90));
    }

    #[test]
    fn suppress_removes_detection() {
        let truth = BBox::new(800.0, 500.0, 1000.0, 640.0);
        let mut raster = scene_with_car(&truth);
        suppress(&mut raster, &truth);
        assert!(detect(&raster, &truth).is_none());
    }

    #[test]
    fn tiny_shift_is_noop() {
        let truth = BBox::new(800.0, 500.0, 1000.0, 640.0);
        let clean = scene_with_car(&truth);
        let mut patched = clean.clone();
        apply_shift(&mut patched, &truth, 2.0);
        assert_eq!(clean, patched);
    }
}
