//! Trajectory hijacker ("TH", §IV-C): deciding *how* to attack.
//!
//! Once the safety hijacker fires, the TH perturbs the tapped camera frames
//! for `K` consecutive frames so the ADS tracker follows a *fake* trajectory
//! for the victim object. Per Eq. (4) the per-frame bounding-box translation
//! `ω_t` is constrained to:
//!
//! - the Kalman noise gate: the innovation against the (attacker-replicated)
//!   track prediction stays within ±1σ of the calibrated detector noise, so
//!   an IDS monitoring innovations sees nothing but noise;
//! - association: the Hungarian cost `M` between the perturbed box and the
//!   existing track stays below λ, so the detection keeps feeding the same
//!   tracker (relaxed for Disappear, which suppresses the detection
//!   entirely).
//!
//! The attack runs in two phases: **shift** — walk the fake laterally until
//! the displacement Ω is reached (this takes `K′` frames, Fig. 7) — then
//! **maintain** — hold the altered trajectory for the remaining `K − K′`
//! frames so the Kalman filter keeps believing it (§VI-E).
//!
//! To track what the ADS believes, the TH maintains a *shadow* of the ADS's
//! Kalman track, updated with the same perturbed measurements the ADS
//! receives — the attacker knows the perception internals (§III-B).

use crate::patch;
use crate::vector::AttackVector;
use av_perception::calibration::DetectorCalibration;
use av_perception::kalman::Kalman;
use av_perception::tracker::{association_cost, TrackerConfig};
use av_sensing::bbox::BBox;
use av_sensing::camera::Camera;
use av_sensing::frame::CameraFrame;
use av_simkit::actor::{ActorId, ActorKind};
use serde::{Deserialize, Serialize};

/// Trajectory hijacker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThConfig {
    /// Camera intrinsics (for ground↔image conversion).
    pub camera: Camera,
    /// Detector noise calibration (the ±1σ stealth gate).
    pub calibration: DetectorCalibration,
    /// The ADS tracker configuration (λ and Kalman parameters to shadow).
    pub tracker: TrackerConfig,
    /// Fraction of 1σ the attacker uses per frame (1.0 = the full gate).
    pub sigma_fraction: f64,
    /// Lane width (m): Move_Out targets the adjacent lane center.
    pub lane_width: f64,
    /// Half-width of the drivable road (m): pedestrians are pushed off it.
    pub road_half_width: f64,
}

impl Default for ThConfig {
    fn default() -> Self {
        ThConfig {
            camera: Camera::default(),
            calibration: DetectorCalibration::paper(),
            tracker: TrackerConfig::default(),
            sigma_fraction: 1.0,
            lane_width: 3.5,
            road_half_width: 5.25,
        }
    }
}

#[derive(Debug, Clone)]
struct Shadow {
    kf: Kalman,
    width: f64,
    height: f64,
    kind: ActorKind,
}

/// The per-attack trajectory hijacker state machine.
#[derive(Debug, Clone)]
pub struct TrajectoryHijacker {
    config: ThConfig,
    vector: AttackVector,
    target: ActorId,
    k_total: u32,
    frames_done: u32,
    shift_frames: Option<u32>,
    fake_y: Option<f64>,
    goal_y: Option<f64>,
    shadow: Option<Shadow>,
}

impl TrajectoryHijacker {
    /// Arms a hijack of `target` with vector `vector` for `k_total` frames.
    pub fn launch(vector: AttackVector, target: ActorId, k_total: u32, config: ThConfig) -> Self {
        TrajectoryHijacker {
            config,
            vector,
            target,
            k_total,
            frames_done: 0,
            shift_frames: None,
            fake_y: None,
            goal_y: None,
            shadow: None,
        }
    }

    /// The attack vector being executed.
    pub fn vector(&self) -> AttackVector {
        self.vector
    }

    /// Frames perturbed so far.
    pub fn frames_done(&self) -> u32 {
        self.frames_done
    }

    /// Total frames this attack will perturb.
    pub fn k_total(&self) -> u32 {
        self.k_total
    }

    /// `K′`: frames the shift phase took (None while still shifting, or for
    /// Disappear which has no shift phase of its own).
    pub fn shift_frames(&self) -> Option<u32> {
        self.shift_frames
    }

    /// Whether the attack window is exhausted.
    pub fn is_done(&self) -> bool {
        self.frames_done >= self.k_total
    }

    fn y_for(&self, u: f64, depth: f64) -> f64 {
        let (cx, _) = self.config.camera.principal_point();
        -(u - cx) * depth / self.config.camera.focal
    }

    fn pick_goal(&self, truth_y: f64, kind: ActorKind) -> f64 {
        match self.vector {
            AttackVector::MoveIn => 0.0,
            AttackVector::Disappear => truth_y, // unused
            AttackVector::MoveOut => {
                let dir = if truth_y.abs() < 0.3 {
                    1.0
                } else {
                    truth_y.signum()
                };
                let escape = if kind.is_vehicle() {
                    self.config.lane_width
                } else {
                    self.config.road_half_width + 0.6
                };
                dir * escape.max(truth_y.abs() + 2.0)
            }
        }
    }

    /// Perturbs one camera frame. Returns `true` while the attack is active
    /// (including frames where the target is momentarily not in view).
    pub fn apply(&mut self, frame: &mut CameraFrame) -> bool {
        if self.is_done() {
            return false;
        }
        self.frames_done += 1;

        // Locate the victim's projection in this frame.
        let Some(idx) = frame.truth.iter().position(|t| t.actor == self.target) else {
            return true; // out of view this frame; the attack clock still runs
        };

        if self.vector == AttackVector::Disappear {
            let tb = &mut frame.truth[idx];
            tb.suppressed = true;
            let bbox = tb.bbox;
            if let Some(raster) = frame.raster.as_mut() {
                patch::suppress(raster, &bbox);
            }
            return true;
        }

        let (tb_bbox, tb_depth, tb_kind) = {
            let tb = &frame.truth[idx];
            (tb.bbox, tb.depth, tb.kind)
        };
        let dt = 1.0 / av_simkit::units::CAMERA_HZ;
        let (truth_u, _) = tb_bbox.center();
        let truth_y = self.y_for(truth_u, tb_depth);

        // Lazy init at the first perturbed frame.
        if self.shadow.is_none() {
            let class = self.config.calibration.for_kind(tb_kind);
            let mut kcfg = self.config.tracker.kalman;
            kcfg.measurement_noise_x =
                (class.center_x.std_dev * tb_bbox.width()).max(kcfg.measurement_noise_x);
            kcfg.measurement_noise_y =
                (class.center_y.std_dev * tb_bbox.height()).max(kcfg.measurement_noise_y);
            let (cx, cy) = tb_bbox.center();
            self.shadow = Some(Shadow {
                kf: Kalman::new(kcfg, cx, cy),
                width: tb_bbox.width(),
                height: tb_bbox.height(),
                kind: tb_kind,
            });
            self.fake_y = Some(truth_y);
            self.goal_y = Some(self.pick_goal(truth_y, tb_kind));
        }
        let goal_y = self.goal_y.expect("initialized above");
        let fake_y = self.fake_y.expect("initialized above");

        let (cx_pp, _) = self.config.camera.principal_point();
        let focal = self.config.camera.focal;
        let u_of = |y: f64| cx_pp - focal * y / tb_depth;
        let y_of = |u: f64| -(u - cx_pp) * tb_depth / focal;

        let shadow = self.shadow.as_mut().expect("initialized above");
        shadow.kf.predict(dt);
        let (pred_u, _) = shadow.kf.position();

        // The per-frame stealth gate: ±σ_x of the calibrated noise, in px.
        let class = self.config.calibration.for_kind(tb_kind);
        let allowed_du =
            (class.center_x.std_dev * tb_bbox.width() * self.config.sigma_fraction).max(1.0);

        // Where we want the fake to be, bounded by the gate around the
        // shadow prediction (the innovation an IDS would monitor).
        let want_u = u_of(goal_y);
        let fake_u = want_u.clamp(pred_u - allowed_du, pred_u + allowed_du);
        let new_fake_y = y_of(fake_u);

        // Shift → maintain transition: Ω reached.
        if self.shift_frames.is_none() && (new_fake_y - goal_y).abs() < 0.1 {
            self.shift_frames = Some(self.frames_done);
        }
        self.fake_y = Some(new_fake_y);
        let _ = fake_y;

        // Build the perturbed box: translate the truth box laterally.
        let du = fake_u - truth_u;
        let fake_bbox = tb_bbox.translated(du, 0.0);

        // Eq. 4 association constraint M ≤ λ against the shadow track.
        let shadow_bbox =
            BBox::from_center(pred_u, shadow.kf.position().1, shadow.width, shadow.height);
        debug_assert!(
            association_cost(
                &shadow_bbox,
                shadow.kind,
                &fake_bbox,
                tb_kind,
                &self.config.tracker
            )
            .is_finite(),
            "hijacked box would break association"
        );

        // Commit: rewrite the frame (and the raster, when present).
        if let Some(raster) = frame.raster.as_mut() {
            patch::apply_shift(raster, &tb_bbox, du);
        }
        frame.truth[idx].bbox = fake_bbox;

        // The ADS tracker will consume the fake; mirror it in the shadow.
        let (fcx, fcy) = fake_bbox.center();
        shadow.kf.update(fcx, fcy);
        shadow.width += 0.3 * (fake_bbox.width() - shadow.width);
        shadow.height += 0.3 * (fake_bbox.height() - shadow.height);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_sensing::frame::capture;
    use av_simkit::actor::{Actor, ActorId, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::math::Vec2;
    use av_simkit::road::Road;
    use av_simkit::world::World;

    fn world_with(kind: ActorKind, x: f64, y: f64) -> World {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 12.5, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        w.add_actor(Actor::new(
            ActorId(1),
            kind,
            Vec2::new(x, y),
            0.0,
            Behavior::Parked,
        ))
        .unwrap();
        w
    }

    fn config() -> ThConfig {
        ThConfig::default()
    }

    #[test]
    fn disappear_suppresses_every_frame() {
        let w = world_with(ActorKind::Pedestrian, 30.0, 0.0);
        let mut th = TrajectoryHijacker::launch(AttackVector::Disappear, ActorId(1), 5, config());
        for seq in 0..5 {
            let mut frame = capture(&config().camera, &w, seq, false);
            assert!(th.apply(&mut frame));
            assert!(frame.truth_for(ActorId(1)).unwrap().suppressed);
        }
        let mut frame = capture(&config().camera, &w, 5, false);
        assert!(!th.apply(&mut frame), "window exhausted");
        assert!(!frame.truth_for(ActorId(1)).unwrap().suppressed);
    }

    #[test]
    fn move_out_walks_box_laterally_within_gate() {
        let w = world_with(ActorKind::Car, 30.0, 0.0);
        let cfg = config();
        let mut th = TrajectoryHijacker::launch(AttackVector::MoveOut, ActorId(1), 40, cfg);
        let truth_u = {
            let frame = capture(&cfg.camera, &w, 0, false);
            frame.truth_for(ActorId(1)).unwrap().bbox.center().0
        };
        let mut last_u = truth_u;
        let mut final_u = truth_u;
        for seq in 0..40 {
            let mut frame = capture(&cfg.camera, &w, seq, false);
            th.apply(&mut frame);
            let u = frame.truth_for(ActorId(1)).unwrap().bbox.center().0;
            // Per-frame stealth: the step against the *previous fake* cannot
            // exceed the σ gate by much (KF gain < 1 keeps it below 2σ).
            let width = frame.truth_for(ActorId(1)).unwrap().bbox.width();
            assert!(
                (u - last_u).abs() <= 2.0 * 0.464 * width + 1.0,
                "step too big at {seq}"
            );
            last_u = u;
            final_u = u;
        }
        // Moving to +y (left) means u decreases.
        assert!(
            final_u < truth_u - 50.0,
            "box moved: {final_u} vs {truth_u}"
        );
        assert!(th.shift_frames().is_some(), "shift phase completed");
        // The achieved ground offset is the adjacent lane center.
        let y = th.fake_y.unwrap();
        assert!((y - 3.5).abs() < 0.3, "fake ground y = {y}");
    }

    #[test]
    fn move_in_targets_lane_center() {
        let w = world_with(ActorKind::Car, 35.0, -3.5);
        let cfg = config();
        let mut th = TrajectoryHijacker::launch(AttackVector::MoveIn, ActorId(1), 40, cfg);
        for seq in 0..40 {
            let mut frame = capture(&cfg.camera, &w, seq, false);
            th.apply(&mut frame);
        }
        let y = th.fake_y.unwrap();
        assert!(y.abs() < 0.3, "fake pulled to lane center: {y}");
    }

    #[test]
    fn pedestrian_move_out_leaves_road() {
        let w = world_with(ActorKind::Pedestrian, 30.0, -4.0);
        let cfg = config();
        let mut th = TrajectoryHijacker::launch(AttackVector::MoveOut, ActorId(1), 30, cfg);
        for seq in 0..30 {
            let mut frame = capture(&cfg.camera, &w, seq, false);
            th.apply(&mut frame);
        }
        let y = th.fake_y.unwrap();
        assert!(y < -5.25, "pedestrian pushed off-road: {y}");
        // Pedestrians shift fast (σ_x = 2.01 widths): K' is a handful of
        // frames (Fig. 7 medians are 3-5 for pedestrians).
        assert!(
            th.shift_frames().unwrap() <= 10,
            "K' = {:?}",
            th.shift_frames()
        );
    }

    #[test]
    fn vehicle_shift_takes_longer_than_pedestrian() {
        let mut kp_vehicle = None;
        let mut kp_ped = None;
        for (kind, out) in [
            (ActorKind::Car, &mut kp_vehicle),
            (ActorKind::Pedestrian, &mut kp_ped),
        ] {
            let y0 = if kind.is_vehicle() { 0.0 } else { -4.0 };
            let w = world_with(kind, 30.0, y0);
            let cfg = config();
            let mut th = TrajectoryHijacker::launch(AttackVector::MoveOut, ActorId(1), 60, cfg);
            for seq in 0..60 {
                let mut frame = capture(&cfg.camera, &w, seq, false);
                th.apply(&mut frame);
            }
            *out = th.shift_frames();
        }
        let (kv, kp) = (kp_vehicle.unwrap(), kp_ped.unwrap());
        assert!(kv > kp, "vehicle K' {kv} vs pedestrian K' {kp}");
    }

    #[test]
    fn out_of_view_frames_still_consume_the_window() {
        let w = world_with(ActorKind::Car, 30.0, 0.0);
        let cfg = config();
        let mut th = TrajectoryHijacker::launch(AttackVector::MoveOut, ActorId(9), 3, cfg);
        for seq in 0..3 {
            let mut frame = capture(&cfg.camera, &w, seq, false);
            assert!(th.apply(&mut frame), "active while ticking");
        }
        assert!(th.is_done());
    }
}
