//! Attack vectors (§III-C).

use serde::{Deserialize, Serialize};

/// The three ways RoboTack hijacks a perceived trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackVector {
    /// Fool the EV into believing the target object is moving out of the EV
    /// lane (or staying out while actually moving in) → the EV accelerates
    /// or fails to brake → collision.
    MoveOut,
    /// Fool the EV into believing the target object is moving into the EV
    /// lane → forced emergency braking.
    MoveIn,
    /// Fool the EV into believing the target object has vanished — same
    /// consequences as Move_Out, with a larger perturbation bounded by the
    /// natural misdetection-streak envelope.
    Disappear,
}

impl AttackVector {
    /// All attack vectors.
    pub const ALL: [AttackVector; 3] = [
        AttackVector::MoveOut,
        AttackVector::MoveIn,
        AttackVector::Disappear,
    ];

    /// The paper's name for the vector.
    pub fn name(self) -> &'static str {
        match self {
            AttackVector::MoveOut => "Move_Out",
            AttackVector::MoveIn => "Move_In",
            AttackVector::Disappear => "Disappear",
        }
    }
}

impl std::fmt::Display for AttackVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(AttackVector::MoveOut.to_string(), "Move_Out");
        assert_eq!(AttackVector::MoveIn.to_string(), "Move_In");
        assert_eq!(AttackVector::Disappear.to_string(), "Disappear");
        assert_eq!(AttackVector::ALL.len(), 3);
    }
}
