//! # robotack — ML-driven malware that targets AV safety
//!
//! Reproduction of the attack stack from *"ML-driven Malware that Targets AV
//! Safety"* (Jha et al., DSN 2020). RoboTack is a man-in-the-middle camera
//! attack that answers the paper's three questions:
//!
//! - **What to attack** — [`scenario_matcher`]: a rule-based map (Table I)
//!   from the target object's lane occupancy and lateral trajectory to an
//!   [`vector::AttackVector`] (Move_Out / Move_In / Disappear).
//! - **When to attack** — [`safety_hijacker`]: a shallow neural network
//!   (3 hidden layers, §IV-B) predicting the safety potential `δ_{t+k}` the
//!   attack would achieve after `k` perturbed frames; a binary search (Eq. 2)
//!   yields the minimal attack length `K` that drives `δ` under the crash
//!   threshold.
//! - **How to attack** — [`trajectory_hijacker`]: per-frame bounding-box
//!   translations `ω_t` constrained to the Kalman noise gate (Eq. 4) so the
//!   multi-object tracker follows a *fake* trajectory while the perturbation
//!   stays statistically indistinguishable from detector noise; and
//!   [`patch`]: a pixel-space demonstration that those translations are
//!   realizable as a small adversarial patch on the raster.
//!
//! [`malware::RoboTack`] wires it all together as Algorithm 1: it taps the
//! camera feed, reconstructs the world with its own camera-only perception
//! replica, waits for the opportune moment, then perturbs `K` frames.
//! [`baseline`] implements the paper's comparison attackers (random attack,
//! RoboTack without the safety hijacker).
//!
//! # Example
//!
//! ```
//! use robotack::scenario_matcher::{ScenarioMatcher, TrajectoryClass};
//! use robotack::vector::AttackVector;
//! use av_simkit::actor::ActorKind;
//!
//! let sm = ScenarioMatcher::default();
//! // A vehicle keeping its lane inside the EV lane → hijack it out.
//! let alpha = sm.select(true, TrajectoryClass::Keep, ActorKind::Car, None);
//! assert_eq!(alpha, Some(AttackVector::MoveOut));
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod malware;
pub mod patch;
pub mod safety_hijacker;
pub mod scenario_matcher;
pub mod trajectory_hijacker;
pub mod vector;

pub use baseline::{NoAttacker, RandomAttacker};
pub use malware::{AttackStats, Attacker, RoboTack, RoboTackConfig};
pub use safety_hijacker::{
    AttackFeatures, KinematicOracle, NnOracle, SafetyHijacker, SafetyOracle,
};
pub use scenario_matcher::{ScenarioMatcher, TrajectoryClass};
pub use trajectory_hijacker::{ThConfig, TrajectoryHijacker};
pub use vector::AttackVector;
