//! Baseline attackers for the comparison campaigns (§VI-B).
//!
//! - [`RandomAttacker`] — the paper's most general baseline
//!   ("Baseline-Random"): hijack a *random* object's trajectory with a
//!   *random* vector at a *random* time for a *random* duration
//!   K ∈ [15, 85]. No scenario matcher, no safety hijacker; only the
//!   trajectory hijacker machinery is reused.
//! - [`NoAttacker`] — golden (attack-free) runs.
//!
//! The "R w/o SH" arm (scenario matcher + trajectory hijacker, random
//! timing) is [`crate::malware::TimingPolicy::RandomAfterMatch`] on the main
//! [`crate::malware::RoboTack`] runtime.

use crate::malware::{AttackStats, Attacker};
use crate::trajectory_hijacker::{ThConfig, TrajectoryHijacker};
use crate::vector::AttackVector;
use av_sensing::frame::CameraFrame;
use rand::rngs::StdRng;

/// The do-nothing attacker (golden runs).
#[derive(Debug, Clone, Default)]
pub struct NoAttacker {
    stats: AttackStats,
}

impl NoAttacker {
    /// Creates the no-op attacker.
    pub fn new() -> Self {
        NoAttacker::default()
    }
}

impl Attacker for NoAttacker {
    fn process_frame(&mut self, _frame: &mut CameraFrame, _ego_speed: f64, _rng: &mut StdRng) {}

    fn stats(&self) -> &AttackStats {
        &self.stats
    }
}

/// The random baseline attacker.
#[derive(Debug, Clone)]
pub struct RandomAttacker {
    th_config: ThConfig,
    start_frame: u32,
    k: u32,
    vector: AttackVector,
    frames_seen: u32,
    th: Option<TrajectoryHijacker>,
    fired: bool,
    stats: AttackStats,
}

impl RandomAttacker {
    /// Samples a random attack plan: start frame within `horizon_frames`,
    /// duration K ∈ [15, 85], uniformly random vector, target chosen at
    /// launch among whatever is visible.
    pub fn new(th_config: ThConfig, horizon_frames: u32, rng: &mut StdRng) -> Self {
        let start_frame = rng.random_range(0..horizon_frames.max(1));
        let k = rng.random_range(15..=85);
        let vector = AttackVector::ALL[rng.random_range(0..AttackVector::ALL.len())];
        RandomAttacker {
            th_config,
            start_frame,
            k,
            vector,
            frames_seen: 0,
            th: None,
            fired: false,
            stats: AttackStats::default(),
        }
    }

    /// The sampled plan (for tests / reporting).
    pub fn plan(&self) -> (u32, u32, AttackVector) {
        (self.start_frame, self.k, self.vector)
    }
}

impl Attacker for RandomAttacker {
    fn process_frame(&mut self, frame: &mut CameraFrame, _ego_speed: f64, rng: &mut StdRng) {
        self.frames_seen += 1;
        if let Some(th) = self.th.as_mut() {
            let active = th.apply(frame);
            self.stats.frames_perturbed += u32::from(active);
            self.stats.k_prime = th.shift_frames().or(self.stats.k_prime);
            if th.is_done() {
                self.th = None;
                self.fired = true;
            }
            return;
        }
        if self.fired || self.frames_seen < self.start_frame {
            return;
        }
        // Launch at the sampled frame on a uniformly random visible object
        // (retry next frame when nothing is visible).
        let visible: Vec<_> = frame.visible().collect();
        if visible.is_empty() {
            return;
        }
        let victim = visible[rng.random_range(0..visible.len())].actor;
        self.stats = AttackStats {
            launched_at: Some(frame.t),
            vector: Some(self.vector),
            k: self.k,
            k_prime: None,
            predicted_delta: None,
            frames_perturbed: 0,
            target: Some(victim),
            features_at_launch: None,
        };
        let mut th = TrajectoryHijacker::launch(self.vector, victim, self.k, self.th_config);
        let active = th.apply(frame);
        self.stats.frames_perturbed += u32::from(active);
        self.th = Some(th);
    }

    fn stats(&self) -> &AttackStats {
        &self.stats
    }

    fn attacking(&self) -> bool {
        self.th.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_sensing::frame::capture;
    use av_simkit::actor::{Actor, ActorId, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::math::Vec2;
    use av_simkit::road::Road;
    use av_simkit::world::World;
    use rand::SeedableRng;

    fn world() -> World {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 12.5, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(40.0, 0.0),
            6.9,
            Behavior::CruiseStraight { speed: 6.9 },
        ))
        .unwrap();
        w
    }

    #[test]
    fn no_attacker_never_touches_frames() {
        let w = world();
        let mut a = NoAttacker::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut frame = capture(&ThConfig::default().camera, &w, 0, false);
        let before = frame.clone();
        a.process_frame(&mut frame, 12.5, &mut rng);
        assert_eq!(frame, before);
        assert!(a.stats().launched_at.is_none());
    }

    #[test]
    fn plan_is_seed_reproducible_and_in_range() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = RandomAttacker::new(ThConfig::default(), 300, &mut r1);
        let b = RandomAttacker::new(ThConfig::default(), 300, &mut r2);
        assert_eq!(a.plan(), b.plan());
        let (start, k, _) = a.plan();
        assert!(start < 300);
        assert!((15..=85).contains(&k));
    }

    #[test]
    fn attacks_at_sampled_frame_for_k_frames() {
        let mut w = world();
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = RandomAttacker::new(ThConfig::default(), 30, &mut rng);
        let (start, k, _) = a.plan();
        for seq in 0..200 {
            let mut frame = capture(&ThConfig::default().camera, &w, seq, false);
            a.process_frame(&mut frame, w.ego().speed, &mut rng);
            w.step(1.0 / 15.0, 0.0);
        }
        let stats = a.stats();
        assert!(stats.launched_at.is_some());
        assert_eq!(stats.k, k);
        assert_eq!(stats.frames_perturbed, k, "perturbed exactly K frames");
        assert!(stats.launched_at.unwrap() >= f64::from(start.saturating_sub(1)) / 15.0);
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let mut plans = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            plans.insert(RandomAttacker::new(ThConfig::default(), 300, &mut rng).plan());
        }
        assert!(plans.len() > 10, "plans vary across seeds: {}", plans.len());
    }
}
