//! Property-based tests for the fault injector's two anchor guarantees:
//! seed-determinism and bit-transparency (empty plan, out-of-window faults).

use av_faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
use av_sensing::bbox::BBox;
use av_sensing::frame::{CameraFrame, TruthBox};
use av_sensing::gps::GpsImuFix;
use av_sensing::lidar::LidarScan;
use av_sensing::tap::{CameraTapVerdict, SensorTap};
use av_simkit::actor::{ActorId, ActorKind};
use av_simkit::math::Vec2;
use proptest::prelude::*;

fn frame(seq: u64, t: f64) -> CameraFrame {
    CameraFrame {
        seq,
        t,
        truth: vec![TruthBox {
            actor: ActorId(1),
            kind: ActorKind::Car,
            bbox: BBox {
                x0: 900.0,
                y0: 480.0,
                x1: 1020.0,
                y1: 560.0,
            },
            depth: 30.0,
            occlusion: 0.0,
            suppressed: false,
        }],
        raster: None,
    }
}

fn any_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (0.0..1.0f64).prop_map(|probability| FaultKind::CameraFrameDrop { probability }),
        (0.0..0.5f64, 1.0..10.0f64).prop_map(|(probability, mean_frames)| {
            FaultKind::CameraFreeze {
                probability,
                mean_frames,
            }
        }),
        (1u32..6u32).prop_map(|frames| FaultKind::CameraLatency { frames }),
        (0.1..5.0f64).prop_map(|sigma_px| FaultKind::CameraNoise { sigma_px }),
        (0.0..800.0f64, 0.1..1.0f64).prop_map(|(y0, strength)| {
            FaultKind::CameraOcclusionBand {
                y0,
                y1: y0 + 200.0,
                strength,
            }
        }),
        (0.0..0.5f64, 1.0..10.0f64).prop_map(|(probability, mean_frames)| {
            FaultKind::DetectorBlackout {
                probability,
                mean_frames,
            }
        }),
        (0.0..1.0f64).prop_map(|probability| FaultKind::LidarDropout { probability }),
        (-3.0..3.0f64, -0.5..0.5f64)
            .prop_map(|(bias, drift_per_s)| FaultKind::GpsBias { bias, drift_per_s }),
    ]
}

fn any_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((any_kind(), 0.0..5.0f64, 0.1..20.0f64), 0..4).prop_map(|specs| {
        FaultPlan {
            specs: specs
                .into_iter()
                .map(|(kind, start, len)| FaultSpec::windowed(kind, start, start + len))
                .collect(),
        }
    })
}

/// Everything observable from one driven timeline: delivered frames with
/// verdicts, LiDAR keep flags, GPS fixes, and the final stats.
type Observed = (
    Vec<(CameraTapVerdict, CameraFrame)>,
    Vec<bool>,
    Vec<GpsImuFix>,
    av_faults::FaultStats,
);

/// Drives an injector over a fixed synthetic sensor timeline.
fn drive(plan: &FaultPlan, seed: u64) -> Observed {
    let mut inj = FaultInjector::new(plan.clone(), seed);
    let mut frames = Vec::new();
    let mut lidar = Vec::new();
    let mut gps = Vec::new();
    for seq in 0..200u64 {
        let t = seq as f64 / 15.0;
        let mut f = frame(seq, t);
        let verdict = inj.on_camera(&mut f);
        frames.push((verdict, f));
        if seq % 3 == 0 {
            let mut scan = LidarScan {
                t,
                objects: Vec::new(),
            };
            lidar.push(inj.on_lidar(&mut scan));
        }
        if seq % 2 == 0 {
            let mut fix = GpsImuFix {
                t,
                position: Vec2::new(t * 12.0, 0.0),
                speed: 12.0,
                accel: 0.0,
            };
            inj.on_gps(&mut fix);
            gps.push(fix);
        }
    }
    (frames, lidar, gps, *inj.stats())
}

proptest! {
    #[test]
    fn same_seed_same_fault_schedule(plan in any_plan(), seed in any::<u64>()) {
        let a = drive(&plan, seed);
        let b = drive(&plan, seed);
        prop_assert_eq!(a.0, b.0, "camera schedule diverged");
        prop_assert_eq!(a.1, b.1, "lidar schedule diverged");
        prop_assert_eq!(a.2, b.2, "gps schedule diverged");
        prop_assert_eq!(a.3, b.3, "stats diverged");
    }

    #[test]
    fn empty_plan_is_bit_transparent(seed in any::<u64>()) {
        let (frames, lidar, gps, stats) = drive(&FaultPlan::none(), seed);
        for (seq, (verdict, f)) in frames.iter().enumerate() {
            prop_assert_eq!(*verdict, CameraTapVerdict::Deliver);
            prop_assert_eq!(f, &frame(seq as u64, seq as f64 / 15.0));
        }
        prop_assert!(lidar.iter().all(|&kept| kept));
        for fix in &gps {
            prop_assert!((fix.position.x - fix.t * 12.0).abs() < 1e-12);
        }
        prop_assert_eq!(stats.total(), 0);
    }

    #[test]
    fn faults_never_act_outside_their_window(
        kind in any_kind(),
        start in 100.0..200.0f64,
        len in 0.1..50.0f64,
        seed in any::<u64>(),
    ) {
        // The driven timeline covers t ∈ [0, 200/15 ≈ 13.3 s); a window
        // starting at t ≥ 100 s never overlaps it, so the injector must be
        // a bit-exact no-op — and must not even consume randomness.
        let plan = FaultPlan::single(FaultSpec::windowed(kind, start, start + len));
        let faulted = drive(&plan, seed);
        let clean = drive(&FaultPlan::none(), seed);
        prop_assert_eq!(&faulted.0, &clean.0);
        prop_assert_eq!(&faulted.1, &clean.1);
        prop_assert_eq!(&faulted.2, &clean.2);
        prop_assert_eq!(faulted.3.total(), 0);
    }

    #[test]
    fn windowed_gps_bias_only_acts_inside(
        bias in 0.5..3.0f64,
        start in 2.0..6.0f64,
        seed in any::<u64>(),
    ) {
        let end = start + 3.0;
        let plan = FaultPlan::single(FaultSpec::windowed(
            FaultKind::GpsBias { bias, drift_per_s: 0.0 },
            start,
            end,
        ));
        let (_, _, gps, _) = drive(&plan, seed);
        for fix in &gps {
            let shifted = (fix.position.x - fix.t * 12.0).abs() > 1e-12;
            let inside = fix.t >= start && fix.t < end;
            prop_assert_eq!(shifted, inside, "t = {}", fix.t);
        }
    }
}
