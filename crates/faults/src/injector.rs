//! The fault injector: a seeded [`SensorTap`] executing a [`FaultPlan`].

use crate::plan::{FaultKind, FaultPlan};
use av_sensing::frame::CameraFrame;
use av_sensing::gps::GpsImuFix;
use av_sensing::lidar::LidarScan;
use av_sensing::tap::{CameraTapVerdict, SensorTap};
use av_simkit::rng::{self, mix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Stream constant separating the fault RNG from every other per-run stream
/// (the run loop derives its stream from `0xA77ACC`; this must differ).
pub const FAULT_STREAM: u64 = 0xFA_0175;

/// Counters of what the injector actually did during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Camera frames lost to `CameraFrameDrop` (or a filling delay line).
    pub camera_frames_dropped: u32,
    /// Camera frames replaced by a frozen replay.
    pub camera_frames_frozen: u32,
    /// Camera frames delivered late through a delay line.
    pub camera_frames_delayed: u32,
    /// Truth boxes perturbed by inflated noise.
    pub camera_boxes_noised: u32,
    /// Truth boxes occluded past the detector limit by an occlusion band.
    pub camera_boxes_occluded: u32,
    /// Camera frames fully blinded by a detector blackout.
    pub camera_blackout_frames: u32,
    /// LiDAR sweeps dropped.
    pub lidar_scans_dropped: u32,
    /// GPS fixes biased.
    pub gps_fixes_biased: u32,
}

impl FaultStats {
    /// Total number of faulted measurements across all channels.
    pub fn total(&self) -> u32 {
        self.camera_frames_dropped
            + self.camera_frames_frozen
            + self.camera_frames_delayed
            + self.camera_boxes_noised
            + self.camera_boxes_occluded
            + self.camera_blackout_frames
            + self.lidar_scans_dropped
            + self.gps_fixes_biased
    }
}

/// Executes a [`FaultPlan`] against the sensor streams of one run.
///
/// Seeded with the run seed: same seed + same plan ⇒ same fault schedule.
/// All randomness comes from the injector's private stream, so the run's own
/// RNG sequence is untouched whether or not faults fire, and an empty plan
/// draws nothing at all.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    /// The frame a `CameraFreeze` replays, and how many replays remain.
    frozen: Option<CameraFrame>,
    freeze_remaining: u32,
    /// Frames remaining in an active `DetectorBlackout`.
    blackout_remaining: u32,
    /// Delay line for `CameraLatency`.
    delay_line: VecDeque<CameraFrame>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds the injector for one run.
    pub fn new(plan: FaultPlan, run_seed: u64) -> Self {
        FaultInjector {
            plan,
            rng: StdRng::seed_from_u64(mix(run_seed, FAULT_STREAM)),
            frozen: None,
            freeze_remaining: 0,
            blackout_remaining: 0,
            delay_line: VecDeque::new(),
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Shifted-exponential run length, at least one frame.
    fn run_length(&mut self, mean_frames: f64) -> u32 {
        rng::exponential(&mut self.rng, 1.0, 1.0 / mean_frames.max(1.0))
            .round()
            .max(1.0) as u32
    }
}

impl SensorTap for FaultInjector {
    fn on_camera(&mut self, frame: &mut CameraFrame) -> CameraTapVerdict {
        let t = frame.t;

        // An in-progress freeze replays the stale frame regardless of the
        // originating spec's window (a wedged pipeline does not recover the
        // instant its cause ends).
        if self.freeze_remaining > 0 {
            if let Some(stale) = self.frozen.clone() {
                self.freeze_remaining -= 1;
                self.stats.camera_frames_frozen += 1;
                *frame = stale;
                return CameraTapVerdict::Deliver;
            }
            self.freeze_remaining = 0;
        }

        let mut latency_active = false;
        let mut blackout_now = self.blackout_remaining > 0;
        if blackout_now {
            self.blackout_remaining -= 1;
        }

        for i in 0..self.plan.specs.len() {
            let spec = self.plan.specs[i];
            if !spec.window.contains(t) {
                continue;
            }
            match spec.kind {
                FaultKind::CameraFrameDrop { probability } => {
                    if rng::bernoulli(&mut self.rng, probability) {
                        self.stats.camera_frames_dropped += 1;
                        return CameraTapVerdict::Drop;
                    }
                }
                FaultKind::CameraFreeze {
                    probability,
                    mean_frames,
                } => {
                    if self.freeze_remaining == 0 && rng::bernoulli(&mut self.rng, probability) {
                        // The current frame is delivered normally and becomes
                        // the stale image the next frames replay.
                        self.freeze_remaining = self.run_length(mean_frames);
                        self.frozen = Some(frame.clone());
                    }
                }
                FaultKind::CameraLatency { frames } => {
                    latency_active = true;
                    self.delay_line.push_back(frame.clone());
                    if self.delay_line.len() > frames as usize {
                        let delayed = self.delay_line.pop_front().expect("non-empty delay line");
                        if delayed.seq != frame.seq {
                            self.stats.camera_frames_delayed += 1;
                        }
                        *frame = delayed;
                    } else {
                        // Delay line still filling: this capture is not yet
                        // deliverable and the output slot stays empty.
                        self.stats.camera_frames_dropped += 1;
                        return CameraTapVerdict::Drop;
                    }
                }
                FaultKind::CameraNoise { sigma_px } => {
                    for tb in &mut frame.truth {
                        let b = &mut tb.bbox;
                        b.x0 += rng::normal(&mut self.rng, 0.0, sigma_px);
                        b.x1 += rng::normal(&mut self.rng, 0.0, sigma_px);
                        b.y0 += rng::normal(&mut self.rng, 0.0, sigma_px);
                        b.y1 += rng::normal(&mut self.rng, 0.0, sigma_px);
                        if b.x1 < b.x0 {
                            std::mem::swap(&mut b.x0, &mut b.x1);
                        }
                        if b.y1 < b.y0 {
                            std::mem::swap(&mut b.y0, &mut b.y1);
                        }
                        self.stats.camera_boxes_noised += 1;
                    }
                }
                FaultKind::CameraOcclusionBand { y0, y1, strength } => {
                    for tb in &mut frame.truth {
                        let height = (tb.bbox.y1 - tb.bbox.y0).max(1e-6);
                        let overlap = (tb.bbox.y1.min(y1) - tb.bbox.y0.max(y0)).clamp(0.0, height);
                        if overlap > 0.0 {
                            let before = tb.occlusion;
                            tb.occlusion = (tb.occlusion + strength * overlap / height).min(1.0);
                            if before <= av_sensing::frame::OCCLUSION_LIMIT
                                && tb.occlusion > av_sensing::frame::OCCLUSION_LIMIT
                            {
                                self.stats.camera_boxes_occluded += 1;
                            }
                        }
                    }
                }
                FaultKind::DetectorBlackout {
                    probability,
                    mean_frames,
                } => {
                    if self.blackout_remaining == 0
                        && !blackout_now
                        && rng::bernoulli(&mut self.rng, probability)
                    {
                        self.blackout_remaining = self.run_length(mean_frames).saturating_sub(1);
                        blackout_now = true;
                    }
                }
                FaultKind::LidarDropout { .. } | FaultKind::GpsBias { .. } => {}
            }
        }

        // Latency windows that just closed leave their queue behind; clear it
        // so a later window starts with an empty line.
        if !latency_active && !self.delay_line.is_empty() {
            self.delay_line.clear();
        }

        if blackout_now {
            for tb in &mut frame.truth {
                tb.suppressed = true;
            }
            self.stats.camera_blackout_frames += 1;
        }

        CameraTapVerdict::Deliver
    }

    fn on_lidar(&mut self, scan: &mut LidarScan) -> bool {
        for i in 0..self.plan.specs.len() {
            let spec = self.plan.specs[i];
            if !spec.window.contains(scan.t) {
                continue;
            }
            if let FaultKind::LidarDropout { probability } = spec.kind {
                if rng::bernoulli(&mut self.rng, probability) {
                    self.stats.lidar_scans_dropped += 1;
                    return false;
                }
            }
        }
        true
    }

    fn on_gps(&mut self, fix: &mut GpsImuFix) {
        for i in 0..self.plan.specs.len() {
            let spec = self.plan.specs[i];
            if !spec.window.contains(fix.t) {
                continue;
            }
            if let FaultKind::GpsBias { bias, drift_per_s } = spec.kind {
                let elapsed = (fix.t - spec.window.start).max(0.0);
                fix.position.x += bias + drift_per_s * elapsed;
                self.stats.gps_fixes_biased += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;
    use av_sensing::bbox::BBox;
    use av_sensing::frame::TruthBox;
    use av_simkit::actor::{ActorId, ActorKind};
    use av_simkit::math::Vec2;

    fn frame(seq: u64, t: f64) -> CameraFrame {
        CameraFrame {
            seq,
            t,
            truth: vec![TruthBox {
                actor: ActorId(1),
                kind: ActorKind::Car,
                bbox: BBox {
                    x0: 900.0,
                    y0: 480.0,
                    x1: 1020.0,
                    y1: 560.0,
                },
                depth: 30.0,
                occlusion: 0.0,
                suppressed: false,
            }],
            raster: None,
        }
    }

    fn fix(t: f64) -> GpsImuFix {
        GpsImuFix {
            t,
            position: Vec2::new(10.0, 0.0),
            speed: 12.5,
            accel: 0.0,
        }
    }

    #[test]
    fn empty_plan_touches_nothing_and_draws_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 7);
        let rng_before = inj.rng.clone();
        for seq in 0..50 {
            let original = frame(seq, seq as f64 / 15.0);
            let mut f = original.clone();
            assert_eq!(inj.on_camera(&mut f), CameraTapVerdict::Deliver);
            assert_eq!(f, original);
        }
        let mut g = fix(1.0);
        inj.on_gps(&mut g);
        assert_eq!(g, fix(1.0));
        assert_eq!(inj.rng, rng_before, "no RNG draws");
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn frame_drop_rate_tracks_probability() {
        let plan = FaultPlan::single(FaultSpec::always(FaultKind::CameraFrameDrop {
            probability: 0.3,
        }));
        let mut inj = FaultInjector::new(plan, 11);
        let n = 2000;
        let dropped = (0..n)
            .filter(|&seq| {
                let mut f = frame(seq, seq as f64 / 15.0);
                inj.on_camera(&mut f) == CameraTapVerdict::Drop
            })
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "drop rate {rate}");
        assert_eq!(inj.stats().camera_frames_dropped, dropped as u32);
    }

    #[test]
    fn freeze_replays_stale_frame() {
        let plan = FaultPlan::single(FaultSpec::always(FaultKind::CameraFreeze {
            probability: 1.0,
            mean_frames: 4.0,
        }));
        let mut inj = FaultInjector::new(plan, 3);
        let mut first = frame(0, 0.0);
        assert_eq!(inj.on_camera(&mut first), CameraTapVerdict::Deliver);
        assert_eq!(first.seq, 0, "onset frame delivered live");
        let mut second = frame(1, 1.0 / 15.0);
        assert_eq!(inj.on_camera(&mut second), CameraTapVerdict::Deliver);
        assert_eq!(second.seq, 0, "replayed the frozen frame");
        assert_eq!(second.t, 0.0, "stale timestamp preserved");
        assert!(inj.stats().camera_frames_frozen >= 1);
    }

    #[test]
    fn latency_delays_by_exactly_n_frames() {
        let plan = FaultPlan::single(FaultSpec::always(FaultKind::CameraLatency { frames: 3 }));
        let mut inj = FaultInjector::new(plan, 5);
        for seq in 0..3 {
            let mut f = frame(seq, seq as f64 / 15.0);
            assert_eq!(
                inj.on_camera(&mut f),
                CameraTapVerdict::Drop,
                "line filling"
            );
        }
        for seq in 3..10 {
            let mut f = frame(seq, seq as f64 / 15.0);
            assert_eq!(inj.on_camera(&mut f), CameraTapVerdict::Deliver);
            assert_eq!(f.seq, seq - 3, "delayed by the line depth");
        }
        assert_eq!(inj.stats().camera_frames_dropped, 3);
        assert_eq!(inj.stats().camera_frames_delayed, 7);
    }

    #[test]
    fn occlusion_band_blinds_covered_boxes() {
        let plan = FaultPlan::single(FaultSpec::always(FaultKind::CameraOcclusionBand {
            y0: 0.0,
            y1: 1080.0,
            strength: 1.0,
        }));
        let mut inj = FaultInjector::new(plan, 9);
        let mut f = frame(0, 0.0);
        inj.on_camera(&mut f);
        assert!(f.truth[0].occlusion > av_sensing::frame::OCCLUSION_LIMIT);
        assert_eq!(inj.stats().camera_boxes_occluded, 1);
    }

    #[test]
    fn occlusion_band_outside_box_is_noop() {
        let plan = FaultPlan::single(FaultSpec::always(FaultKind::CameraOcclusionBand {
            y0: 0.0,
            y1: 100.0,
            strength: 1.0,
        }));
        let mut inj = FaultInjector::new(plan, 9);
        let original = frame(0, 0.0);
        let mut f = original.clone();
        inj.on_camera(&mut f);
        assert_eq!(f, original);
    }

    #[test]
    fn blackout_suppresses_all_boxes() {
        let plan = FaultPlan::single(FaultSpec::always(FaultKind::DetectorBlackout {
            probability: 1.0,
            mean_frames: 3.0,
        }));
        let mut inj = FaultInjector::new(plan, 13);
        let mut f = frame(0, 0.0);
        inj.on_camera(&mut f);
        assert!(f.truth.iter().all(|tb| tb.suppressed));
        assert_eq!(inj.stats().camera_blackout_frames, 1);
    }

    #[test]
    fn gps_bias_and_drift_accumulate() {
        let plan = FaultPlan::single(FaultSpec::windowed(
            FaultKind::GpsBias {
                bias: 2.0,
                drift_per_s: 0.5,
            },
            10.0,
            f64::INFINITY,
        ));
        let mut inj = FaultInjector::new(plan, 1);
        let mut early = fix(5.0);
        inj.on_gps(&mut early);
        assert_eq!(early, fix(5.0), "outside the window");
        let mut late = fix(14.0);
        inj.on_gps(&mut late);
        assert!((late.position.x - (10.0 + 2.0 + 0.5 * 4.0)).abs() < 1e-12);
        assert_eq!(inj.stats().gps_fixes_biased, 1);
    }

    #[test]
    fn lidar_dropout_drops_whole_sweeps() {
        let plan = FaultPlan::single(FaultSpec::always(FaultKind::LidarDropout {
            probability: 1.0,
        }));
        let mut inj = FaultInjector::new(plan, 2);
        let mut scan = LidarScan {
            t: 1.0,
            objects: Vec::new(),
        };
        assert!(!inj.on_lidar(&mut scan));
        assert_eq!(inj.stats().lidar_scans_dropped, 1);
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::none()
            .with(FaultSpec::always(FaultKind::CameraFrameDrop {
                probability: 0.2,
            }))
            .with(FaultSpec::always(FaultKind::LidarDropout {
                probability: 0.4,
            }));
        let mut a = FaultInjector::new(plan.clone(), 42);
        let mut b = FaultInjector::new(plan, 42);
        for seq in 0..500 {
            let t = seq as f64 / 15.0;
            let mut fa = frame(seq, t);
            let mut fb = frame(seq, t);
            assert_eq!(a.on_camera(&mut fa), b.on_camera(&mut fb));
            assert_eq!(fa, fb);
            let mut sa = LidarScan {
                t,
                objects: Vec::new(),
            };
            let mut sb = LidarScan {
                t,
                objects: Vec::new(),
            };
            assert_eq!(a.on_lidar(&mut sa), b.on_lidar(&mut sb));
        }
        assert_eq!(a.stats(), b.stats());
    }
}
