//! Fault plans: what goes wrong, when, and how hard.

use serde::{Deserialize, Serialize};

/// Activation window of one fault, in simulation seconds.
///
/// The fault may only act on measurements whose timestamp `t` satisfies
/// `start <= t < end`. Stochastic triggers are likewise only drawn inside
/// the window, so an inactive fault consumes no randomness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First active instant (inclusive, s).
    pub start: f64,
    /// End of the window (exclusive, s).
    pub end: f64,
}

impl FaultWindow {
    /// A window covering the whole run.
    pub const ALWAYS: FaultWindow = FaultWindow {
        start: 0.0,
        end: f64::INFINITY,
    };

    /// Creates a window `[start, end)`.
    pub fn new(start: f64, end: f64) -> Self {
        FaultWindow { start, end }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// One fault mode with its intensity parameters.
///
/// Camera faults act on the frame the detector will consume; LiDAR and GPS
/// faults act on their respective measurements. All probabilities are
/// per-measurement and clamped to `[0, 1]` at draw time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Each frame is lost entirely with probability `probability` — neither
    /// the attacker nor the ADS sees it.
    CameraFrameDrop {
        /// Per-frame loss probability.
        probability: f64,
    },
    /// With probability `probability` per frame, the feed freezes: the last
    /// delivered frame (stale timestamp included) is replayed for a run of
    /// frames with mean length `mean_frames` (shifted-exponential, ≥ 1).
    CameraFreeze {
        /// Per-frame freeze-onset probability.
        probability: f64,
        /// Mean frozen-run length in frames.
        mean_frames: f64,
    },
    /// The camera pipeline lags: every delivered frame is the one captured
    /// `frames` captures ago. While the delay line fills, frames are lost.
    CameraLatency {
        /// Delay depth in frames.
        frames: u32,
    },
    /// Inflated detector noise: every ground-truth box edge is perturbed by
    /// zero-mean Gaussian pixel noise of the given σ before the (already
    /// noisy) detector model runs.
    CameraNoise {
        /// Additional per-edge noise σ (px).
        sigma_px: f64,
    },
    /// A horizontal occluded band across the image (dirt, glare, a failed
    /// sensor region): boxes overlapping rows `[y0, y1]` gain occlusion
    /// proportional to the covered fraction, scaled by `strength`.
    CameraOcclusionBand {
        /// Top image row of the band (px).
        y0: f64,
        /// Bottom image row of the band (px).
        y1: f64,
        /// Occlusion added at full coverage (1.0 makes covered boxes
        /// invisible; the detector limit is occlusion > 0.7).
        strength: f64,
    },
    /// Detector blackout: with probability `probability` per frame, all
    /// truth boxes are suppressed for a run of frames with mean length
    /// `mean_frames` — frames still arrive, but carry no detections.
    DetectorBlackout {
        /// Per-frame blackout-onset probability.
        probability: f64,
        /// Mean blackout-run length in frames.
        mean_frames: f64,
    },
    /// Each LiDAR sweep is lost entirely with probability `probability`.
    LidarDropout {
        /// Per-sweep loss probability.
        probability: f64,
    },
    /// GPS bias and drift: each fix's position is shifted by `bias` plus
    /// `drift_per_s · (t − window.start)` meters along the road.
    GpsBias {
        /// Constant longitudinal position bias (m).
        bias: f64,
        /// Additional longitudinal drift rate (m/s of window time).
        drift_per_s: f64,
    },
}

/// One fault: a mode plus its activation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The fault mode and intensity.
    pub kind: FaultKind,
    /// When the fault may act.
    pub window: FaultWindow,
}

impl FaultSpec {
    /// A fault active for the whole run.
    pub fn always(kind: FaultKind) -> Self {
        FaultSpec {
            kind,
            window: FaultWindow::ALWAYS,
        }
    }

    /// A fault active on `[start, end)`.
    pub fn windowed(kind: FaultKind, start: f64, end: f64) -> Self {
        FaultSpec {
            kind,
            window: FaultWindow::new(start, end),
        }
    }
}

/// A complete fault plan: the specs apply independently, in order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The faults to inject.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: guaranteed bit-transparent (no draws, no rewrites).
    pub fn none() -> Self {
        FaultPlan { specs: Vec::new() }
    }

    /// A plan with one fault.
    pub fn single(spec: FaultSpec) -> Self {
        FaultPlan { specs: vec![spec] }
    }

    /// Appends a fault (builder style).
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_is_half_open() {
        let w = FaultWindow::new(2.0, 5.0);
        assert!(!w.contains(1.999));
        assert!(w.contains(2.0));
        assert!(w.contains(4.999));
        assert!(!w.contains(5.0));
        assert!(FaultWindow::ALWAYS.contains(0.0));
        assert!(FaultWindow::ALWAYS.contains(1e12));
    }

    #[test]
    fn builder_accumulates_specs() {
        let plan = FaultPlan::none()
            .with(FaultSpec::always(FaultKind::CameraFrameDrop {
                probability: 0.1,
            }))
            .with(FaultSpec::windowed(
                FaultKind::LidarDropout { probability: 0.5 },
                1.0,
                2.0,
            ));
        assert_eq!(plan.specs.len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
