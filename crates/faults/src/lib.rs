//! # av-faults — deterministic seeded sensor fault injection
//!
//! A fault-injection subsystem that sits between the sensor models in
//! [`av_sensing`] and the perception pipeline, implementing the
//! [`av_sensing::tap::SensorTap`] hook. A [`FaultPlan`] is a list of
//! [`FaultSpec`]s — per-sensor faults with activation windows and seeded
//! stochastic triggers.
//!
//! Two properties anchor the whole design:
//!
//! - **Determinism.** The injector draws from its *own* RNG stream, derived
//!   from the run seed through the same SplitMix64 mix as every other
//!   per-run stream ([`av_simkit::rng::mix`]). The same seed and plan
//!   therefore produce the same fault schedule, and the injector never
//!   perturbs the run's main RNG.
//! - **Transparency when empty.** An empty plan makes zero RNG draws and
//!   never touches a measurement, so a run with `FaultPlan::none()` is
//!   bit-identical to a run without the subsystem (the golden-trace
//!   regression fixtures pin this).
//!
//! The complementary half — *graceful degradation* — lives downstream: the
//! perception pipeline coasts on frozen/replayed frames and surfaces camera
//! staleness, and the planner caps speed (and ultimately brakes) as the
//! staleness grows. The `resilience` binary in `av-experiments` sweeps fault
//! intensity × scenario × attacker to answer whether RoboTack's mirrored
//! replica diverges under sensor faults.

#![warn(missing_docs)]

pub mod injector;
pub mod plan;

pub use injector::{FaultInjector, FaultStats, FAULT_STREAM};
pub use plan::{FaultKind, FaultPlan, FaultSpec, FaultWindow};
