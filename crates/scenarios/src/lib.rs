//! # av-scenarios — procedural scenario generation
//!
//! The paper evaluates RoboTack on five fixed driving scenarios (DS-1..5,
//! §V-C); this crate turns that envelope into a *space*. It provides:
//!
//! - [`param`]: sampled scalar parameters ([`Param`]) — fixed values,
//!   uniform ranges, and base-±-jitter draws — with deterministic,
//!   guarded sampling.
//! - [`spec`]: the typed scenario DSL. A [`ScenarioSpec`] describes road
//!   layout, a list of [`ActorTemplate`]s (lead/oncoming/trailing traffic,
//!   pedestrian crossings, parked occluders, cut-ins), the scripted target,
//!   and the run duration. [`ScenarioSpec::sample`] builds a concrete
//!   [`av_simkit::Scenario`] from a seed through the same simkit RNG stream
//!   (`0xD5`) the fixed scenarios use; [`ScenarioSpec::content_hash`] is the
//!   stable FNV-1a identity that keys artifact stores and cache entries, and
//!   [`world_invariants`] checks the validity contract (no overlapping
//!   spawns, reachable target geometry) on built worlds.
//! - [`ds`]: DS-1..5 re-expressed as specs. Their sampled worlds are
//!   **bit-identical** to [`av_simkit::Scenario::build`] — pinned by this
//!   crate's tests and by the golden-trace suite in `av-experiments`.
//! - [`mod@mutate`]: deterministic spec mutation (seeded, bounded, validity
//!   preserving) — the step operator the coverage-guided boundary search in
//!   `av-experiments` drives toward the attack-success frontier.
//!
//! # Example
//!
//! ```
//! use av_scenarios::{ds, world_invariants};
//!
//! let spec = ds::ds2();
//! let scenario = spec.sample(7);
//! assert!(world_invariants(&scenario).is_ok());
//! assert_eq!(scenario.id, spec.scenario_id());
//! ```

#![warn(missing_docs)]

pub mod ds;
pub mod mutate;
pub mod param;
pub mod spec;

pub use mutate::{mutate, MutateConfig};
pub use param::Param;
pub use spec::{
    world_fingerprint, world_invariants, ActorTemplate, ScenarioSpec, SpecError, SPEC_VERSION,
};
