//! Sampled scalar parameters of a scenario spec.

use av_suite::fnv::Fnv1a;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A scalar scenario parameter: either pinned or drawn per seed.
///
/// Sampling is *guarded*: a degenerate range (empty, reversed, or
/// non-finite) consumes **no** RNG draw and returns its lower bound / base,
/// so hostile specs stay total and deterministic instead of panicking
/// inside the RNG. Well-formed ranges always consume exactly one draw —
/// the draw-count stability the bit-identity contract with
/// `Scenario::build` relies on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Param {
    /// Always this value; never draws.
    Fixed(f64),
    /// Uniform in `[lo, hi)`; one draw when `lo < hi`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// `base` plus uniform jitter in `[-pm, pm)`; one draw when `pm > 0`.
    ///
    /// `Jitter { base, pm }` samples as `base + draw(-pm..pm)` — the exact
    /// expression (and therefore the exact bits) `Scenario::build` uses for
    /// its ±2 m spawn jitter.
    Jitter {
        /// Center value.
        base: f64,
        /// Jitter half-width (m or kph, depending on the knob).
        pm: f64,
    },
}

impl Param {
    /// Convenience: the fixed-scenario jitter form.
    pub fn jitter(base: f64, pm: f64) -> Param {
        Param::Jitter { base, pm }
    }

    /// Draws a value. See the type docs for the degenerate-range guard.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            Param::Fixed(v) => v,
            Param::Uniform { lo, hi } => {
                if lo.is_finite() && hi.is_finite() && lo < hi {
                    rng.random_range(lo..hi)
                } else {
                    lo
                }
            }
            Param::Jitter { base, pm } => {
                if base.is_finite() && pm.is_finite() && pm > 0.0 {
                    base + rng.random_range(-pm..pm)
                } else {
                    base
                }
            }
        }
    }

    /// The nominal (center) value, without drawing.
    pub fn nominal(&self) -> f64 {
        match *self {
            Param::Fixed(v) => v,
            Param::Uniform { lo, hi } => (lo + hi) / 2.0,
            Param::Jitter { base, .. } => base,
        }
    }

    /// The closed interval every sample of this parameter lies in.
    pub fn bounds(&self) -> (f64, f64) {
        match *self {
            Param::Fixed(v) => (v, v),
            Param::Uniform { lo, hi } => (lo, hi.max(lo)),
            Param::Jitter { base, pm } => {
                if pm > 0.0 {
                    (base - pm, base + pm)
                } else {
                    (base, base)
                }
            }
        }
    }

    /// Whether every reachable value is finite and the range well-ordered.
    pub fn is_well_formed(&self) -> bool {
        let (lo, hi) = match *self {
            Param::Fixed(v) => (v, v),
            Param::Uniform { lo, hi } => (lo, hi),
            Param::Jitter { base, pm } => (base - pm.abs(), base + pm.abs()),
        };
        lo.is_finite() && hi.is_finite() && lo <= hi
    }

    /// Whether every reachable value lies within `[lo, hi]`.
    pub fn within(&self, lo: f64, hi: f64) -> bool {
        let (a, b) = self.bounds();
        self.is_well_formed() && a >= lo && b <= hi
    }

    /// Shifts the parameter's center by `delta`, clamping the center into
    /// `[lo, hi]` (range widths are preserved where they fit).
    #[must_use]
    pub fn shifted(&self, delta: f64, lo: f64, hi: f64) -> Param {
        match *self {
            Param::Fixed(v) => Param::Fixed((v + delta).clamp(lo, hi)),
            Param::Uniform { lo: a, hi: b } => {
                let w = (b - a).max(0.0).min(hi - lo);
                let a2 = (a + delta).clamp(lo, hi - w);
                Param::Uniform { lo: a2, hi: a2 + w }
            }
            Param::Jitter { base, pm } => {
                let pm = pm.clamp(0.0, (hi - lo) / 2.0);
                Param::Jitter {
                    base: (base + delta).clamp(lo + pm, hi - pm),
                    pm,
                }
            }
        }
    }

    /// Folds the parameter into a content hash (tag + value bits).
    pub fn fold(&self, h: &mut Fnv1a) {
        match *self {
            Param::Fixed(v) => {
                h.write(b"F");
                h.write_f64(v);
            }
            Param::Uniform { lo, hi } => {
                h.write(b"U");
                h.write_f64(lo);
                h.write_f64(hi);
            }
            Param::Jitter { base, pm } => {
                h.write(b"J");
                h.write_f64(base);
                h.write_f64(pm);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_simkit::rng::run_rng;

    #[test]
    fn jitter_matches_build_expression() {
        // Param::jitter(60, 2) must replay Scenario::build's draw exactly.
        let mut a = run_rng(7, 0xD5);
        let mut b = run_rng(7, 0xD5);
        let expected: f64 = 60.0 + a.random_range(-2.0..2.0);
        let got = Param::jitter(60.0, 2.0).sample(&mut b);
        assert_eq!(expected.to_bits(), got.to_bits());
    }

    #[test]
    fn degenerate_ranges_do_not_draw() {
        let mut rng = run_rng(1, 2);
        let before: f64 = rng.random_range(0.0..1.0);
        let mut replay = run_rng(1, 2);
        let _: f64 = replay.random_range(0.0..1.0);
        // None of these consume a draw...
        assert_eq!(Param::Fixed(3.0).sample(&mut replay), 3.0);
        assert_eq!(Param::Uniform { lo: 5.0, hi: 5.0 }.sample(&mut replay), 5.0);
        assert_eq!(
            Param::Uniform {
                lo: 5.0,
                hi: f64::NAN
            }
            .sample(&mut replay),
            5.0
        );
        assert_eq!(Param::jitter(2.0, 0.0).sample(&mut replay), 2.0);
        assert_eq!(Param::jitter(2.0, -1.0).sample(&mut replay), 2.0);
        // ...so the streams stay aligned.
        let mut fresh = run_rng(1, 2);
        let resumed: f64 = fresh.random_range(0.0..1.0);
        assert_eq!(resumed.to_bits(), before.to_bits());
        let after: f64 = replay.random_range(0.0..1.0);
        let expected: f64 = {
            let mut r = run_rng(1, 2);
            let _: f64 = r.random_range(0.0..1.0);
            r.random_range(0.0..1.0)
        };
        assert_eq!(after.to_bits(), expected.to_bits());
    }

    #[test]
    fn bounds_and_well_formedness() {
        assert!(Param::Fixed(1.0).within(0.0, 2.0));
        assert!(!Param::Fixed(f64::INFINITY).is_well_formed());
        assert!(Param::Uniform { lo: 1.0, hi: 2.0 }.within(1.0, 2.0));
        assert!(!Param::Uniform { lo: 1.0, hi: 2.0 }.within(1.5, 2.0));
        assert!(Param::jitter(5.0, 1.0).within(4.0, 6.0));
    }

    #[test]
    fn shifted_respects_clamps() {
        let p = Param::jitter(60.0, 2.0).shifted(1000.0, 10.0, 100.0);
        let (lo, hi) = p.bounds();
        assert!(lo >= 10.0 && hi <= 100.0, "{p:?}");
        let q = Param::Uniform { lo: 0.0, hi: 10.0 }.shifted(-50.0, 0.0, 20.0);
        let (lo, hi) = q.bounds();
        assert!(lo >= 0.0 && hi <= 20.0, "{q:?}");
    }

    #[test]
    fn fold_distinguishes_variants() {
        let digest = |p: Param| {
            let mut h = Fnv1a::new();
            p.fold(&mut h);
            h.finish()
        };
        assert_ne!(digest(Param::Fixed(1.0)), digest(Param::jitter(1.0, 0.0)));
        assert_ne!(
            digest(Param::Uniform { lo: 1.0, hi: 2.0 }),
            digest(Param::Uniform { lo: 1.0, hi: 3.0 })
        );
    }
}
